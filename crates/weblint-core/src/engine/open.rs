//! An entry on the element stack.

use weblint_html::ElementDef;

/// One open element, as held on the main stack (and, after an overlap, the
/// secondary "unresolved" stack).
#[derive(Debug, Clone)]
pub(crate) struct Open {
    /// Lower-case element name for table lookups and matching.
    pub name: String,
    /// The name exactly as written in the source, for messages.
    pub orig: String,
    /// Line the open tag appeared on — weblint's messages quote it
    /// ("for <TITLE> on line 3").
    pub line: u32,
    /// The element's table entry, if the name is known at all.
    pub def: Option<&'static ElementDef>,
    /// Whether any non-whitespace content (text or child elements) has been
    /// seen inside, for the `empty-container` check.
    pub has_content: bool,
}

impl Open {
    /// Whether the §5.1 heuristics may close this element silently when a
    /// mismatched end tag or end-of-file forces it off the stack.
    pub fn silently_closable(&self) -> bool {
        self.def.map(|d| d.end_tag_optional()).unwrap_or(true)
    }

    /// Whether this element is inline (text-level) markup. Mismatched
    /// closes around inline elements are reported as *overlap* (the
    /// markup is interleaved); around structural elements as *unclosed*
    /// (the author forgot the end tag).
    pub fn is_inline(&self) -> bool {
        self.def
            .map(|d| matches!(d.category, weblint_html::ElementCategory::Inline))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblint_html::HtmlSpec;

    fn open(name: &str) -> Open {
        let spec = HtmlSpec::default();
        Open {
            name: name.to_string(),
            orig: name.to_uppercase(),
            line: 1,
            def: spec.element_any(name),
            has_content: false,
        }
    }

    #[test]
    fn optional_end_is_silently_closable() {
        assert!(open("p").silently_closable());
        assert!(open("li").silently_closable());
        assert!(!open("title").silently_closable());
        assert!(!open("a").silently_closable());
    }

    #[test]
    fn unknown_elements_close_silently() {
        assert!(open("nosuchtag").silently_closable());
    }

    #[test]
    fn inline_classification() {
        assert!(open("a").is_inline());
        assert!(open("b").is_inline());
        assert!(!open("title").is_inline());
        assert!(!open("div").is_inline());
        assert!(!open("nosuchtag").is_inline());
    }
}
