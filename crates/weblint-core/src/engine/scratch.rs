//! Reusable engine working memory.
//!
//! Everything the checker allocates per document — the two element stacks,
//! the seen-line history, the side name intern, the anchor/title text
//! accumulators, the attribute-dedup list — lives here so a
//! [`crate::LintSession`] can lint document after document without
//! re-allocating any of it. [`Scratch::reset`] erases the contents but
//! keeps every buffer's capacity.

use weblint_html::Atom;

use super::names::{NameId, NameTable};
use super::open::Open;

/// The per-session working memory of the lint engine.
#[derive(Debug, Clone)]
pub(crate) struct Scratch {
    /// The main stack of open elements.
    pub(crate) stack: Vec<Open>,
    /// The secondary stack of unresolved (overlapped) elements.
    pub(crate) unresolved: Vec<Open>,
    /// First line each name was seen on, indexed by [`NameId::index`];
    /// 0 means "not seen" (real lines are 1-based).
    pub(crate) seen: Vec<u32>,
    /// Name identities for this document.
    pub(crate) names: NameTable,
    /// Accumulated visible text of the innermost open `<A>`.
    pub(crate) anchor_buf: String,
    /// Whether an `<A>` is open and accumulating into `anchor_buf`.
    pub(crate) anchor_active: bool,
    /// Accumulated text of an open `<TITLE>`.
    pub(crate) title_buf: String,
    /// Whether a `<TITLE>` is open and accumulating into `title_buf`.
    pub(crate) title_active: bool,
    /// Attribute names seen so far in the current tag, for duplicates.
    pub(crate) attr_seen: Vec<NameId>,
    /// As-written spellings of the elements on the two stacks, packed
    /// end-to-end. [`Open`] entries index into this arena instead of the
    /// source because in streaming mode the source window may scroll past
    /// an open tag before its close arrives.
    pub(crate) origs: String,
}

impl Default for Scratch {
    fn default() -> Scratch {
        Scratch {
            stack: Vec::new(),
            unresolved: Vec::new(),
            seen: vec![0; Atom::count()],
            names: NameTable::default(),
            anchor_buf: String::new(),
            anchor_active: false,
            title_buf: String::new(),
            title_active: false,
            attr_seen: Vec::new(),
            origs: String::new(),
        }
    }
}

impl Scratch {
    /// Erase per-document state, keeping capacity. Cumulative metrics
    /// (the intern fallback counter) survive.
    pub(crate) fn reset(&mut self) {
        self.stack.clear();
        self.unresolved.clear();
        self.seen.clear();
        self.seen.resize(Atom::count(), 0);
        self.names.clear();
        self.anchor_buf.clear();
        self.anchor_active = false;
        self.title_buf.clear();
        self.title_active = false;
        self.attr_seen.clear();
        self.origs.clear();
    }

    /// Copy an as-written element name into the orig-name arena, returning
    /// its (start, len) for an [`Open`] entry.
    pub(crate) fn intern_orig(&mut self, name: &str) -> (u32, u32) {
        let start = self.origs.len() as u32;
        self.origs.push_str(name);
        (start, name.len() as u32)
    }

    /// Return an element's arena slot after it permanently leaves both
    /// stacks. Reclaims the bytes when they sit at the arena top (the
    /// common LIFO case); out-of-order releases (overlap parking) leave a
    /// hole that is swept once both stacks drain.
    pub(crate) fn release_orig(&mut self, open: &Open) {
        if open.orig_start as usize + open.orig_len as usize == self.origs.len() {
            self.origs.truncate(open.orig_start as usize);
        }
        if self.stack.is_empty() && self.unresolved.is_empty() {
            self.origs.clear();
        }
    }

    /// First line `id` was seen on, or 0 if unseen.
    pub(crate) fn seen_line(&self, id: NameId) -> u32 {
        self.seen.get(id.index()).copied().unwrap_or(0)
    }

    /// Record that `id` appeared on `line`, keeping the first occurrence.
    pub(crate) fn record_seen(&mut self, id: NameId, line: u32) {
        let index = id.index();
        if index >= self.seen.len() {
            self.seen.resize(index + 1, 0);
        }
        if self.seen[index] == 0 {
            self.seen[index] = line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seen_lines_keep_first_occurrence() {
        let mut s = Scratch::default();
        let id = s.names.id("title");
        assert_eq!(s.seen_line(id), 0);
        s.record_seen(id, 4);
        s.record_seen(id, 9);
        assert_eq!(s.seen_line(id), 4);
    }

    #[test]
    fn side_interned_ids_grow_the_table() {
        let mut s = Scratch::default();
        let id = s.names.id("nosuchtag");
        assert_eq!(s.seen_line(id), 0);
        s.record_seen(id, 2);
        assert_eq!(s.seen_line(id), 2);
    }

    #[test]
    fn reset_clears_document_state() {
        let mut s = Scratch::default();
        let id = s.names.id("nosuchtag");
        s.record_seen(id, 2);
        s.anchor_active = true;
        s.anchor_buf.push_str("text");
        s.reset();
        assert_eq!(s.seen_line(id), 0);
        assert!(!s.anchor_active);
        assert!(s.anchor_buf.is_empty());
        assert_eq!(s.names.fallbacks(), 1, "counter survives reset");
    }
}
