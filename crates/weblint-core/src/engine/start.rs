//! Start-tag handling: element checks, attribute checks, stack pushes.

use weblint_html::{AttrStatus, ElementCategory, ElementDef, ElementStatus};
use weblint_rules::Rule;
use weblint_tokenizer::{Quote, Span, Tag};

use crate::fix::{Edit, Fix};
use crate::message::Diagnostic;
use crate::options::{edit_distance, CaseStyle};

use super::names::{heading_level, known, NameId};
use super::open::NO_FIX;
use super::{Checker, Open};

/// Cap quoted source text in messages so one mangled tag cannot produce a
/// kilobyte-long diagnostic.
const MAX_QUOTED_SRC: usize = 60;

impl Checker<'_> {
    pub(crate) fn on_start_tag(&mut self, tag: &Tag<'_>, span: Span) {
        let t0 = self.prof_start();
        self.check_first_tag(tag.name, span);
        self.prof_end(Rule::RequireDoctype, t0);
        let id = self.scratch.names.id(tag.name);
        self.check_name_case(tag.name, span, "tag");

        if tag.odd_quotes {
            self.emit(
                Rule::OddQuotes,
                span,
                format!(
                    "odd number of quotes in element {}",
                    clip(self.src.slice(span), MAX_QUOTED_SRC)
                ),
            );
        }
        if tag.unterminated {
            self.emit(
                Rule::UnterminatedTag,
                span,
                format!("<{}> tag is not closed with `>'", tag.name),
            );
        }

        let t0 = self.prof_start();
        let def = self.classify_element(id, tag.name, span);
        self.prof_end(Rule::UnknownElement, t0);

        // A deferred rename fix: set when this element is obsolete and the
        // replacement is a plain element name, completed at close time so
        // both tags are rewritten together (see `close_matched`).
        let mut fix_diag = NO_FIX;
        if let Some(d) = def {
            if let Some(replacement) = d.deprecated {
                self.emit(
                    Rule::ObsoleteElement,
                    span,
                    format!("<{}> is obsolete - use {}", tag.name, replacement),
                );
                // Only rename when the advice is a bare element name
                // ("PRE", "OBJECT") — prose like "CSS instead" is not a
                // mechanical remedy.
                if self.config.emit_fixes
                    && replacement.bytes().all(|b| b.is_ascii_alphanumeric())
                    && self
                        .diags
                        .last()
                        .is_some_and(|d| d.id == "obsolete-element")
                {
                    fix_diag = (self.diags.len() - 1) as u32;
                }
            }
            if let Some(logical) = d.physical {
                self.emit(
                    Rule::PhysicalFont,
                    span,
                    format!(
                        "<{}> is physical font markup - consider logical markup (e.g. {})",
                        tag.name, logical
                    ),
                );
            }
            if self.config.heuristics {
                self.apply_implied_closes(d, span);
            }
            let t0 = self.prof_start();
            self.check_required_context(d, tag.name, span);
            self.prof_end(Rule::RequiredContext, t0);
        }

        let t0 = self.prof_start();
        self.check_nesting(id, tag.name, span);
        self.prof_end(Rule::NestedElement, t0);
        let t0 = self.prof_start();
        self.check_once_only(id, tag.name, span);
        self.prof_end(Rule::OnceOnly, t0);
        let t0 = self.prof_start();
        self.check_structure_on_open(id, span);
        self.prof_end(Rule::MustFollowHead, t0);
        let t0 = self.prof_start();
        self.check_heading_on_open(id, tag.name, span);
        self.prof_end(Rule::HeadingOrder, t0);

        self.check_attrs_lexical(tag, span);
        if let Some(d) = def {
            self.check_attrs_semantic(tag, d, span);
        }
        if tag.self_closing {
            let src = self.src;
            self.emit_fix(
                Rule::XmlSelfClose,
                span,
                span,
                format!("XML-style `/>' is not HTML (<{}/>)", tag.name),
                // Drop the `/` in `/>`; decline if the tag does not end in
                // the plain two-byte form (whitespace, truncation).
                move || {
                    let slash = span.end.offset.checked_sub(2)?;
                    if src.byte(slash) != Some(b'/') {
                        return None;
                    }
                    Some(Fix::one(Edit::delete(slash, slash + 1)))
                },
            );
        }

        // Custom pattern rules run after every built-in check, so a
        // configuration with no rules produces byte-identical output.
        if !self.custom.is_empty() {
            self.check_custom_rules(tag, span);
        }

        // Record the element in the history.
        self.scratch.record_seen(id, span.start.line);
        // A child element counts as content for `empty-container`.
        if let Some(top) = self.scratch.stack.last_mut() {
            top.has_content = true;
        }

        // Push containers; empty elements and XML-style self-closed tags
        // leave the stack alone.
        let is_container = def.map(|d| d.is_container()).unwrap_or(true);
        if is_container && !tag.self_closing {
            let k = known();
            if id == k.a {
                self.scratch.anchor_buf.clear();
                self.scratch.anchor_active = true;
            } else if id == k.title {
                self.scratch.title_buf.clear();
                self.scratch.title_active = true;
            }
            let (orig_start, orig_len) = self.scratch.intern_orig(tag.name);
            self.scratch.stack.push(Open {
                id,
                name_span: self.src.sub_span(span, tag.name),
                orig_start,
                orig_len,
                line: span.start.line,
                def,
                has_content: false,
                fix_diag,
            });
        }
    }

    /// First markup in the document: DOCTYPE and outer-element checks.
    pub(crate) fn check_first_tag(&mut self, name: &str, span: Span) {
        if self.first_tag_checked {
            return;
        }
        self.first_tag_checked = true;
        if self.config.fragment {
            return;
        }
        if !self.seen_doctype {
            let public_id = self.spec.version().public_id();
            self.emit_fix(
                Rule::RequireDoctype,
                span,
                span,
                "first element was not DOCTYPE specification".to_string(),
                // Prepend the declaration for the version being checked
                // against.
                move || {
                    Some(Fix::one(Edit::insert(
                        0,
                        format!("<!DOCTYPE HTML PUBLIC \"{public_id}\">\n"),
                    )))
                },
            );
        }
        if !name.eq_ignore_ascii_case("html") {
            self.emit(
                Rule::HtmlOuter,
                span,
                "outer tags should be <HTML> .. </HTML>".to_string(),
            );
        }
    }

    /// Resolve the element against the active spec, reporting typos,
    /// extension markup and wrong-version markup.
    fn classify_element(
        &mut self,
        id: NameId,
        orig: &str,
        span: Span,
    ) -> Option<&'static ElementDef> {
        let status = match id.atom() {
            Some(atom) => self.spec.element_status_atom(atom),
            None => ElementStatus::Unknown,
        };
        match status {
            ElementStatus::Active(d) => Some(d),
            ElementStatus::Extension(d) => {
                self.emit(
                    Rule::ExtensionMarkup,
                    span,
                    format!(
                        "<{}> is {} extension markup (enable with the {} extension)",
                        orig,
                        vendor_name(d.mask),
                        vendor_switch(d.mask)
                    ),
                );
                Some(d)
            }
            ElementStatus::OtherVersion(d) => {
                // Deprecated elements get the more useful obsolete message
                // (emitted by the caller) instead of a version complaint.
                if d.deprecated.is_none() {
                    self.emit(
                        Rule::VersionMarkup,
                        span,
                        format!(
                            "<{}> is not defined in {}",
                            orig,
                            self.spec.version().name()
                        ),
                    );
                }
                Some(d)
            }
            ElementStatus::Unknown => {
                // User-declared tool-specific markup is accepted silently
                // (§4.6's noise problem; §6.1's custom elements).
                let msg = {
                    let name_lc = self.scratch.names.resolve(id);
                    if self.config.is_custom_element(name_lc) {
                        None
                    } else {
                        let mut msg = format!("unknown element <{orig}>");
                        if let Some(suggestion) = self.suggest_element(name_lc) {
                            msg.push_str(&format!(" (perhaps you meant <{}>?)", suggestion));
                        }
                        Some(msg)
                    }
                };
                if let Some(msg) = msg {
                    self.emit(Rule::UnknownElement, span, msg);
                }
                None
            }
        }
    }

    /// Find an active element within edit distance 2 — catches the paper's
    /// `<BLOCKQOUTE>` example.
    fn suggest_element(&self, name_lc: &str) -> Option<String> {
        if name_lc.len() < 3 {
            return None;
        }
        self.spec
            .active_elements()
            .map(|e| (e.name, edit_distance(name_lc, e.name)))
            .filter(|&(_, d)| d <= 2)
            .min_by_key(|&(_, d)| d)
            .map(|(name, _)| name.to_ascii_uppercase())
    }

    /// Silently close open elements that this element implies the end of —
    /// `<LI>` closes an open `li`, `<TD>` closes `td`/`th`, block elements
    /// close `p`.
    fn apply_implied_closes(&mut self, def: &'static ElementDef, span: Span) {
        loop {
            let closable = match self.scratch.stack.last() {
                Some(top) => {
                    def.implies_close_of(self.scratch.names.resolve(top.id))
                        && top.silently_closable()
                }
                None => false,
            };
            if !closable {
                break;
            }
            let open = self.scratch.stack.pop().expect("stack top exists");
            self.close_bookkeeping(&open, span);
            self.scratch.release_orig(&open);
        }
    }

    fn check_required_context(&mut self, def: &'static ElementDef, orig: &str, span: Span) {
        // HEAD-only elements get the dedicated `head-element` message.
        if def.category == ElementCategory::Head {
            if !self.in_head() && !self.config.fragment {
                self.emit(
                    Rule::HeadElement,
                    span,
                    format!("<{}> can only appear in the HEAD element", orig),
                );
            }
            return;
        }
        let Some(contexts) = def.contexts else {
            return;
        };
        let parent_ok = match self.scratch.stack.last() {
            Some(top) => contexts.contains(&self.scratch.names.resolve(top.id)),
            None => false,
        };
        if !parent_ok {
            let expected = contexts
                .iter()
                .map(|c| c.to_ascii_uppercase())
                .collect::<Vec<_>>()
                .join("|");
            self.emit(
                Rule::RequiredContext,
                span,
                format!(
                    "illegal context for <{}> - must appear in {} element",
                    orig, expected
                ),
            );
        }
    }

    fn check_nesting(&mut self, id: NameId, orig: &str, span: Span) {
        if !known().non_nestable.contains(&id) {
            return;
        }
        let line = match self.scratch.stack.iter().rev().find(|o| o.id == id) {
            Some(outer) => outer.line,
            None => return,
        };
        self.emit(
            Rule::NestedElement,
            span,
            format!("<{orig}> cannot be nested - <{orig}> opened on line {line}"),
        );
    }

    fn check_once_only(&mut self, id: NameId, orig: &str, span: Span) {
        let once = id
            .atom()
            .and_then(|atom| self.spec.element_any_atom(atom))
            .map(|d| d.once)
            .unwrap_or(false);
        if !once {
            return;
        }
        let first = self.scratch.seen_line(id);
        if first != 0 {
            self.emit(
                Rule::OnceOnly,
                span,
                format!(
                    "<{orig}> may only appear once per document; it first appeared on line {first}"
                ),
            );
        }
    }

    fn check_structure_on_open(&mut self, id: NameId, span: Span) {
        let k = known();
        // Markup between </HEAD> and <BODY> is as misplaced as text there.
        if self.after_head
            && !self.body_seen
            && !self.config.fragment
            && id != k.body
            && id != k.html
            && id != k.frameset
            && id != k.noframes
        {
            self.emit(
                Rule::MustFollowHead,
                span,
                "<BODY> must immediately follow </HEAD>".to_string(),
            );
            self.after_head = false; // report once
        }
        if id == k.head {
            self.head_seen = true;
        } else if id == k.frameset {
            // In a frameset document, FRAMESET is the body-equivalent.
            self.after_head = false;
        } else if id == k.body {
            if !self.head_seen && !self.config.fragment {
                self.emit(
                    Rule::BodyNoHead,
                    span,
                    "<BODY> seen with no <HEAD> element before it".to_string(),
                );
            }
            self.body_seen = true;
            self.after_head = false;
        }
    }

    fn check_heading_on_open(&mut self, id: NameId, orig: &str, span: Span) {
        let Some(level) = heading_level(id) else {
            return;
        };
        if let Some(last) = self.last_heading {
            if level > last + 1 {
                self.emit(
                    Rule::HeadingOrder,
                    span,
                    format!("bad style - <H{level}> follows <H{last}>"),
                );
            }
        }
        self.last_heading = Some(level);
        let a = known().a;
        if self.scratch.stack.iter().any(|o| o.id == a) {
            self.emit(
                Rule::HeadingInAnchor,
                span,
                format!("heading <{orig}> inside anchor - put the <A> inside the heading"),
            );
        }
    }

    /// Pass 1 over attributes: purely lexical checks that need no element
    /// table — case, duplicates, missing values, quoting style. Ordering
    /// matters: weblint reports quote problems for a whole tag before value
    /// problems (see the §4.2 example output).
    fn check_attrs_lexical(&mut self, tag: &Tag<'_>, span: Span) {
        self.scratch.attr_seen.clear();
        for attr in &tag.attrs {
            self.check_name_case(attr.name, attr.span, "attribute");
            let aid = self.scratch.names.id(attr.name);
            if self.scratch.attr_seen.contains(&aid) {
                // Delete this whole repeated attribute (with the whitespace
                // before it). Compute the end of what it wrote in the
                // source; decline when quoting was mangled.
                let del_end = match &attr.value {
                    Some(v) if v.terminated => {
                        Some(v.span.end.offset + usize::from(v.quote != Quote::None))
                    }
                    Some(_) => None,
                    None if !attr.has_eq => Some(attr.span.end.offset),
                    None => None,
                };
                let del_start = attr.span.start.offset;
                let src = self.src;
                self.emit_fix(
                    Rule::DuplicateAttribute,
                    attr.span,
                    attr.span,
                    format!(
                        "attribute {} appears more than once in <{}>",
                        attr.name, tag.name
                    ),
                    move || {
                        let del_end = del_end?;
                        if del_end > src.end_offset() {
                            return None;
                        }
                        let mut from = del_start;
                        while from > 0
                            && src.byte(from - 1).is_some_and(|b| b.is_ascii_whitespace())
                        {
                            from -= 1;
                        }
                        Some(Fix::one(Edit::delete(from, del_end)))
                    },
                );
            }
            self.scratch.attr_seen.push(aid);
            match &attr.value {
                None if attr.has_eq => {
                    self.emit(
                        Rule::MissingAttributeValue,
                        attr.span,
                        format!(
                            "attribute {} of <{}> has `=' but no value",
                            attr.name, tag.name
                        ),
                    );
                }
                None => {}
                Some(v) => match v.quote {
                    Quote::Single => {
                        let vspan = v.span;
                        let terminated = v.terminated;
                        let has_dquote = v.raw.contains('"');
                        self.emit_fix(
                            Rule::AttributeDelimiter,
                            attr.span,
                            Span::new(attr.span.start, vspan.end),
                            format!(
                                "use of ' as delimiter for value of attribute {} of element {} \
                                 is not supported by all browsers",
                                attr.name, tag.name
                            ),
                            // Swap both single-quote delimiters (the bytes
                            // just outside the value span) for double
                            // quotes; decline if the value itself contains
                            // one, or the closing quote never came.
                            move || {
                                if !terminated || has_dquote || vspan.start.offset == 0 {
                                    return None;
                                }
                                Some(Fix::new(vec![
                                    Edit::replace(vspan.start.offset - 1, vspan.start.offset, "\""),
                                    Edit::replace(vspan.end.offset, vspan.end.offset + 1, "\""),
                                ]))
                            },
                        );
                    }
                    Quote::None if value_needs_quotes(v.raw) => {
                        let vspan = v.span;
                        let has_dquote = v.raw.contains('"');
                        self.emit_fix(
                            Rule::QuoteAttributeValue,
                            attr.span,
                            Span::new(attr.span.start, vspan.end),
                            format!(
                                "value for attribute {name} ({value}) of element {el} should be \
                                 quoted (i.e. {name}=\"{value}\")",
                                name = attr.name,
                                value = clip(v.raw, MAX_QUOTED_SRC),
                                el = tag.name
                            ),
                            move || {
                                if has_dquote {
                                    return None;
                                }
                                Some(Fix::new(vec![
                                    Edit::insert(vspan.start.offset, "\""),
                                    Edit::insert(vspan.end.offset, "\""),
                                ]))
                            },
                        );
                    }
                    _ => {}
                },
            }
        }
        let _ = span;
    }

    /// Pass 2 over attributes: table-driven checks — unknown/extension
    /// attributes, value validation, required attributes, IMG advice.
    fn check_attrs_semantic(&mut self, tag: &Tag<'_>, def: &'static ElementDef, span: Span) {
        let element_lc = def.name;
        for attr in &tag.attrs {
            // User-declared attributes are accepted on their element (or
            // everywhere, for a `*` declaration) before any table check.
            // The lookup is case-insensitive, so the original-case name can
            // be passed straight through without interning it.
            if !self.config.custom_attributes.is_empty()
                && self.config.is_custom_attribute(element_lc, attr.name)
            {
                continue;
            }
            match self.spec.attr_status(def, attr.name) {
                AttrStatus::Active(adef) => {
                    if adef.deprecated {
                        self.emit(
                            Rule::DeprecatedAttribute,
                            attr.span,
                            format!("attribute {} of <{}> is deprecated", attr.name, tag.name),
                        );
                    }
                    if let Some(v) = &attr.value {
                        if !v.raw.is_empty() && !self.spec.validate_attr_value(adef, v.raw) {
                            self.emit(
                                Rule::AttributeValue,
                                attr.span,
                                format!(
                                    "illegal value for {} attribute of {} ({})",
                                    attr.name,
                                    tag.name,
                                    clip(v.raw, MAX_QUOTED_SRC)
                                ),
                            );
                        }
                    }
                }
                AttrStatus::Inactive(adef) => {
                    if adef.mask & weblint_html::mask::ANYSTD == 0 {
                        self.emit(
                            Rule::ExtensionAttribute,
                            attr.span,
                            format!(
                                "attribute {} of <{}> is {} extension markup",
                                attr.name,
                                tag.name,
                                vendor_name(adef.mask)
                            ),
                        );
                    } else {
                        self.emit(
                            Rule::VersionMarkup,
                            attr.span,
                            format!(
                                "attribute {} of <{}> is not defined in {}",
                                attr.name,
                                tag.name,
                                self.spec.version().name()
                            ),
                        );
                    }
                }
                AttrStatus::Unknown => {
                    self.emit(
                        Rule::UnknownAttribute,
                        attr.span,
                        format!("unknown attribute {} for element <{}>", attr.name, tag.name),
                    );
                }
            }
        }
        for required in def.required_attrs {
            if !tag.has_attr(required) {
                self.emit(
                    Rule::RequiredAttribute,
                    span,
                    format!(
                        "<{}> requires the {} attribute",
                        tag.name,
                        required.to_ascii_uppercase()
                    ),
                );
            }
        }
        if def.name == "img" {
            if !tag.has_attr("alt") {
                let broken = tag.unterminated || tag.odd_quotes || tag.self_closing;
                let src = self.src;
                self.emit_fix(
                    Rule::ImgAlt,
                    span,
                    span,
                    "IMG element has no ALT attribute - ALT text helps non-graphical browsing"
                        .to_string(),
                    // Insert an empty ALT just before the closing `>`. The
                    // author still owes real ALT text, but the page now
                    // degrades gracefully in text browsers.
                    move || {
                        if broken {
                            return None;
                        }
                        let at = span.end.offset.checked_sub(1)?;
                        if src.byte(at) != Some(b'>') {
                            return None;
                        }
                        Some(Fix::one(Edit::insert(at, " ALT=\"\"")))
                    },
                );
            }
            if !tag.has_attr("width") || !tag.has_attr("height") {
                self.emit(
                    Rule::ImgSize,
                    span,
                    "IMG element lacks WIDTH and HEIGHT attributes, which help browsers \
                     lay out the page sooner"
                        .to_string(),
                );
            }
        }
        if def.name == "a" {
            if let Some(href) = tag.attr("href") {
                let value = href.value_raw().as_bytes();
                if value.len() >= 7 && value[..7].eq_ignore_ascii_case(b"mailto:") {
                    self.emit(
                        Rule::MailtoLink,
                        span,
                        "A HREF uses a mailto: link".to_string(),
                    );
                }
            }
        }
    }

    /// Style check for tag/attribute name case (`upper-case`/`lower-case`).
    ///
    /// `name` must be a subslice of the source (tag and attribute names
    /// are), so the fix can rewrite exactly its bytes.
    pub(crate) fn check_name_case(&mut self, name: &str, span: Span, what: &str) {
        let (check, to_case): (_, fn(&str) -> String) = match self.config.case_style() {
            CaseStyle::Any => return,
            CaseStyle::Upper if name.bytes().any(|b| b.is_ascii_lowercase()) => {
                (Rule::UpperCase, str::to_ascii_uppercase)
            }
            CaseStyle::Lower if name.bytes().any(|b| b.is_ascii_uppercase()) => {
                (Rule::LowerCase, str::to_ascii_lowercase)
            }
            _ => return,
        };
        let (start, len) = self.src.range_of(name);
        let direction = if check == Rule::UpperCase {
            "upper"
        } else {
            "lower"
        };
        self.emit_fix(
            check,
            span,
            span,
            format!(
                "{what} name {name} should be in {direction} case ({})",
                to_case(name)
            ),
            move || {
                let start = start as usize;
                Some(Fix::one(Edit::replace(
                    start,
                    start + len as usize,
                    to_case(name),
                )))
            },
        );
    }

    /// Interpret the enabled custom pattern rules against this start tag.
    ///
    /// Each rule is a conjunction of predicates — element name, required
    /// attributes (optionally value-matched), forbidden attributes — and a
    /// message template. Matches bypass [`Checker::emit`]: custom ids are
    /// not registry rules, so their diagnostics are built directly.
    fn check_custom_rules(&mut self, tag: &Tag<'_>, span: Span) {
        for i in 0..self.custom.len() {
            // Copy the reference out so pushing diagnostics below does not
            // alias the borrow of `self.custom`.
            let rule = self.custom[i];
            let t0 = self.prof_start();
            let mut fired = false;
            if rule.element_matches(tag.name) {
                let mut ok = true;
                // The first required attribute's value feeds `{value}`.
                let mut value: Option<&str> = None;
                for pred in &rule.require {
                    match tag.attr(&pred.name) {
                        Some(attr) => {
                            let raw = attr.value_raw();
                            if let Some(m) = &pred.matcher {
                                if !m.matches(raw) {
                                    ok = false;
                                    break;
                                }
                            }
                            if value.is_none() {
                                value = Some(raw);
                            }
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    ok = !rule.forbid.iter().any(|name| tag.has_attr(name));
                }
                if ok {
                    let message = rule.render_message(tag.name, value);
                    self.diags
                        .push(Diagnostic::at(rule.id, rule.category, span, message));
                    fired = true;
                }
            }
            if let Some(p) = self.profile.as_deref_mut() {
                if fired {
                    p.hit_custom(rule.id);
                }
                if let Some(t0) = t0 {
                    p.add_custom_time(rule.id, t0.elapsed());
                }
            }
        }
    }
}

/// SGML allows unquoted attribute values containing only name characters;
/// anything else should be quoted.
fn value_needs_quotes(value: &str) -> bool {
    !value.is_empty()
        && !value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.')
}

/// Truncate long source excerpts for messages.
fn clip(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_string();
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}...", &s[..end])
}

/// Human name for the vendor(s) in an extension mask.
fn vendor_name(mask: u16) -> &'static str {
    let ns = mask & weblint_html::mask::NS != 0;
    let ie = mask & weblint_html::mask::IE != 0;
    match (ns, ie) {
        (true, true) => "Netscape/Microsoft",
        (true, false) => "Netscape",
        (false, true) => "Microsoft",
        (false, false) => "vendor",
    }
}

/// The `-x` switch name that would enable the vendor's markup.
fn vendor_switch(mask: u16) -> &'static str {
    if mask & weblint_html::mask::NS != 0 {
        "netscape"
    } else {
        "microsoft"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_requirements() {
        assert!(!value_needs_quotes("100"));
        assert!(!value_needs_quotes("a.html"));
        assert!(!value_needs_quotes("top-left"));
        assert!(value_needs_quotes("#00ff00"));
        assert!(value_needs_quotes("a b"));
        assert!(value_needs_quotes("x/y"));
        assert!(!value_needs_quotes(""));
    }

    #[test]
    fn clip_truncates_at_char_boundary() {
        assert_eq!(clip("short", 60), "short");
        let long = "é".repeat(40);
        let clipped = clip(&long, 61);
        assert!(clipped.ends_with("..."));
        assert!(clipped.len() <= 64);
    }

    #[test]
    fn vendor_names() {
        use weblint_html::mask;
        assert_eq!(vendor_name(mask::NS), "Netscape");
        assert_eq!(vendor_name(mask::IE), "Microsoft");
        assert_eq!(vendor_name(mask::NS | mask::IE), "Netscape/Microsoft");
        assert_eq!(vendor_switch(mask::NS), "netscape");
        assert_eq!(vendor_switch(mask::IE), "microsoft");
    }
}
