//! The lint engine: "basically a stack machine with an ad-hoc parser, which
//! uses various heuristics to keep things together as it goes along" (§5.1).
//!
//! The file being processed is tokenised into start tags, text content and
//! end tags. Opening tags are pushed onto the main stack; closing tags pop
//! it. A secondary stack holds unresolved tags — elements displaced by
//! overlapping markup — so that their close tags, arriving later, do not
//! produce spurious messages. The heuristics (implied closes, overlap
//! resolution, silent handling of unknown elements' close tags) exist "in an
//! effort to minimise the number of warning cascades, where a single problem
//! generates a flurry of error messages"; they can be switched off via
//! [`crate::LintConfig::heuristics`] to measure exactly that effect.
//!
//! All engine state is keyed by interned [`names::NameId`]s and lives in a
//! reusable [`Scratch`], so a [`crate::LintSession`] can lint many
//! documents with amortized-zero allocation churn.

mod end;
pub(crate) mod names;
mod open;
mod scratch;
mod start;
mod text;
mod view;

pub(crate) use open::{Open, NO_FIX};
pub(crate) use scratch::Scratch;
pub(crate) use view::SrcView;

use std::time::Instant;

use weblint_html::HtmlSpec;
use weblint_rules::pattern::PatternRule;
use weblint_rules::profile::Profile;
use weblint_rules::{applies, kind_mask, Rule};
use weblint_tokenizer::{Pos, Span, Step, Token, TokenKind, Tokenizer};

use crate::fix::{Edit, Fix};
use crate::message::Diagnostic;
use crate::options::LintConfig;

use names::known;

/// Run every enabled check over `src` and return the diagnostics in source
/// order.
///
/// This is the pure-function core: (tokens, HTML tables, config) →
/// diagnostics. [`crate::Weblint`] provides the friendlier object API, and
/// [`crate::LintSession`] the amortized-allocation one.
pub fn check(spec: &HtmlSpec, config: &LintConfig, src: &str) -> Vec<Diagnostic> {
    let mut scratch = Scratch::default();
    check_with(spec, config, src, &mut scratch)
}

/// [`check`] against caller-provided scratch buffers. The scratch is reset
/// first, so any prior contents are irrelevant.
pub(crate) fn check_with(
    spec: &HtmlSpec,
    config: &LintConfig,
    src: &str,
    scratch: &mut Scratch,
) -> Vec<Diagnostic> {
    scratch.reset();
    let mut checker = Checker::new(spec, config, SrcView::new(src), scratch);
    drive(&mut checker, src);
    checker.finish()
}

/// Pump every token of an in-memory document through the checker, via the
/// same eof-aware [`Tokenizer::step`] the streaming session uses —
/// `step(true)` is the whole-input case of the one engine path, with none
/// of the stream path's copying or prefix-stability checks.
fn drive(checker: &mut Checker<'_>, src: &str) {
    let mut tokens = Tokenizer::new(src);
    while let Step::Token(token) = tokens.step(true) {
        checker.on_token(&token);
    }
}

/// [`check_with`], filling `profile` with per-rule hit and wall-time
/// counters plus the document's total engine time.
pub(crate) fn check_profiled(
    spec: &HtmlSpec,
    config: &LintConfig,
    src: &str,
    scratch: &mut Scratch,
    profile: &mut Profile,
) -> Vec<Diagnostic> {
    scratch.reset();
    let t0 = Instant::now();
    let mut checker = Checker::new(spec, config, SrcView::new(src), scratch);
    checker.profile = Some(profile);
    drive(&mut checker, src);
    let diags = checker.finish();
    profile.total_nanos += t0.elapsed().as_nanos() as u64;
    profile.documents += 1;
    diags
}

/// The per-document engine state that must survive between feeds of a
/// streamed document: everything in [`Checker`] that is not borrowed from
/// the session or derivable from the config. A [`crate::LintSession`]
/// holds one of these per in-flight document; [`Checker::resume`] loads it
/// for the duration of a feed and [`Checker::suspend`] stores it back.
/// (The element stacks and text accumulators also cross feeds, but they
/// live in [`Scratch`], which the session owns directly.)
#[derive(Debug, Clone)]
pub(crate) struct DocState {
    pub(crate) diags: Vec<Diagnostic>,
    pub(crate) seen_doctype: bool,
    pub(crate) first_tag_checked: bool,
    pub(crate) head_seen: bool,
    pub(crate) body_seen: bool,
    pub(crate) after_head: bool,
    pub(crate) last_heading: Option<u8>,
    pub(crate) end_pos: Pos,
    /// The enabled-rule mask, computed from the config on the first
    /// resume and reused for every later one. A streamed document is
    /// resumed once per token, and recomputing the mask (a registry walk
    /// with a hash lookup per rule) there would dominate the feed path.
    pub(crate) mask: Option<u64>,
}

impl Default for DocState {
    fn default() -> DocState {
        DocState {
            diags: Vec::new(),
            seen_doctype: false,
            first_tag_checked: false,
            head_seen: false,
            body_seen: false,
            after_head: false,
            last_heading: None,
            end_pos: Pos::START,
            mask: None,
        }
    }
}

/// Engine state for one document.
pub(crate) struct Checker<'a> {
    pub(crate) spec: &'a HtmlSpec,
    pub(crate) config: &'a LintConfig,
    pub(crate) src: SrcView<'a>,
    /// Reusable stacks, buffers and name tables.
    pub(crate) scratch: &'a mut Scratch,
    pub(crate) diags: Vec<Diagnostic>,
    pub(crate) seen_doctype: bool,
    pub(crate) first_tag_checked: bool,
    pub(crate) head_seen: bool,
    pub(crate) body_seen: bool,
    /// Between `</HEAD>` and `<BODY>`: content here is misplaced.
    pub(crate) after_head: bool,
    pub(crate) last_heading: Option<u8>,
    /// Position of the end of input, maintained as tokens stream past.
    pub(crate) end_pos: Pos,
    /// Bitmask of enabled registry rules (bit position = `Rule as u16`),
    /// computed once per document so every emission gates on a single AND.
    pub(crate) mask: u64,
    /// Enabled custom pattern rules, interpreted against each start tag
    /// after the built-in checks.
    pub(crate) custom: Vec<&'a PatternRule>,
    /// Per-rule cost counters, present only when profiling was requested.
    pub(crate) profile: Option<&'a mut Profile>,
    /// Whether any enabled rule inspects comments. The comment handler is
    /// pure emissions, so it can be skipped wholesale when this is false.
    check_comments: bool,
}

impl<'a> Checker<'a> {
    pub(crate) fn new(
        spec: &'a HtmlSpec,
        config: &'a LintConfig,
        src: SrcView<'a>,
        scratch: &'a mut Scratch,
    ) -> Checker<'a> {
        Checker::with_mask(spec, config, src, scratch, config.rule_mask())
    }

    /// [`Checker::new`] with the rule mask supplied by the caller, for
    /// resume paths that computed it once and cached it.
    fn with_mask(
        spec: &'a HtmlSpec,
        config: &'a LintConfig,
        src: SrcView<'a>,
        scratch: &'a mut Scratch,
        mask: u64,
    ) -> Checker<'a> {
        // An empty iterator collects without allocating, so documents
        // linted under a rule-free config pay nothing here.
        let custom: Vec<&'a PatternRule> = config
            .custom_rules
            .iter()
            .filter(|r| config.is_enabled(r.id))
            .collect();
        Checker {
            spec,
            config,
            src,
            scratch,
            diags: Vec::new(),
            seen_doctype: false,
            first_tag_checked: false,
            head_seen: false,
            body_seen: false,
            after_head: false,
            last_heading: None,
            end_pos: Pos::START,
            mask,
            custom,
            profile: None,
            check_comments: mask & kind_mask(applies::COMMENT) != 0,
        }
    }

    /// Rebuild a checker mid-document from suspended state, for the next
    /// feed of a streamed document. The borrowed fields (spec, config,
    /// scratch) come fresh from the session; everything else is moved or
    /// copied out of `state`.
    pub(crate) fn resume(
        spec: &'a HtmlSpec,
        config: &'a LintConfig,
        src: SrcView<'a>,
        scratch: &'a mut Scratch,
        state: &mut DocState,
    ) -> Checker<'a> {
        let mask = match state.mask {
            Some(mask) => mask,
            None => {
                let mask = config.rule_mask();
                state.mask = Some(mask);
                mask
            }
        };
        let mut checker = Checker::with_mask(spec, config, src, scratch, mask);
        checker.diags = std::mem::take(&mut state.diags);
        checker.seen_doctype = state.seen_doctype;
        checker.first_tag_checked = state.first_tag_checked;
        checker.head_seen = state.head_seen;
        checker.body_seen = state.body_seen;
        checker.after_head = state.after_head;
        checker.last_heading = state.last_heading;
        checker.end_pos = state.end_pos;
        checker
    }

    /// Store the surviving per-document state back into `state` at the end
    /// of a feed, releasing the borrows of the session's buffers.
    pub(crate) fn suspend(self, state: &mut DocState) {
        state.diags = self.diags;
        state.seen_doctype = self.seen_doctype;
        state.first_tag_checked = self.first_tag_checked;
        state.head_seen = self.head_seen;
        state.body_seen = self.body_seen;
        state.after_head = self.after_head;
        state.last_heading = self.last_heading;
        state.end_pos = self.end_pos;
    }

    pub(crate) fn on_token(&mut self, token: &Token<'_>) {
        self.end_pos = token.span.end;
        match &token.kind {
            TokenKind::StartTag(tag) => self.on_start_tag(tag, token.span),
            TokenKind::EndTag(tag) => self.on_end_tag(tag, token.span),
            TokenKind::Text(t) => self.on_text(t, token.span),
            TokenKind::Comment(c) => {
                if self.check_comments {
                    self.on_comment(c, token.span)
                }
            }
            TokenKind::Doctype(d) => self.on_doctype(d, token.span),
            // Other markup declarations and PIs are passed through silently:
            // weblint checks HTML, not SGML prologues.
            TokenKind::Decl(_) | TokenKind::Pi(_) => {}
        }
    }

    /// Emit a diagnostic if its rule is enabled.
    pub(crate) fn emit(&mut self, rule: Rule, span: Span, message: String) {
        if self.mask & rule.bit() == 0 {
            return;
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.hit(rule);
        }
        let def = rule.descriptor();
        self.diags
            .push(Diagnostic::at(def.id, def.category, span, message));
    }

    /// Emit a diagnostic that has a mechanical repair.
    ///
    /// `span` is where the message reports (line/column come from its
    /// start, exactly as [`Checker::emit`]); `fix_span` is the full byte
    /// range of the construct being repaired, recorded on the diagnostic
    /// so downstream consumers never re-scan the source. The fix itself
    /// is built lazily — `build` only runs in fix-collecting mode, so the
    /// one-shot lint path pays a single branch for all of this. `build`
    /// may return `None` for instances that are not mechanically
    /// repairable (mangled quoting, out-of-range offsets).
    pub(crate) fn emit_fix(
        &mut self,
        rule: Rule,
        span: Span,
        fix_span: Span,
        message: String,
        build: impl FnOnce() -> Option<Fix>,
    ) {
        if self.mask & rule.bit() == 0 {
            return;
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.hit(rule);
        }
        let def = rule.descriptor();
        let mut diag = Diagnostic::at(def.id, def.category, span, message);
        diag.span = fix_span;
        if self.config.emit_fixes {
            if let Some(fix) = build() {
                // The span audit: a diagnostic that carries a repair must
                // also carry the full span of what it repairs.
                debug_assert!(
                    !fix_span.is_empty(),
                    "fixable diagnostic `{}` has an empty span",
                    def.id
                );
                debug_assert!(
                    fix.is_well_formed() && !fix.edits.is_empty(),
                    "fix for `{}` is malformed: {fix:?}",
                    def.id
                );
                diag.fix = Some(Box::new(fix));
            }
        }
        self.diags.push(diag);
    }

    /// Open a profiling bracket: `Some(now)` only when profiling, so the
    /// unprofiled hot path pays a single branch.
    #[inline]
    pub(crate) fn prof_start(&self) -> Option<Instant> {
        self.profile.as_ref().map(|_| Instant::now())
    }

    /// Close a profiling bracket opened by [`Checker::prof_start`],
    /// attributing the elapsed time to `rule`. Brackets cover whole check
    /// sections; `rule` is the section's face (see DESIGN.md §26).
    #[inline]
    pub(crate) fn prof_end(&mut self, rule: Rule, t0: Option<Instant>) {
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.add_time(rule, t0.elapsed());
        }
    }

    /// Whether a `<HEAD>` element is currently open.
    pub(crate) fn in_head(&self) -> bool {
        let head = known().head;
        self.scratch.stack.iter().any(|o| o.id == head)
    }

    /// End-of-document processing: force-close whatever is still open and
    /// run the whole-document checks. Split out of [`Checker::finish`] so a
    /// streaming session, which keeps the checker only for the duration of
    /// one feed, can run it on the final feed without consuming self.
    pub(crate) fn run_eof_checks(&mut self) {
        let eof = Span::empty(self.end_pos);
        let end_offset = self.end_pos.offset;
        while let Some(open) = self.scratch.stack.pop() {
            let silent =
                self.config.heuristics && open.def.map(|d| d.end_tag_optional()).unwrap_or(true);
            if !silent {
                let orig = open.orig(&self.scratch.origs).to_string();
                self.emit_fix(
                    Rule::UnclosedElement,
                    eof,
                    open.name_span,
                    format!(
                        "no closing </{orig}> seen for <{orig}> on line {line}",
                        line = open.line
                    ),
                    // Append the missing end tag at end-of-file. The stack
                    // pops innermost-first, and same-offset insertions keep
                    // their emission order, so nesting comes out right.
                    move || Some(Fix::one(Edit::insert(end_offset, format!("</{orig}>")))),
                );
            }
            self.close_bookkeeping(&open, eof);
            self.scratch.release_orig(&open);
        }
        if self.first_tag_checked && !self.config.fragment {
            if !self.head_seen {
                self.emit(
                    Rule::RequireHead,
                    eof,
                    "document should contain a HEAD element".to_string(),
                );
            }
            if self.scratch.seen_line(known().title) == 0 {
                self.emit(
                    Rule::RequireTitle,
                    eof,
                    "no <TITLE> in HEAD element".to_string(),
                );
            }
        }
    }

    /// One-shot end of document: run the EOF checks and yield the
    /// accumulated diagnostics.
    fn finish(mut self) -> Vec<Diagnostic> {
        self.run_eof_checks();
        self.diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let spec = HtmlSpec::default();
        let config = LintConfig::default();
        check(&spec, &config, src)
    }

    fn ids(src: &str) -> Vec<&'static str> {
        lint(src).iter().map(|d| d.id).collect()
    }

    const CLEAN: &str = "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n\
        <HTML>\n<HEAD>\n<TITLE>ok</TITLE>\n</HEAD>\n<BODY>\n\
        <H1>Fine</H1>\n<P>Hello there.\n</BODY>\n</HTML>\n";

    #[test]
    fn clean_document_is_clean() {
        assert_eq!(lint(CLEAN), vec![]);
    }

    #[test]
    fn empty_input_is_clean() {
        assert_eq!(lint(""), vec![]);
    }

    #[test]
    fn text_only_input_is_clean() {
        // No markup at all: the structure checks stay quiet.
        assert_eq!(lint("just some words\n"), vec![]);
    }

    #[test]
    fn missing_doctype_reported_at_first_tag() {
        let diags = lint("<HTML><HEAD><TITLE>x</TITLE></HEAD><BODY>y</BODY></HTML>");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].id, "require-doctype");
        assert_eq!(diags[0].line, 1);
        assert_eq!(
            diags[0].message,
            "first element was not DOCTYPE specification"
        );
    }

    #[test]
    fn missing_head_and_title_reported_at_eof() {
        let src = "<!DOCTYPE HTML PUBLIC \"x\">\n<HTML>\n<BODY>hi</BODY>\n</HTML>";
        let found = ids(src);
        assert!(found.contains(&"require-head"), "{found:?}");
        assert!(found.contains(&"require-title"), "{found:?}");
    }

    #[test]
    fn fragment_mode_skips_structure_checks() {
        let spec = HtmlSpec::default();
        let mut config = LintConfig::default();
        config.fragment = true;
        let diags = check(&spec, &config, "<B>bold</B> and <I>italic</I>");
        assert_eq!(diags, vec![]);
    }

    #[test]
    fn unclosed_at_eof_reported() {
        let src = format!("{}<B>dangling", CLEAN);
        let diags = lint(&src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].id, "unclosed-element");
        assert!(diags[0].message.contains("</B>"), "{}", diags[0].message);
    }

    #[test]
    fn optional_end_tags_close_silently_at_eof() {
        // P and LI end tags are omissible: no noise.
        let src = "<!DOCTYPE HTML PUBLIC \"x\">\n<HTML><HEAD><TITLE>t</TITLE></HEAD>\
                   <BODY><P>one<UL><LI>two</UL></BODY></HTML>";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_checks() {
        // Reusing one Scratch across documents — including ones that leave
        // elements open, unknown names interned, and buffers dirty — must
        // give exactly the diagnostics a fresh check gives.
        let spec = HtmlSpec::default();
        let config = LintConfig::default();
        let docs = [
            CLEAN,
            "<HTML><HEAD><TITLE>t</TITLE><BODY><A HREF=x>here</A>",
            "<NOSUCHTAG><B>dangling",
            "",
            CLEAN,
        ];
        let mut scratch = Scratch::default();
        for doc in docs {
            let reused = check_with(&spec, &config, doc, &mut scratch);
            let fresh = check(&spec, &config, doc);
            assert_eq!(reused, fresh, "{doc:?}");
        }
    }
}
