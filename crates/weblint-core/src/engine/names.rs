//! Per-document name identity: static atoms with a side intern.
//!
//! Every name the engine tracks — element names on the stack, the
//! `seen`-line history, attribute dedup — is keyed by a [`NameId`] instead
//! of a lower-cased `String`. Names in the static tables resolve to their
//! [`Atom`] without allocating; names outside the tables (unknown elements
//! and attributes, the rare case) fall back to a small per-document side
//! intern. Comparing two `NameId`s is a `u32` compare, which is what makes
//! stack matching and dedup allocation-free.

use std::sync::OnceLock;

use weblint_html::Atom;

/// Identity of a name within one document: an atom index, or
/// `Atom::count() + n` for the `n`th side-interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NameId(u32);

impl NameId {
    /// The id of a statically interned name.
    pub(crate) fn from_atom(atom: Atom) -> NameId {
        NameId(atom.index() as u32)
    }

    /// The atom behind this id, if it is statically interned.
    pub(crate) fn atom(self) -> Option<Atom> {
        if (self.0 as usize) < Atom::count() {
            Some(Atom::from_index(self.0 as usize))
        } else {
            None
        }
    }

    /// Index into a dense per-document table (`seen` lines).
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// The per-document name table: atoms plus a side intern for everything
/// else. The side intern is cleared between documents; the fallback counter
/// is cumulative across a session — it is the allocation canary, and stays
/// at zero while every name a document uses is in the static tables.
#[derive(Debug, Clone, Default)]
pub(crate) struct NameTable {
    extra: Vec<String>,
    fallbacks: u64,
}

impl NameTable {
    /// Intern `name` (any ASCII case). Allocation-free for table names.
    pub(crate) fn id(&mut self, name: &str) -> NameId {
        if let Some(atom) = Atom::from_ascii(name.as_bytes()) {
            return NameId::from_atom(atom);
        }
        let pos = match self.extra.iter().position(|s| s.eq_ignore_ascii_case(name)) {
            Some(pos) => pos,
            None => {
                self.fallbacks += 1;
                self.extra.push(name.to_ascii_lowercase());
                self.extra.len() - 1
            }
        };
        NameId((Atom::count() + pos) as u32)
    }

    /// The canonical lower-case spelling behind an id.
    pub(crate) fn resolve(&self, id: NameId) -> &str {
        match id.atom() {
            Some(atom) => atom.as_str(),
            None => &self.extra[id.index() - Atom::count()],
        }
    }

    /// Drop the per-document side intern; ids from earlier documents become
    /// invalid. The fallback counter survives.
    pub(crate) fn clear(&mut self) {
        self.extra.clear();
    }

    /// Cumulative count of names that missed the static atom table.
    pub(crate) fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

/// Ids of the element names the engine special-cases, resolved from the
/// atom table once per process.
#[derive(Debug)]
pub(crate) struct Known {
    pub(crate) a: NameId,
    pub(crate) title: NameId,
    pub(crate) head: NameId,
    pub(crate) body: NameId,
    pub(crate) html: NameId,
    pub(crate) frameset: NameId,
    pub(crate) noframes: NameId,
    /// `h1`..`h6`, in order.
    pub(crate) headings: [NameId; 6],
    /// Elements that must not be nested inside themselves.
    pub(crate) non_nestable: [NameId; 7],
}

/// The process-wide [`Known`] ids.
pub(crate) fn known() -> &'static Known {
    static KNOWN: OnceLock<Known> = OnceLock::new();
    KNOWN.get_or_init(|| {
        let at = |name: &str| {
            NameId::from_atom(Atom::from_ascii(name.as_bytes()).expect("name is in the atom table"))
        };
        Known {
            a: at("a"),
            title: at("title"),
            head: at("head"),
            body: at("body"),
            html: at("html"),
            frameset: at("frameset"),
            noframes: at("noframes"),
            headings: [at("h1"), at("h2"), at("h3"), at("h4"), at("h5"), at("h6")],
            non_nestable: [
                at("a"),
                at("form"),
                at("label"),
                at("button"),
                at("select"),
                at("style"),
                at("script"),
            ],
        }
    })
}

/// Heading level of `h1`..`h6` ids.
pub(crate) fn heading_level(id: NameId) -> Option<u8> {
    known()
        .headings
        .iter()
        .position(|&h| h == id)
        .map(|i| (i + 1) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_intern_without_fallback() {
        let mut t = NameTable::default();
        let id = t.id("TABLE");
        assert_eq!(id, t.id("table"));
        assert_eq!(t.resolve(id), "table");
        assert_eq!(t.fallbacks(), 0);
        assert!(id.atom().is_some());
    }

    #[test]
    fn unknown_names_side_intern_once() {
        let mut t = NameTable::default();
        let id = t.id("BLOCKQOUTE");
        assert_eq!(id, t.id("blockqoute"));
        assert_eq!(t.resolve(id), "blockqoute");
        assert_eq!(t.fallbacks(), 1);
        assert!(id.atom().is_none());
        // A second distinct unknown name gets its own id and fallback.
        let other = t.id("nosuchtag");
        assert_ne!(id, other);
        assert_eq!(t.fallbacks(), 2);
    }

    #[test]
    fn clear_drops_side_intern_keeps_counter() {
        let mut t = NameTable::default();
        t.id("nosuchtag");
        t.clear();
        t.id("nosuchtag");
        assert_eq!(t.fallbacks(), 2);
    }

    #[test]
    fn heading_levels_resolve() {
        let mut t = NameTable::default();
        assert_eq!(heading_level(t.id("h1")), Some(1));
        assert_eq!(heading_level(t.id("H6")), Some(6));
        assert_eq!(heading_level(t.id("h7")), None);
        assert_eq!(heading_level(t.id("hr")), None);
        assert_eq!(heading_level(t.id("p")), None);
    }

    #[test]
    fn known_ids_differ() {
        let k = known();
        assert_ne!(k.a, k.title);
        assert!(k.non_nestable.contains(&k.a));
        assert!(!k.non_nestable.contains(&k.body));
    }
}
