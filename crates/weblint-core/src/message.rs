//! Diagnostics: what weblint tells the user.

use std::fmt;
use weblint_tokenizer::{Pos, Span};

use crate::fix::Fix;

// The category enum now lives in the registry crate, alongside the
// descriptors that carry it; re-exported here so `weblint_core::Category`
// keeps working everywhere.
pub use weblint_rules::Category;

/// One output message.
///
/// "All output messages have an identifier, which is used when enabling or
/// disabling it" (§4.3). The identifier doubles as the stable, machine-
/// readable name in JSON output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The message identifier from the catalog (e.g. `unclosed-element`).
    pub id: &'static str,
    /// Error, warning, or style comment.
    pub category: Category,
    /// 1-based line the message refers to.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The human-readable message text.
    pub message: String,
    /// Byte range of the construct the message concerns. For fixable
    /// diagnostics this is always a full, non-empty span (the span audit);
    /// position-only messages carry an empty span at their report point.
    pub span: Span,
    /// A mechanical repair, present only when the lint run collected
    /// fixes ([`crate::LintConfig::emit_fixes`]) and the check has one.
    /// Boxed: most diagnostics have no fix and the hot path should not
    /// pay for one.
    pub fix: Option<Box<Fix>>,
}

impl Diagnostic {
    /// Build a diagnostic from its report coordinates, with an empty span
    /// at that position and no fix. This is the constructor for callers
    /// outside the engine (site checks, tests) that have no source span.
    pub fn new(
        id: &'static str,
        category: Category,
        line: u32,
        col: u32,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            id,
            category,
            line,
            col,
            message,
            span: Span::empty(Pos::new(line, col, 0)),
            fix: None,
        }
    }

    /// Build a diagnostic at the start of `span`.
    pub fn at(id: &'static str, category: Category, span: Span, message: String) -> Diagnostic {
        Diagnostic {
            id,
            category,
            line: span.start.line,
            col: span.start.col,
            message,
            span,
            fix: None,
        }
    }

    /// Render as a compact JSON object with the stable field order
    /// `id, category, line, col, message`, followed by `fix` when a
    /// repair is attached.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"category\":{},\"line\":{},\"col\":{},\"message\":{}",
            json_string(self.id),
            json_string(self.category.name()),
            self.line,
            self.col,
            json_string(&self.message)
        );
        if let Some(fix) = &self.fix {
            out.push_str(&format!(",\"fix\":{}", fix.to_json()));
        }
        out.push('}');
        out
    }
}

/// Quote and escape `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblint_tokenizer::{Pos, Span};

    #[test]
    fn display_uses_short_form() {
        let d = Diagnostic::new(
            "unclosed-element",
            Category::Error,
            4,
            1,
            "no closing </TITLE> seen for <TITLE> on line 3".to_string(),
        );
        assert_eq!(
            d.to_string(),
            "line 4: no closing </TITLE> seen for <TITLE> on line 3"
        );
    }

    #[test]
    fn at_takes_span_start() {
        let span = Span::new(Pos::new(3, 7, 20), Pos::new(3, 12, 25));
        let d = Diagnostic::at("odd-quotes", Category::Error, span, "x".into());
        assert_eq!((d.line, d.col), (3, 7));
    }

    #[test]
    fn serializes_to_json() {
        let d = Diagnostic::new("img-alt", Category::Warning, 1, 2, "m".into());
        let json = d.to_json();
        assert!(json.contains("\"id\":\"img-alt\""));
        assert!(json.contains("\"category\":\"warning\""));
        assert!(!json.contains("\"fix\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.get("line").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn json_includes_fix_when_present() {
        use crate::fix::{Edit, Fix};
        let mut d = Diagnostic::new("img-alt", Category::Warning, 1, 2, "m".into());
        d.fix = Some(Box::new(Fix::one(Edit::insert(7, " ALT=\"\""))));
        let parsed: serde_json::Value = serde_json::from_str(&d.to_json()).unwrap();
        let fix = parsed.get("fix").unwrap().as_array().unwrap();
        assert_eq!(fix[0].get("start").unwrap().as_u64(), Some(7));
        assert_eq!(fix[0].get("text").unwrap().as_str(), Some(" ALT=\"\""));
    }

    #[test]
    fn json_strings_escaped() {
        let d = Diagnostic::new(
            "img-alt",
            Category::Warning,
            1,
            2,
            "quote \" backslash \\ newline \n control \u{1}".into(),
        );
        let parsed: serde_json::Value = serde_json::from_str(&d.to_json()).unwrap();
        assert_eq!(
            parsed.get("message").unwrap().as_str(),
            Some("quote \" backslash \\ newline \n control \u{1}")
        );
    }

    #[test]
    fn categories_order_by_severity() {
        assert!(Category::Error < Category::Warning);
        assert!(Category::Warning < Category::Style);
    }
}
