//! Diagnostics: what weblint tells the user.

use std::fmt;
use weblint_tokenizer::Span;

/// The three categories of output message (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// "Errors, which identify things you should fix."
    Error,
    /// "Warnings, which identify things you should think about fixing."
    Warning,
    /// "Style comments, which can be configured to match your own
    /// guidelines."
    Style,
}

impl Category {
    /// Short name as used in configuration (`enable error`).
    pub fn name(self) -> &'static str {
        match self {
            Category::Error => "error",
            Category::Warning => "warning",
            Category::Style => "style",
        }
    }

    /// Parse a category name (case-insensitive, without allocating).
    pub fn parse(s: &str) -> Option<Category> {
        let eq = |name: &str| s.eq_ignore_ascii_case(name);
        if eq("error") || eq("errors") {
            Some(Category::Error)
        } else if eq("warning") || eq("warnings") {
            Some(Category::Warning)
        } else if eq("style") {
            Some(Category::Style)
        } else {
            None
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One output message.
///
/// "All output messages have an identifier, which is used when enabling or
/// disabling it" (§4.3). The identifier doubles as the stable, machine-
/// readable name in JSON output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The message identifier from the catalog (e.g. `unclosed-element`).
    pub id: &'static str,
    /// Error, warning, or style comment.
    pub category: Category,
    /// 1-based line the message refers to.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The human-readable message text.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic at the start of `span`.
    pub fn at(id: &'static str, category: Category, span: Span, message: String) -> Diagnostic {
        Diagnostic {
            id,
            category,
            line: span.start.line,
            col: span.start.col,
            message,
        }
    }

    /// Render as a compact JSON object with the stable field order
    /// `id, category, line, col, message`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"category\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_string(self.id),
            json_string(self.category.name()),
            self.line,
            self.col,
            json_string(&self.message)
        )
    }
}

/// Quote and escape `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblint_tokenizer::{Pos, Span};

    #[test]
    fn category_names_round_trip() {
        for c in [Category::Error, Category::Warning, Category::Style] {
            assert_eq!(Category::parse(c.name()), Some(c));
        }
        assert_eq!(Category::parse("ERRORS"), Some(Category::Error));
        assert_eq!(Category::parse("nope"), None);
    }

    #[test]
    fn display_uses_short_form() {
        let d = Diagnostic {
            id: "unclosed-element",
            category: Category::Error,
            line: 4,
            col: 1,
            message: "no closing </TITLE> seen for <TITLE> on line 3".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "line 4: no closing </TITLE> seen for <TITLE> on line 3"
        );
    }

    #[test]
    fn at_takes_span_start() {
        let span = Span::new(Pos::new(3, 7, 20), Pos::new(3, 12, 25));
        let d = Diagnostic::at("odd-quotes", Category::Error, span, "x".into());
        assert_eq!((d.line, d.col), (3, 7));
    }

    #[test]
    fn serializes_to_json() {
        let d = Diagnostic {
            id: "img-alt",
            category: Category::Warning,
            line: 1,
            col: 2,
            message: "m".into(),
        };
        let json = d.to_json();
        assert!(json.contains("\"id\":\"img-alt\""));
        assert!(json.contains("\"category\":\"warning\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.get("line").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn json_strings_escaped() {
        let d = Diagnostic {
            id: "img-alt",
            category: Category::Warning,
            line: 1,
            col: 2,
            message: "quote \" backslash \\ newline \n control \u{1}".into(),
        };
        let parsed: serde_json::Value = serde_json::from_str(&d.to_json()).unwrap();
        assert_eq!(
            parsed.get("message").unwrap().as_str(),
            Some("quote \" backslash \\ newline \n control \u{1}")
        );
    }

    #[test]
    fn categories_order_by_severity() {
        assert!(Category::Error < Category::Warning);
        assert!(Category::Warning < Category::Style);
    }
}
