//! The weblint engine: lint-style syntax and style checking for HTML.
//!
//! A Rust reproduction of weblint 2 (Neil Bowers, *Weblint: Just Another
//! Perl Hack*, USENIX 1998). Weblint "does not aspire to be a strict SGML
//! validator, but to provide helpful comments for humans": it tokenizes a
//! page, runs a stack machine with cascade-suppression heuristics over the
//! tokens, and reports errors, warnings and style comments — every one of
//! which can be enabled or disabled by identifier.
//!
//! The crate layering mirrors the paper's module architecture (§5):
//!
//! * `weblint-tokenizer` — the ad-hoc, error-tolerant parser (§5.1)
//! * `weblint-html` — the table-driven HTML version modules (§5.5)
//! * this crate — the `Weblint` class (§5.4), the warnings catalog (§5.6)
//!   and output formatting
//! * `weblint-config` — configuration files and switches (§5.7)
//!
//! # Examples
//!
//! ```
//! use weblint_core::{Weblint, format_report, OutputFormat};
//!
//! let weblint = Weblint::new();
//! let diags = weblint.check_string("<H1>My Example</H2>");
//! assert!(diags.iter().any(|d| d.id == "heading-mismatch"));
//! let report = format_report(&diags, "test.html", OutputFormat::Short);
//! assert!(report.contains("malformed heading"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod engine;
mod fix;
mod format;
mod linter;
mod message;
mod options;
mod session;

pub use catalog::{check_def, ids_in_category, CheckDef, CATALOG};
pub use engine::check;
pub use fix::{Edit, Fix};
pub use format::{format_diagnostic, format_report, OutputFormat, Summary};
pub use linter::Weblint;
pub use message::{Category, Diagnostic};
pub use options::{CaseStyle, LintConfig, UnknownCheck};
pub use session::{LintRequest, LintSession};

// The registry this engine dispatches over, re-exported whole: descriptors,
// custom pattern rules, and the profiling counters.
pub use weblint_rules::pattern::{PatternRule, RuleParseError};
pub use weblint_rules::profile::{render_hits, Profile, RuleStat};
pub use weblint_rules::{applies, intern_id, kind_mask, Rule, REGISTRY};

// Re-export the types callers need to configure a checker.
pub use weblint_html::{Extensions, HtmlSpec, HtmlVersion};
pub use weblint_tokenizer::{Pos, Span};
