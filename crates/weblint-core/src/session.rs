//! Reusable lint sessions: check many documents with amortized-zero
//! allocation churn.
//!
//! [`crate::Weblint`] builds fresh engine state per document; a
//! [`LintSession`] owns that state — the element stacks, the seen-line
//! table, the side name intern, and the text accumulators — and reuses it
//! across [`LintSession::check_string`] calls. After the first few
//! documents the hot path performs no per-document allocations beyond the
//! returned diagnostics themselves, which is what a long-lived service
//! worker wants.

use std::fs;
use std::io;
use std::path::Path;

use weblint_html::HtmlSpec;

use crate::engine::{self, Scratch};
use crate::message::Diagnostic;
use crate::options::LintConfig;

/// An HTML checker that owns reusable working memory.
///
/// Behaves exactly like [`crate::Weblint`] — same configuration surface,
/// byte-identical diagnostics — but `check_string` takes `&mut self` so the
/// engine's scratch buffers can be recycled between documents.
///
/// # Examples
///
/// ```
/// use weblint_core::LintSession;
///
/// let mut session = LintSession::new();
/// for doc in ["<B>unclosed", "<I>also unclosed"] {
///     let diags = session.check_string(doc);
///     assert!(diags.iter().any(|d| d.id == "unclosed-element"));
/// }
/// assert_eq!(session.fallback_interns(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LintSession {
    config: LintConfig,
    spec: HtmlSpec,
    scratch: Scratch,
    documents: u64,
}

impl LintSession {
    /// A session with the default configuration: HTML 4.0 Transitional, no
    /// extensions, the 42 default messages enabled.
    pub fn new() -> LintSession {
        LintSession::with_config(LintConfig::default())
    }

    /// A session with an explicit configuration.
    pub fn with_config(config: LintConfig) -> LintSession {
        let spec = HtmlSpec::new(config.version, config.extensions);
        LintSession {
            config,
            spec,
            scratch: Scratch::default(),
            documents: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Replace the configuration (rebuilding the language tables if the
    /// version or extensions changed). The scratch buffers are kept.
    pub fn set_config(&mut self, config: LintConfig) {
        if config.version != self.config.version || config.extensions != self.config.extensions {
            self.spec = HtmlSpec::new(config.version, config.extensions);
        }
        self.config = config;
    }

    /// The assembled HTML language tables this session consults.
    pub fn spec(&self) -> &HtmlSpec {
        &self.spec
    }

    /// Check a document held in memory, reusing this session's buffers.
    /// Never fails; returns diagnostics in source order.
    pub fn check_string(&mut self, src: &str) -> Vec<Diagnostic> {
        self.documents += 1;
        engine::check_with(&self.spec, &self.config, src, &mut self.scratch)
    }

    /// [`LintSession::check_string`], accumulating per-rule hit and
    /// wall-time counters into `profile`. Diagnostics are identical to the
    /// unprofiled path; the engine merely brackets its check sections with
    /// timers. This is what `weblint -profile` runs.
    pub fn check_string_profiled(
        &mut self,
        src: &str,
        profile: &mut weblint_rules::profile::Profile,
    ) -> Vec<Diagnostic> {
        self.documents += 1;
        engine::check_profiled(&self.spec, &self.config, src, &mut self.scratch, profile)
    }

    /// Check a file on disk.
    ///
    /// Non-UTF-8 bytes are replaced rather than rejected — 1990s HTML is
    /// frequently Latin-1, and weblint checks what it can.
    pub fn check_file(&mut self, path: impl AsRef<Path>) -> io::Result<Vec<Diagnostic>> {
        let bytes = fs::read(path)?;
        let src = String::from_utf8_lossy(&bytes);
        Ok(self.check_string(&src))
    }

    /// Number of documents checked by this session.
    pub fn documents_checked(&self) -> u64 {
        self.documents
    }

    /// Cumulative count of names that missed the static atom table and fell
    /// back to the per-document side intern — the allocation canary. Stays
    /// at zero while every element and attribute name the session sees is
    /// in the generated tables.
    pub fn fallback_interns(&self) -> u64 {
        self.scratch.names.fallbacks()
    }
}

impl Default for LintSession {
    fn default() -> LintSession {
        LintSession::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linter::Weblint;
    use weblint_html::{Extensions, HtmlVersion};

    #[test]
    fn matches_weblint_across_documents() {
        let weblint = Weblint::new();
        let mut session = LintSession::new();
        let docs = [
            "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>hi</BODY></HTML>",
            "<H1>My Example</H2>",
            "<NOSUCHTAG attr=1 attr=2><B>dangling",
            "",
            "<A HREF=\"mailto:x@y\">here</A>",
        ];
        for doc in docs {
            assert_eq!(
                session.check_string(doc),
                weblint.check_string(doc),
                "{doc:?}"
            );
        }
        assert_eq!(session.documents_checked(), docs.len() as u64);
    }

    #[test]
    fn fallback_counter_tracks_unknown_names() {
        let mut session = LintSession::new();
        session.check_string("<HTML><BODY><P>fine</BODY></HTML>");
        assert_eq!(session.fallback_interns(), 0);
        session.check_string("<BLOCKQOUTE>x</BLOCKQOUTE>");
        // Open and close of the same unknown name intern it once per
        // document.
        assert_eq!(session.fallback_interns(), 1);
        session.check_string("<BLOCKQOUTE>x</BLOCKQOUTE>");
        assert_eq!(session.fallback_interns(), 2);
    }

    #[test]
    fn set_config_rebuilds_spec() {
        let mut session = LintSession::new();
        let mut config = LintConfig::default();
        config.extensions = Extensions::netscape();
        session.set_config(config);
        assert!(session.spec().element("blink").is_some());
        let diags = session.check_string("<BLINK>hi</BLINK>");
        assert!(!diags.iter().any(|d| d.id == "extension-markup"));
    }

    #[test]
    fn config_versions_match_weblint() {
        let mut config = LintConfig::default();
        config.version = HtmlVersion::Html32;
        let weblint = Weblint::with_config(config.clone());
        let mut session = LintSession::with_config(config);
        let doc = "<HTML><BODY><ACRONYM>HTML</ACRONYM></BODY></HTML>";
        assert_eq!(session.check_string(doc), weblint.check_string(doc));
    }

    #[test]
    fn check_file_round_trip() {
        let dir = std::env::temp_dir().join("weblint-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.html");
        std::fs::write(&path, "<B>x").unwrap();
        let mut session = LintSession::new();
        let diags = session.check_file(&path).unwrap();
        assert!(!diags.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
