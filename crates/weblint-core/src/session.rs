//! Reusable lint sessions: check many documents with amortized-zero
//! allocation churn, one-shot or incrementally.
//!
//! [`crate::Weblint`] builds fresh engine state per document; a
//! [`LintSession`] owns that state — the element stacks, the seen-line
//! table, the side name intern, and the text accumulators — and reuses it
//! across [`LintSession::check_string`] calls. After the first few
//! documents the hot path performs no per-document allocations beyond the
//! returned diagnostics themselves, which is what a long-lived service
//! worker wants.
//!
//! A session can also lint a document *incrementally*: push byte chunks
//! with [`LintSession::feed`] as they arrive off a socket and collect
//! diagnostics as soon as their trigger token closes, then
//! [`LintSession::finish`] at end of input for the end-of-document checks.
//! The diagnostics, concatenated, are byte-identical to one-shot output
//! regardless of where the chunk boundaries fall — both paths drive the
//! same eof-aware tokenizer step and the same checker. Memory while
//! streaming is bounded by the engine state plus the largest single token,
//! not the document size.

use std::fs;
use std::io;
use std::path::Path;

use weblint_html::HtmlSpec;
use weblint_tokenizer::StreamTokenizer;

use crate::engine::{self, Checker, DocState, Scratch, SrcView, NO_FIX};
use crate::message::Diagnostic;
use crate::options::LintConfig;

/// Options for a single [`LintSession::lint`] call — the one entry point
/// behind [`LintSession::check_string`] and the deprecated
/// [`LintSession::check_string_profiled`].
#[derive(Debug, Default)]
pub struct LintRequest<'p> {
    /// Override the session configuration's `emit_fixes` for this document:
    /// `Some(true)` collects mechanical repairs on the diagnostics,
    /// `Some(false)` suppresses them, `None` inherits the config.
    pub emit_fixes: Option<bool>,
    /// Accumulate per-rule hit and wall-time counters for this document.
    /// Diagnostics are identical to the unprofiled path; the engine merely
    /// brackets its check sections with timers.
    pub profile: Option<&'p mut weblint_rules::profile::Profile>,
}

/// In-flight state of a document being linted incrementally.
#[derive(Debug, Clone, Default)]
struct StreamState {
    tok: StreamTokenizer,
    doc: DocState,
    /// How many of `doc.diags` have already been handed to the caller.
    yielded: usize,
}

/// An HTML checker that owns reusable working memory.
///
/// Behaves exactly like [`crate::Weblint`] — same configuration surface,
/// byte-identical diagnostics — but `check_string` takes `&mut self` so the
/// engine's scratch buffers can be recycled between documents.
///
/// # Examples
///
/// ```
/// use weblint_core::LintSession;
///
/// let mut session = LintSession::new();
/// for doc in ["<B>unclosed", "<I>also unclosed"] {
///     let diags = session.check_string(doc);
///     assert!(diags.iter().any(|d| d.id == "unclosed-element"));
/// }
/// assert_eq!(session.fallback_interns(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LintSession {
    config: LintConfig,
    spec: HtmlSpec,
    scratch: Scratch,
    documents: u64,
    /// Present while a streamed document is between `feed` and `finish`.
    stream: Option<StreamState>,
}

impl LintSession {
    /// A session with the default configuration: HTML 4.0 Transitional, no
    /// extensions, the 42 default messages enabled.
    pub fn new() -> LintSession {
        LintSession::with_config(LintConfig::default())
    }

    /// A session with an explicit configuration.
    pub fn with_config(config: LintConfig) -> LintSession {
        let spec = HtmlSpec::new(config.version, config.extensions);
        LintSession {
            config,
            spec,
            scratch: Scratch::default(),
            documents: 0,
            stream: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Replace the configuration (rebuilding the language tables if the
    /// version or extensions changed). The scratch buffers are kept.
    pub fn set_config(&mut self, config: LintConfig) {
        if config.version != self.config.version || config.extensions != self.config.extensions {
            self.spec = HtmlSpec::new(config.version, config.extensions);
        }
        self.config = config;
    }

    /// The assembled HTML language tables this session consults.
    pub fn spec(&self) -> &HtmlSpec {
        &self.spec
    }

    /// Check a whole in-memory document under per-call options, reusing
    /// this session's buffers. Never fails; returns diagnostics in source
    /// order. Any document still streaming via [`LintSession::feed`] is
    /// abandoned first.
    pub fn lint(&mut self, src: &str, request: LintRequest<'_>) -> Vec<Diagnostic> {
        self.stream = None;
        let saved = self.config.emit_fixes;
        if let Some(fixes) = request.emit_fixes {
            self.config.emit_fixes = fixes;
        }
        self.documents += 1;
        let diags = match request.profile {
            Some(profile) => {
                engine::check_profiled(&self.spec, &self.config, src, &mut self.scratch, profile)
            }
            None => engine::check_with(&self.spec, &self.config, src, &mut self.scratch),
        };
        self.config.emit_fixes = saved;
        diags
    }

    /// Check a document held in memory, reusing this session's buffers.
    /// Never fails; returns diagnostics in source order. Equivalent to
    /// [`LintSession::lint`] with default options.
    pub fn check_string(&mut self, src: &str) -> Vec<Diagnostic> {
        self.lint(src, LintRequest::default())
    }

    /// [`LintSession::check_string`], accumulating per-rule hit and
    /// wall-time counters into `profile`. This is what `weblint -profile`
    /// runs.
    #[deprecated(since = "0.10.0", note = "use `lint` with `LintRequest::profile`")]
    pub fn check_string_profiled(
        &mut self,
        src: &str,
        profile: &mut weblint_rules::profile::Profile,
    ) -> Vec<Diagnostic> {
        self.lint(
            src,
            LintRequest {
                profile: Some(profile),
                ..LintRequest::default()
            },
        )
    }

    /// Push the next chunk of a streamed document and collect the
    /// diagnostics it completes.
    ///
    /// The first `feed` after construction, [`LintSession::finish`] or
    /// [`LintSession::abort`] starts a new document. Chunks are raw bytes:
    /// invalid UTF-8 is replaced exactly as [`LintSession::check_file`]
    /// replaces it, even when a multi-byte sequence straddles a chunk
    /// boundary. Diagnostics come out as soon as their trigger token
    /// closes, in source order, identical to what one-shot
    /// [`LintSession::check_string`] would report for the concatenated
    /// input; the end-of-document diagnostics arrive from `finish`.
    ///
    /// # Examples
    ///
    /// ```
    /// use weblint_core::LintSession;
    ///
    /// let mut session = LintSession::new();
    /// let mut ids = Vec::new();
    /// for chunk in [&b"<H1>My Ex"[..], &b"ample</H2>"[..]] {
    ///     ids.extend(session.feed(chunk).map(|d| d.id));
    /// }
    /// ids.extend(session.finish().map(|d| d.id));
    /// assert!(ids.contains(&"heading-mismatch"));
    /// ```
    pub fn feed(&mut self, chunk: &[u8]) -> impl Iterator<Item = Diagnostic> {
        if self.stream.is_none() {
            self.scratch.reset();
            self.stream = Some(StreamState::default());
        }
        let state = self.stream.as_mut().expect("stream state just ensured");
        state.tok.feed(chunk);
        Self::drain(&self.spec, &self.config, &mut self.scratch, state);
        // Hold back any diagnostic an element still on the stacks may yet
        // amend (a deferred obsolete-element rename attaches its fix when
        // the matching end tag arrives); everything earlier is final.
        let safe = self
            .scratch
            .stack
            .iter()
            .chain(self.scratch.unresolved.iter())
            .filter(|o| o.fix_diag != NO_FIX)
            .map(|o| o.fix_diag as usize)
            .min()
            .unwrap_or(usize::MAX)
            .min(state.doc.diags.len());
        let fresh = state.doc.diags[state.yielded..safe].to_vec();
        state.yielded = safe;
        fresh.into_iter()
    }

    /// End the streamed document: flush the tokenizer, run the
    /// end-of-document checks, and return the remaining diagnostics.
    /// Without a preceding [`LintSession::feed`] this checks an empty
    /// document. The session is ready for the next document afterwards.
    pub fn finish(&mut self) -> impl Iterator<Item = Diagnostic> {
        if self.stream.is_none() {
            self.scratch.reset();
            self.stream = Some(StreamState::default());
        }
        let mut state = self.stream.take().expect("stream state just ensured");
        state.tok.finish();
        Self::drain(&self.spec, &self.config, &mut self.scratch, &mut state);
        let view = SrcView::resumed("", state.tok.pos().offset);
        let mut checker = Checker::resume(
            &self.spec,
            &self.config,
            view,
            &mut self.scratch,
            &mut state.doc,
        );
        checker.run_eof_checks();
        checker.suspend(&mut state.doc);
        self.documents += 1;
        let yielded = state.yielded.min(state.doc.diags.len());
        state.doc.diags.split_off(yielded).into_iter()
    }

    /// Abandon a document mid-stream (client hung up, finding budget
    /// exhausted) without running the end-of-document checks. A no-op when
    /// nothing is streaming.
    pub fn abort(&mut self) {
        self.stream = None;
    }

    /// Bytes currently buffered for the in-flight streamed document —
    /// the unconsumed suffix a partial token occupies, which is what a
    /// per-connection memory accounting wants. Zero when idle: a fully
    /// consumed buffer has been recycled.
    pub fn stream_buffered(&self) -> usize {
        self.stream.as_ref().map_or(0, |s| s.tok.buffered())
    }

    /// Run every token the stream can currently complete through the
    /// checker, suspending the per-document state between tokens so the
    /// borrow of the stream buffer never outlives one callback.
    fn drain(spec: &HtmlSpec, config: &LintConfig, scratch: &mut Scratch, state: &mut StreamState) {
        let doc = &mut state.doc;
        state.tok.drain_tokens(|token, slice, offset| {
            let view = SrcView::resumed(slice, offset);
            let mut checker = Checker::resume(spec, config, view, scratch, doc);
            checker.on_token(&token);
            checker.suspend(doc);
        });
    }

    /// Check a file on disk.
    ///
    /// Non-UTF-8 bytes are replaced rather than rejected — 1990s HTML is
    /// frequently Latin-1, and weblint checks what it can.
    pub fn check_file(&mut self, path: impl AsRef<Path>) -> io::Result<Vec<Diagnostic>> {
        let bytes = fs::read(path)?;
        let src = String::from_utf8_lossy(&bytes);
        Ok(self.check_string(&src))
    }

    /// Number of documents checked by this session.
    pub fn documents_checked(&self) -> u64 {
        self.documents
    }

    /// Cumulative count of names that missed the static atom table and fell
    /// back to the per-document side intern — the allocation canary. Stays
    /// at zero while every element and attribute name the session sees is
    /// in the generated tables.
    pub fn fallback_interns(&self) -> u64 {
        self.scratch.names.fallbacks()
    }
}

impl Default for LintSession {
    fn default() -> LintSession {
        LintSession::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linter::Weblint;
    use weblint_html::{Extensions, HtmlVersion};

    #[test]
    fn matches_weblint_across_documents() {
        let weblint = Weblint::new();
        let mut session = LintSession::new();
        let docs = [
            "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>hi</BODY></HTML>",
            "<H1>My Example</H2>",
            "<NOSUCHTAG attr=1 attr=2><B>dangling",
            "",
            "<A HREF=\"mailto:x@y\">here</A>",
        ];
        for doc in docs {
            assert_eq!(
                session.check_string(doc),
                weblint.check_string(doc),
                "{doc:?}"
            );
        }
        assert_eq!(session.documents_checked(), docs.len() as u64);
    }

    #[test]
    fn fallback_counter_tracks_unknown_names() {
        let mut session = LintSession::new();
        session.check_string("<HTML><BODY><P>fine</BODY></HTML>");
        assert_eq!(session.fallback_interns(), 0);
        session.check_string("<BLOCKQOUTE>x</BLOCKQOUTE>");
        // Open and close of the same unknown name intern it once per
        // document.
        assert_eq!(session.fallback_interns(), 1);
        session.check_string("<BLOCKQOUTE>x</BLOCKQOUTE>");
        assert_eq!(session.fallback_interns(), 2);
    }

    #[test]
    fn set_config_rebuilds_spec() {
        let mut session = LintSession::new();
        let mut config = LintConfig::default();
        config.extensions = Extensions::netscape();
        session.set_config(config);
        assert!(session.spec().element("blink").is_some());
        let diags = session.check_string("<BLINK>hi</BLINK>");
        assert!(!diags.iter().any(|d| d.id == "extension-markup"));
    }

    #[test]
    fn config_versions_match_weblint() {
        let mut config = LintConfig::default();
        config.version = HtmlVersion::Html32;
        let weblint = Weblint::with_config(config.clone());
        let mut session = LintSession::with_config(config);
        let doc = "<HTML><BODY><ACRONYM>HTML</ACRONYM></BODY></HTML>";
        assert_eq!(session.check_string(doc), weblint.check_string(doc));
    }

    /// feed+finish at a given split must reproduce one-shot output exactly.
    fn stream_at_split(session: &mut LintSession, doc: &str, at: usize) -> Vec<Diagnostic> {
        let bytes = doc.as_bytes();
        let mut diags: Vec<Diagnostic> = session.feed(&bytes[..at]).collect();
        diags.extend(session.feed(&bytes[at..]));
        diags.extend(session.finish());
        diags
    }

    #[test]
    fn feed_finish_matches_check_string_at_every_split() {
        let docs = [
            "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>hi</BODY></HTML>",
            "<H1>My Example</H2>",
            "<A HREF=\"a.html>foo</A>\n<B>next line</B>",
            "<NOSUCHTAG attr=1 attr=2><B>dangling",
            "<XMP>literal <B> here</XMP><PRE>x</PRE>",
            "<!-- note --><P>&nbsp; &nosuch; text",
        ];
        let mut session = LintSession::new();
        for doc in docs {
            let expected = session.check_string(doc);
            for at in 0..=doc.len() {
                if !doc.is_char_boundary(at) {
                    continue;
                }
                let streamed = stream_at_split(&mut session, doc, at);
                assert_eq!(streamed, expected, "{doc:?} split at {at}");
            }
        }
    }

    #[test]
    fn byte_at_a_time_matches_one_shot() {
        let doc = "<HTML><HEAD><TITLE>café</TITLE></HEAD>\n<BODY><IMG SRC=x>\n</BODY></HTML>";
        let mut session = LintSession::new();
        let expected = session.check_string(doc);
        let mut streamed = Vec::new();
        for b in doc.as_bytes() {
            streamed.extend(session.feed(std::slice::from_ref(b)));
        }
        streamed.extend(session.finish());
        assert_eq!(streamed, expected);
    }

    #[test]
    fn deferred_rename_fix_survives_chunk_boundaries() {
        // <XMP> is obsolete with a mechanical replacement: the fix attaches
        // to the open tag's diagnostic only when </XMP> arrives, so the
        // stream must hold that diagnostic back across feeds.
        let doc = "<XMP>code</XMP>";
        let mut config = LintConfig::default();
        config.fragment = true;
        config.emit_fixes = true;
        let mut session = LintSession::with_config(config);
        let expected = session.check_string(doc);
        assert!(
            expected.iter().any(|d| d.fix.is_some()),
            "expected a rename fix: {expected:?}"
        );
        for at in 0..=doc.len() {
            let streamed = stream_at_split(&mut session, doc, at);
            assert_eq!(streamed, expected, "split at {at}");
        }
    }

    #[test]
    fn streaming_memory_stays_bounded() {
        let mut session = LintSession::new();
        let para = "<P>some ordinary paragraph text that repeats</P>\n";
        let mut peak = 0;
        for _ in 0..5000 {
            let _ = session.feed(para.as_bytes()).count();
            peak = peak.max(session.stream_buffered());
        }
        let diags: Vec<_> = session.finish().collect();
        assert!(
            peak < 128 * 1024,
            "buffered {peak} bytes for a 245 KiB document"
        );
        // require-doctype/html-outer/head/title — not one per paragraph.
        assert!(diags.len() < 10, "{}", diags.len());
        assert_eq!(session.stream_buffered(), 0);
    }

    #[test]
    fn feed_yields_diagnostics_before_finish() {
        let mut session = LintSession::new();
        let early: Vec<_> = session.feed(b"<HTML><NOSUCHTAG>rest of doc").collect();
        assert!(early.iter().any(|d| d.id == "unknown-element"), "{early:?}");
        session.abort();
        assert_eq!(session.stream_buffered(), 0);
        // The aborted document must not leak state into the next one.
        assert_eq!(session.check_string(""), vec![]);
    }

    #[test]
    fn finish_without_feed_checks_empty_document() {
        let mut session = LintSession::new();
        assert_eq!(session.finish().count(), 0);
        assert_eq!(session.documents_checked(), 1);
    }

    #[test]
    fn invalid_utf8_stream_matches_lossy_one_shot() {
        // 0xE9 is Latin-1 é — invalid UTF-8, replaced by U+FFFD, even when
        // fed as its own chunk.
        let bytes: &[u8] = b"<TITLE>caf\xe9</TITLE>";
        let lossy = String::from_utf8_lossy(bytes).into_owned();
        let mut session = LintSession::new();
        let expected = session.check_string(&lossy);
        for at in 0..=bytes.len() {
            let mut streamed: Vec<_> = session.feed(&bytes[..at]).collect();
            streamed.extend(session.feed(&bytes[at..]));
            streamed.extend(session.finish());
            assert_eq!(streamed, expected, "split at {at}");
        }
    }

    #[test]
    fn lint_request_profile_matches_deprecated_wrapper() {
        let doc = "<H1>My Example</H2>";
        let mut session = LintSession::new();
        let plain = session.check_string(doc);
        let mut profile = weblint_rules::profile::Profile::default();
        let profiled = session.lint(
            doc,
            LintRequest {
                profile: Some(&mut profile),
                ..LintRequest::default()
            },
        );
        assert_eq!(plain, profiled);
        assert_eq!(profile.documents, 1);
    }

    #[test]
    fn lint_request_emit_fixes_overrides_config() {
        let doc = "<IMG SRC=pic.gif>";
        let mut config = LintConfig::default();
        config.fragment = true;
        let mut session = LintSession::with_config(config);
        let plain = session.check_string(doc);
        assert!(plain.iter().all(|d| d.fix.is_none()));
        let fixed = session.lint(
            doc,
            LintRequest {
                emit_fixes: Some(true),
                ..LintRequest::default()
            },
        );
        assert!(fixed.iter().any(|d| d.fix.is_some()), "{fixed:?}");
        // The override is per-call: the next plain check emits none.
        let again = session.check_string(doc);
        assert!(again.iter().all(|d| d.fix.is_none()));
    }

    #[test]
    fn check_file_round_trip() {
        let dir = std::env::temp_dir().join("weblint-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.html");
        std::fs::write(&path, "<B>x").unwrap();
        let mut session = LintSession::new();
        let diags = session.check_file(&path).unwrap();
        assert!(!diags.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
