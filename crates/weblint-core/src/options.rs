//! Runtime lint configuration.
//!
//! "Weblint should not impose any specific definition of style … As a
//! result, everything in weblint can be turned off" (§4.1). A [`LintConfig`]
//! records which messages are enabled, the HTML version and extensions to
//! check against, and a few knobs the checks consult. The `weblint-config`
//! crate layers site files, user files and command-line switches on top of
//! this type.

use std::collections::HashMap;

use weblint_html::{Extensions, HtmlVersion};
use weblint_rules::pattern::PatternRule;

use crate::catalog::{check_def, CATALOG};
use crate::message::Category;

/// Error from referring to a message identifier that does not exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCheck {
    /// The identifier that was not found.
    pub id: String,
    /// A catalog identifier with small edit distance, if one exists.
    pub suggestion: Option<&'static str>,
}

impl std::fmt::Display for UnknownCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown warning identifier `{}`", self.id)?;
        if let Some(s) = self.suggestion {
            write!(f, " (did you mean `{s}`?)")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownCheck {}

/// Which letter case tag and attribute names are expected to use, driven by
/// the `upper-case` / `lower-case` style checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaseStyle {
    /// No preference (both case checks disabled).
    #[default]
    Any,
    /// Expect `<UPPER>` names.
    Upper,
    /// Expect `<lower>` names.
    Lower,
}

/// The set of knobs that drive one lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// HTML version to check against.
    pub version: HtmlVersion,
    /// Vendor extension overlays to accept.
    pub extensions: Extensions,
    /// Treat the input as a fragment: skip whole-document structure checks
    /// (`require-doctype`, `html-outer`, `require-head`, `require-title`,
    /// `body-no-head`). Used by gateways checking pasted snippets.
    pub fragment: bool,
    /// Anchor texts considered content-free by `here-anchor`, lower-case.
    pub here_anchor_texts: Vec<String>,
    /// Maximum length of TITLE text before `title-length` fires.
    pub max_title_length: usize,
    /// Apply the §5.1 cascade-suppression heuristics (implied closes,
    /// overlap resolution via the secondary stack, silent handling of
    /// unknown elements). Disabling this reproduces a naive stack checker
    /// and exists for the cascade ablation experiment (DESIGN.md E5).
    pub heuristics: bool,
    /// User-declared elements (lower-case) accepted without complaint.
    ///
    /// §4.6: "many editing and generation tools insert tool-specific
    /// markup (elements and attributes) in the generated HTML. These
    /// result in noise" — declaring the tool's elements silences it.
    /// §6.1 lists "custom elements and attributes" as planned
    /// configurability.
    pub custom_elements: Vec<String>,
    /// User-declared `(element, attribute)` pairs (lower-case) accepted
    /// without complaint. An element of `"*"` allows the attribute on any
    /// element.
    pub custom_attributes: Vec<(String, String)>,
    /// Collect machine-applicable fixes: checks with a mechanical remedy
    /// attach a [`crate::Fix`] to their diagnostics. Off by default — the
    /// one-shot lint path pays nothing for the fix machinery beyond this
    /// flag test.
    pub emit_fixes: bool,
    /// Custom pattern rules loaded from a `[rules]` configuration section,
    /// interpreted against every start tag after the built-in checks. Each
    /// rule's identifier participates in `enable`/`disable` exactly like a
    /// built-in check. Load via [`LintConfig::add_custom_rule`].
    pub custom_rules: Vec<PatternRule>,
    enabled: HashMap<&'static str, bool>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            version: HtmlVersion::default(),
            extensions: Extensions::none(),
            fragment: false,
            here_anchor_texts: [
                "here",
                "click here",
                "click",
                "this",
                "there",
                "link",
                "click this",
                "go",
                "more",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            max_title_length: 64,
            heuristics: true,
            custom_elements: Vec::new(),
            custom_attributes: Vec::new(),
            emit_fixes: false,
            custom_rules: Vec::new(),
            enabled: CATALOG.iter().map(|c| (c.id, c.default_enabled)).collect(),
        }
    }
}

impl LintConfig {
    /// A configuration with the catalog defaults (42 messages enabled).
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// A configuration with *every* message enabled — weblint's
    /// `-pedantic`, minus the contradictory case checks, which stay off
    /// unless enabled individually.
    pub fn pedantic() -> LintConfig {
        let mut config = LintConfig::default();
        for c in CATALOG {
            config.enabled.insert(c.id, true);
        }
        config.enabled.insert("upper-case", false);
        config.enabled.insert("lower-case", false);
        config
    }

    /// Whether the message `id` is enabled. Unknown identifiers are
    /// disabled (they cannot be emitted anyway).
    pub fn is_enabled(&self, id: &str) -> bool {
        self.enabled.get(id).copied().unwrap_or(false)
    }

    /// Enable one message by identifier.
    pub fn enable(&mut self, id: &str) -> Result<(), UnknownCheck> {
        self.set_enabled(id, true)
    }

    /// Disable one message by identifier.
    pub fn disable(&mut self, id: &str) -> Result<(), UnknownCheck> {
        self.set_enabled(id, false)
    }

    /// Enable or disable one message by identifier.
    ///
    /// Enabling `upper-case` disables `lower-case` and vice versa — the two
    /// expectations contradict.
    pub fn set_enabled(&mut self, id: &str, on: bool) -> Result<(), UnknownCheck> {
        let interned = match check_def(id) {
            Some(def) => def.id,
            None => match self.custom_rules.iter().find(|r| r.id == id) {
                Some(rule) => rule.id,
                None => {
                    return Err(UnknownCheck {
                        id: id.to_string(),
                        suggestion: self.suggest(id),
                    })
                }
            },
        };
        self.enabled.insert(interned, on);
        if on && interned == "upper-case" {
            self.enabled.insert("lower-case", false);
        } else if on && interned == "lower-case" {
            self.enabled.insert("upper-case", false);
        }
        Ok(())
    }

    /// Install (or replace) a custom pattern rule. The rule starts enabled
    /// unless its identifier was already configured off; layered
    /// configuration can re-declare a rule, with the last declaration
    /// winning.
    pub fn add_custom_rule(&mut self, rule: PatternRule) {
        self.enabled.entry(rule.id).or_insert(true);
        match self.custom_rules.iter_mut().find(|r| r.id == rule.id) {
            Some(existing) => *existing = rule,
            None => self.custom_rules.push(rule),
        }
    }

    /// The enabled-rule bitmask over the registry, bit = `Rule as u16`.
    /// Computed once per check run so the engine gates each emission with
    /// a single AND instead of a hash lookup.
    pub(crate) fn rule_mask(&self) -> u64 {
        let mut mask = 0u64;
        for d in weblint_rules::REGISTRY {
            if self.is_enabled(d.id) {
                mask |= d.rule.bit();
            }
        }
        mask
    }

    /// Enable or disable every message in a category — weblint 2 "will let
    /// users enable and disable all messages of a given category" (§4.3).
    pub fn set_category_enabled(&mut self, category: Category, on: bool) {
        for c in CATALOG.iter().filter(|c| c.category == category) {
            // The contradictory case pair stays off on bulk enables.
            if on && matches!(c.id, "upper-case" | "lower-case") {
                continue;
            }
            self.enabled.insert(c.id, on);
        }
    }

    /// The case expectation derived from the `upper-case` / `lower-case`
    /// style checks.
    pub fn case_style(&self) -> CaseStyle {
        if self.is_enabled("upper-case") {
            CaseStyle::Upper
        } else if self.is_enabled("lower-case") {
            CaseStyle::Lower
        } else {
            CaseStyle::Any
        }
    }

    /// Identifiers currently enabled, sorted.
    pub fn enabled_ids(&self) -> Vec<&'static str> {
        let mut ids: Vec<_> = CATALOG
            .iter()
            .filter(|c| self.is_enabled(c.id))
            .map(|c| c.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Count of enabled messages.
    pub fn enabled_count(&self) -> usize {
        CATALOG.iter().filter(|c| self.is_enabled(c.id)).count()
    }

    /// Declare a custom element (case-insensitive).
    pub fn add_custom_element(&mut self, name: &str) {
        let lc = name.to_ascii_lowercase();
        if !self.custom_elements.contains(&lc) {
            self.custom_elements.push(lc);
        }
    }

    /// Declare a custom attribute on an element (`"*"` for any element).
    pub fn add_custom_attribute(&mut self, element: &str, attribute: &str) {
        let pair = (element.to_ascii_lowercase(), attribute.to_ascii_lowercase());
        if !self.custom_attributes.contains(&pair) {
            self.custom_attributes.push(pair);
        }
    }

    /// Whether `name` was declared as a custom element. Case-insensitive;
    /// accepts the name in any case without allocating.
    pub fn is_custom_element(&self, name: &str) -> bool {
        self.custom_elements
            .iter()
            .any(|e| e.eq_ignore_ascii_case(name))
    }

    /// Whether `attribute` was declared for `element`, directly or via a
    /// `*` declaration. Case-insensitive; accepts either name in any case
    /// without allocating.
    pub fn is_custom_attribute(&self, element: &str, attribute: &str) -> bool {
        self.custom_attributes.iter().any(|(e, a)| {
            a.eq_ignore_ascii_case(attribute) && (e == "*" || e.eq_ignore_ascii_case(element))
        })
    }

    /// Suggest a known identifier (built-in or custom rule) within edit
    /// distance 2 of `id`.
    pub fn suggest(&self, id: &str) -> Option<&'static str> {
        CATALOG
            .iter()
            .map(|c| c.id)
            .chain(self.custom_rules.iter().map(|r| r.id))
            .map(|known| (known, edit_distance(id, known)))
            .filter(|&(_, d)| d <= 2)
            .min_by_key(|&(_, d)| d)
            .map(|(name, _)| name)
    }
}

/// Levenshtein distance, small-string implementation.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_42() {
        let c = LintConfig::default();
        assert_eq!(c.enabled_count(), 42);
        assert!(c.is_enabled("unclosed-element"));
        assert!(!c.is_enabled("physical-font"));
    }

    #[test]
    fn enable_disable_round_trip() {
        let mut c = LintConfig::default();
        c.enable("physical-font").unwrap();
        assert!(c.is_enabled("physical-font"));
        c.disable("physical-font").unwrap();
        assert!(!c.is_enabled("physical-font"));
    }

    #[test]
    fn unknown_id_is_rejected_with_suggestion() {
        let mut c = LintConfig::default();
        let err = c.enable("unclosed-elemnt").unwrap_err();
        assert_eq!(err.suggestion, Some("unclosed-element"));
        assert!(err.to_string().contains("did you mean"));
        let err = c.enable("zzzzzz").unwrap_err();
        assert_eq!(err.suggestion, None);
    }

    #[test]
    fn case_checks_are_exclusive() {
        let mut c = LintConfig::default();
        assert_eq!(c.case_style(), CaseStyle::Any);
        c.enable("upper-case").unwrap();
        assert_eq!(c.case_style(), CaseStyle::Upper);
        c.enable("lower-case").unwrap();
        assert_eq!(c.case_style(), CaseStyle::Lower);
        assert!(!c.is_enabled("upper-case"));
    }

    #[test]
    fn category_toggle() {
        let mut c = LintConfig::default();
        c.set_category_enabled(Category::Error, false);
        assert!(!c.is_enabled("unclosed-element"));
        assert!(c.is_enabled("img-alt")); // warnings untouched
        c.set_category_enabled(Category::Style, true);
        assert!(c.is_enabled("physical-font"));
        assert!(!c.is_enabled("upper-case")); // contradictory pair skipped
    }

    #[test]
    fn pedantic_enables_everything_but_case() {
        let c = LintConfig::pedantic();
        assert_eq!(c.enabled_count(), crate::catalog::CATALOG.len() - 2);
        assert!(c.is_enabled("title-length"));
        assert!(!c.is_enabled("upper-case"));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("blockqoute", "blockquote"), 2);
    }

    #[test]
    fn enabled_ids_sorted() {
        let c = LintConfig::default();
        let ids = c.enabled_ids();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids.len(), 42);
    }
}
