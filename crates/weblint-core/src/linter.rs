//! The embeddable `Weblint` object — the paper's `Weblint` Perl class.
//!
//! "The weblint module is a Perl class which encapsulates the HTML checking
//! functionality. This makes it easy to embed weblint functionality into any
//! application" (§5.4). The simplest use translates directly:
//!
//! ```text
//! use Weblint;                     let weblint = Weblint::new();
//! $weblint = Weblint->new();   →   let diags = weblint.check_file(path)?;
//! $weblint->check_file($filename);
//! ```

use std::fs;
use std::io;
use std::path::Path;

use weblint_html::HtmlSpec;

use crate::engine;
use crate::message::Diagnostic;
use crate::options::LintConfig;

/// An HTML checker with a fixed configuration.
///
/// Building a `Weblint` assembles the HTML version tables once; individual
/// checks then borrow them, so checking many documents against one
/// configuration is cheap.
///
/// # Examples
///
/// ```
/// use weblint_core::Weblint;
///
/// let weblint = Weblint::new();
/// let diags = weblint.check_string("<B>unclosed");
/// assert!(diags.iter().any(|d| d.id == "unclosed-element"));
/// ```
#[derive(Debug, Clone)]
pub struct Weblint {
    config: LintConfig,
    spec: HtmlSpec,
}

impl Weblint {
    /// A checker with the default configuration: HTML 4.0 Transitional, no
    /// extensions, the 42 default messages enabled.
    pub fn new() -> Weblint {
        Weblint::with_config(LintConfig::default())
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: LintConfig) -> Weblint {
        let spec = HtmlSpec::new(config.version, config.extensions);
        Weblint { config, spec }
    }

    /// The active configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Replace the configuration (rebuilding the language tables if the
    /// version or extensions changed).
    pub fn set_config(&mut self, config: LintConfig) {
        if config.version != self.config.version || config.extensions != self.config.extensions {
            self.spec = HtmlSpec::new(config.version, config.extensions);
        }
        self.config = config;
    }

    /// The assembled HTML language tables this checker consults.
    pub fn spec(&self) -> &HtmlSpec {
        &self.spec
    }

    /// Check a document held in memory. Never fails; returns diagnostics in
    /// source order.
    pub fn check_string(&self, src: &str) -> Vec<Diagnostic> {
        engine::check(&self.spec, &self.config, src)
    }

    /// Check a file on disk.
    ///
    /// Non-UTF-8 bytes are replaced rather than rejected — 1990s HTML is
    /// frequently Latin-1, and weblint checks what it can.
    pub fn check_file(&self, path: impl AsRef<Path>) -> io::Result<Vec<Diagnostic>> {
        let bytes = fs::read(path)?;
        let src = String::from_utf8_lossy(&bytes);
        Ok(self.check_string(&src))
    }
}

impl Default for Weblint {
    fn default() -> Weblint {
        Weblint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblint_html::{Extensions, HtmlVersion};

    #[test]
    fn new_uses_defaults() {
        let w = Weblint::new();
        assert_eq!(w.config().version, HtmlVersion::Html40Transitional);
        assert_eq!(w.config().enabled_count(), 42);
    }

    #[test]
    fn check_string_reports() {
        let w = Weblint::new();
        let diags = w.check_string("<HTML><BLOCKQOUTE>x</BLOCKQOUTE></HTML>");
        assert!(diags.iter().any(|d| d.id == "unknown-element"));
    }

    #[test]
    fn check_file_round_trip() {
        let dir = std::env::temp_dir().join("weblint-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.html");
        std::fs::write(&path, "<B>x").unwrap();
        let w = Weblint::new();
        let diags = w.check_file(&path).unwrap();
        assert!(!diags.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_file_missing_is_io_error() {
        let w = Weblint::new();
        assert!(w.check_file("/no/such/file.html").is_err());
    }

    #[test]
    fn check_file_tolerates_latin1() {
        let dir = std::env::temp_dir().join("weblint-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latin1.html");
        std::fs::write(&path, b"<P>caf\xe9</P>").unwrap();
        let w = Weblint::new();
        assert!(w.check_file(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn set_config_rebuilds_spec() {
        let mut w = Weblint::new();
        let mut config = LintConfig::default();
        config.extensions = Extensions::netscape();
        w.set_config(config);
        assert!(w.spec().element("blink").is_some());
        let diags = w.check_string("<BLINK>hi</BLINK>");
        assert!(!diags.iter().any(|d| d.id == "extension-markup"));
    }
}
