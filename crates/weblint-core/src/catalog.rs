//! The message catalog.
//!
//! "Weblint 1.020 supports 50 different output messages, 42 of which are
//! enabled by default" (§4.3). This reconstruction defines 55 messages and
//! keeps the default-enabled count at exactly 42. Messages that are
//! "esoteric or overly pedantic" are disabled by default, as the paper
//! prescribes.

use crate::message::Category;

/// One entry in the catalog.
#[derive(Debug, Clone, Copy)]
pub struct CheckDef {
    /// The stable identifier used by `enable`/`disable` configuration.
    pub id: &'static str,
    /// Error, warning, or style.
    pub category: Category,
    /// Enabled without any configuration?
    pub default_enabled: bool,
    /// One-line description, shown by `weblint -todo`-style listings.
    pub summary: &'static str,
}

use Category::{Error, Style, Warning};

macro_rules! checks {
    ($(($id:literal, $cat:ident, $on:literal, $summary:literal),)*) => {
        &[$(CheckDef {
            id: $id,
            category: $cat,
            default_enabled: $on,
            summary: $summary,
        },)*]
    };
}

/// Every message weblint can produce, sorted by identifier.
pub static CATALOG: &[CheckDef] =
    checks![
    ("attribute-delimiter", Warning, true,
     "attribute value delimited with single quotes, which not all browsers handle"),
    ("attribute-value", Error, true,
     "illegal value for an attribute (e.g. BGCOLOR=\"fffff\")"),
    ("bad-link", Error, true,
     "hyperlink target does not exist (site mode)"),
    ("bad-text-context", Warning, false,
     "text appears directly inside an element that should only hold structure (e.g. UL, TABLE)"),
    ("body-no-head", Warning, true,
     "<BODY> seen with no <HEAD> element before it"),
    ("closing-attribute", Error, true,
     "end tag carries attributes"),
    ("comment-dashes", Warning, false,
     "comment contains interior --, ill-formed under strict SGML rules"),
    ("container-whitespace", Style, false,
     "leading or trailing whitespace inside a container like <A>"),
    ("deprecated-attribute", Warning, false,
     "attribute is deprecated in the checked HTML version"),
    ("directory-index", Warning, true,
     "directory has no index file (site mode, -R)"),
    ("doctype-version", Warning, false,
     "DOCTYPE does not match the HTML version being checked against"),
    ("duplicate-attribute", Error, true,
     "the same attribute appears twice in one tag"),
    ("element-overlap", Error, true,
     "elements overlap instead of nesting (e.g. <B><A>..</B>..</A>)"),
    ("empty-container", Warning, true,
     "container element with no content (e.g. <TITLE></TITLE>)"),
    ("extension-attribute", Warning, true,
     "attribute only exists as a vendor extension which is not enabled"),
    ("extension-markup", Warning, true,
     "element only exists as a vendor extension which is not enabled"),
    ("head-element", Error, true,
     "element that belongs in <HEAD> used in the document body"),
    ("heading-in-anchor", Style, false,
     "heading inside an anchor; put the anchor inside the heading instead"),
    ("heading-mismatch", Error, true,
     "malformed heading: open tag level differs from close (e.g. <H1>..</H2>)"),
    ("heading-order", Style, true,
     "heading levels should not be skipped (e.g. <H3> directly after <H1>)"),
    ("here-anchor", Style, true,
     "content-free anchor text like \"here\" or \"click here\""),
    ("html-outer", Warning, true,
     "outer element of the document should be <HTML>"),
    ("img-alt", Warning, true,
     "IMG element without an ALT attribute"),
    ("img-size", Warning, false,
     "IMG element without WIDTH and HEIGHT attributes"),
    ("leading-whitespace", Warning, true,
     "whitespace between </ and the element name"),
    ("literal-metacharacter", Warning, true,
     "literal < or > in text should be &lt; or &gt;"),
    ("lower-case", Style, false,
     "element and attribute names should be lower case"),
    ("mailto-link", Style, false,
     "use of a mailto: hyperlink"),
    ("markup-in-comment", Warning, true,
     "markup embedded in a comment can confuse some browsers"),
    ("missing-attribute-value", Error, true,
     "attribute with = but no value"),
    ("must-follow-head", Warning, true,
     "content between </HEAD> and <BODY>"),
    ("nested-element", Error, true,
     "element that may not nest inside itself (e.g. <A> inside <A>)"),
    ("obsolete-element", Warning, true,
     "obsolete or deprecated element (e.g. <LISTING>; use <PRE>)"),
    ("odd-quotes", Error, true,
     "odd number of quotes in a tag"),
    ("once-only", Error, true,
     "element that may appear only once appears again (e.g. a second <TITLE>)"),
    ("orphan-page", Warning, true,
     "page not referred to by any other page (site mode, -R)"),
    ("physical-font", Style, false,
     "physical font markup used; logical markup conveys intent (e.g. <B> vs <STRONG>)"),
    ("quote-attribute-value", Warning, true,
     "attribute value should be quoted"),
    ("require-doctype", Warning, true,
     "first element is not a DOCTYPE specification"),
    ("require-head", Warning, true,
     "document has no HEAD element"),
    ("require-title", Warning, true,
     "document has no TITLE element"),
    ("required-attribute", Error, true,
     "a required attribute is missing (e.g. ROWS and COLS on TEXTAREA)"),
    ("required-context", Error, true,
     "element used outside its required context (e.g. <LI> outside a list)"),
    ("title-length", Style, false,
     "TITLE text longer than 64 characters"),
    ("unclosed-comment", Error, true,
     "comment never closed with -->"),
    ("unclosed-element", Error, true,
     "no closing tag seen for a container that requires one"),
    ("unexpected-close", Error, true,
     "close tag with no matching open tag"),
    ("unknown-attribute", Error, true,
     "attribute not defined for this element in any known HTML version"),
    ("unknown-element", Error, true,
     "element not defined in any known HTML version (probably a typo)"),
    ("unknown-entity", Error, true,
     "entity reference not defined in the checked HTML version"),
    ("unterminated-entity", Warning, true,
     "entity reference without the closing ;"),
    ("unterminated-tag", Error, true,
     "tag never closed with > before the next tag or end of file"),
    ("upper-case", Style, false,
     "element and attribute names should be upper case"),
    ("version-markup", Warning, true,
     "element defined in a different HTML version than the one being checked"),
    ("xml-self-close", Warning, false,
     "XML-style /> self-close is not HTML"),
];

/// Look up a catalog entry by identifier.
pub fn check_def(id: &str) -> Option<&'static CheckDef> {
    CATALOG.iter().find(|c| c.id == id)
}

/// Identifiers of every message in `category`.
pub fn ids_in_category(category: Category) -> impl Iterator<Item = &'static str> {
    CATALOG
        .iter()
        .filter(move |c| c.category == category)
        .map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_size_matches_design() {
        // DESIGN.md §2: 55 messages, exactly 42 enabled by default,
        // mirroring the paper's 50/42 as closely as a reconstruction can.
        assert_eq!(CATALOG.len(), 55);
        let enabled = CATALOG.iter().filter(|c| c.default_enabled).count();
        assert_eq!(enabled, 42);
    }

    #[test]
    fn ids_sorted_and_unique() {
        for pair in CATALOG.windows(2) {
            assert!(pair[0].id < pair[1].id, "{} !< {}", pair[0].id, pair[1].id);
        }
    }

    #[test]
    fn ids_are_kebab_case() {
        for c in CATALOG {
            assert!(
                c.id.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
                "{}",
                c.id
            );
            assert!(!c.id.starts_with('-') && !c.id.ends_with('-'), "{}", c.id);
        }
    }

    #[test]
    fn lookup_finds_known_ids() {
        assert!(check_def("here-anchor").is_some());
        assert!(check_def("odd-quotes").is_some());
        assert!(check_def("no-such-check").is_none());
    }

    #[test]
    fn paper_examples_have_expected_categories() {
        // §4.3: errors include missing close tags, mis-typed element names,
        // forgotten required attributes.
        assert_eq!(
            check_def("unclosed-element").unwrap().category,
            Category::Error
        );
        assert_eq!(
            check_def("unknown-element").unwrap().category,
            Category::Error
        );
        assert_eq!(
            check_def("required-attribute").unwrap().category,
            Category::Error
        );
        // Warnings include single-quote delimiters, IMG sizes, comments
        // containing markup, deprecated markup.
        assert_eq!(
            check_def("attribute-delimiter").unwrap().category,
            Category::Warning
        );
        assert_eq!(check_def("img-size").unwrap().category, Category::Warning);
        assert_eq!(
            check_def("markup-in-comment").unwrap().category,
            Category::Warning
        );
        assert_eq!(
            check_def("obsolete-element").unwrap().category,
            Category::Warning
        );
        // Style comments include here-anchors and physical markup.
        assert_eq!(check_def("here-anchor").unwrap().category, Category::Style);
        assert_eq!(
            check_def("physical-font").unwrap().category,
            Category::Style
        );
    }

    #[test]
    fn esoteric_checks_default_off() {
        for id in [
            "physical-font",
            "upper-case",
            "lower-case",
            "mailto-link",
            "title-length",
            "comment-dashes",
        ] {
            assert!(!check_def(id).unwrap().default_enabled, "{id}");
        }
    }

    #[test]
    fn case_checks_are_mutually_exclusive_defaults() {
        // Both case checks cannot be on by default — they contradict.
        assert!(!check_def("upper-case").unwrap().default_enabled);
        assert!(!check_def("lower-case").unwrap().default_enabled);
    }

    #[test]
    fn category_iteration_partitions_catalog() {
        let total: usize = [Category::Error, Category::Warning, Category::Style]
            .iter()
            .map(|&c| ids_in_category(c).count())
            .sum();
        assert_eq!(total, CATALOG.len());
    }

    #[test]
    fn summaries_are_nonempty() {
        for c in CATALOG {
            assert!(!c.summary.is_empty(), "{}", c.id);
        }
    }
}
