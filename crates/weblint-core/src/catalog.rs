//! The message catalog — now a thin view over the check registry.
//!
//! "Weblint 1.020 supports 50 different output messages, 42 of which are
//! enabled by default" (§4.3). This reconstruction defines 55 messages and
//! keeps the default-enabled count at exactly 42. The authoritative table
//! is [`weblint_rules::REGISTRY`]; this module preserves the original
//! catalog API (`CATALOG`, [`check_def`], [`ids_in_category`]) for every
//! existing caller, with each entry now carrying applicability,
//! fix-capability and documentation as data.

use crate::message::Category;

/// One entry in the catalog. An alias of the registry's descriptor: the
/// historical fields (`id`, `category`, `default_enabled`, `summary`) are
/// unchanged, and `applies`, `fixable`, `doc` and `example` ride along.
pub use weblint_rules::CheckDescriptor as CheckDef;

/// Every message weblint can produce, sorted by identifier.
pub use weblint_rules::REGISTRY as CATALOG;

/// Look up a catalog entry by identifier.
pub fn check_def(id: &str) -> Option<&'static CheckDef> {
    weblint_rules::descriptor(id)
}

/// Identifiers of every message in `category`.
pub fn ids_in_category(category: Category) -> impl Iterator<Item = &'static str> {
    CATALOG
        .iter()
        .filter(move |c| c.category == category)
        .map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_size_matches_design() {
        // DESIGN.md §2: 55 messages, exactly 42 enabled by default,
        // mirroring the paper's 50/42 as closely as a reconstruction can.
        assert_eq!(CATALOG.len(), 55);
        let enabled = CATALOG.iter().filter(|c| c.default_enabled).count();
        assert_eq!(enabled, 42);
    }

    #[test]
    fn ids_sorted_and_unique() {
        for pair in CATALOG.windows(2) {
            assert!(pair[0].id < pair[1].id, "{} !< {}", pair[0].id, pair[1].id);
        }
    }

    #[test]
    fn ids_are_kebab_case() {
        for c in CATALOG {
            assert!(
                c.id.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
                "{}",
                c.id
            );
            assert!(!c.id.starts_with('-') && !c.id.ends_with('-'), "{}", c.id);
        }
    }

    #[test]
    fn lookup_finds_known_ids() {
        assert!(check_def("here-anchor").is_some());
        assert!(check_def("odd-quotes").is_some());
        assert!(check_def("no-such-check").is_none());
    }

    #[test]
    fn paper_examples_have_expected_categories() {
        // §4.3: errors include missing close tags, mis-typed element names,
        // forgotten required attributes.
        assert_eq!(
            check_def("unclosed-element").unwrap().category,
            Category::Error
        );
        assert_eq!(
            check_def("unknown-element").unwrap().category,
            Category::Error
        );
        assert_eq!(
            check_def("required-attribute").unwrap().category,
            Category::Error
        );
        // Warnings include single-quote delimiters, IMG sizes, comments
        // containing markup, deprecated markup.
        assert_eq!(
            check_def("attribute-delimiter").unwrap().category,
            Category::Warning
        );
        assert_eq!(check_def("img-size").unwrap().category, Category::Warning);
        assert_eq!(
            check_def("markup-in-comment").unwrap().category,
            Category::Warning
        );
        assert_eq!(
            check_def("obsolete-element").unwrap().category,
            Category::Warning
        );
        // Style comments include here-anchors and physical markup.
        assert_eq!(check_def("here-anchor").unwrap().category, Category::Style);
        assert_eq!(
            check_def("physical-font").unwrap().category,
            Category::Style
        );
    }

    #[test]
    fn esoteric_checks_default_off() {
        for id in [
            "physical-font",
            "upper-case",
            "lower-case",
            "mailto-link",
            "title-length",
            "comment-dashes",
        ] {
            assert!(!check_def(id).unwrap().default_enabled, "{id}");
        }
    }

    #[test]
    fn case_checks_are_mutually_exclusive_defaults() {
        // Both case checks cannot be on by default — they contradict.
        assert!(!check_def("upper-case").unwrap().default_enabled);
        assert!(!check_def("lower-case").unwrap().default_enabled);
    }

    #[test]
    fn category_iteration_partitions_catalog() {
        let total: usize = [Category::Error, Category::Warning, Category::Style]
            .iter()
            .map(|&c| ids_in_category(c).count())
            .sum();
        assert_eq!(total, CATALOG.len());
    }

    #[test]
    fn summaries_are_nonempty() {
        for c in CATALOG {
            assert!(!c.summary.is_empty(), "{}", c.id);
        }
    }
}
