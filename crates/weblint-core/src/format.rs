//! Output formatters.
//!
//! Weblint's default output is traditional lint style — `file(line): message`
//! — and `-s` requests the short `line N: message` form (§4.2). A terse
//! machine-readable form and JSON are provided for tooling, and the gateway
//! crate renders its own HTML.

use crate::message::{Category, Diagnostic};

/// Available output styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Traditional lint style: `test.html(1): blah blah blah`.
    #[default]
    Lint,
    /// The `-s` switch: `line 1: blah blah blah`.
    Short,
    /// Machine-readable: `file:line:col:id:message`.
    Terse,
    /// Lint style followed by an indented explanation line naming the
    /// message identifier and its catalog summary — the "verbose warnings"
    /// idea the paper attributes to subclassing the warnings module (§5.6).
    Explain,
    /// A JSON array of diagnostic objects.
    Json,
}

/// Render one diagnostic in the given style (not meaningful for
/// [`OutputFormat::Json`], which is a whole-report format — one diagnostic
/// renders as one JSON object).
pub fn format_diagnostic(d: &Diagnostic, filename: &str, format: OutputFormat) -> String {
    match format {
        OutputFormat::Lint => format!("{}({}): {}", filename, d.line, d.message),
        OutputFormat::Short => format!("line {}: {}", d.line, d.message),
        OutputFormat::Terse => format!("{}:{}:{}:{}:{}", filename, d.line, d.col, d.id, d.message),
        OutputFormat::Explain => {
            let summary = crate::catalog::check_def(d.id)
                .map(|c| c.summary)
                .unwrap_or("");
            format!(
                "{}({}): {}\n    [{}] {}",
                filename, d.line, d.message, d.id, summary
            )
        }
        OutputFormat::Json => d.to_json(),
    }
}

/// Render a whole report, one line per diagnostic (or a JSON array).
///
/// # Examples
///
/// ```
/// use weblint_core::{Diagnostic, Category, format_report, OutputFormat};
///
/// let diags = vec![Diagnostic::new(
///     "img-alt",
///     Category::Warning,
///     3,
///     1,
///     "IMG element has no ALT attribute".into(),
/// )];
/// let out = format_report(&diags, "page.html", OutputFormat::Lint);
/// assert_eq!(out, "page.html(3): IMG element has no ALT attribute\n");
/// ```
pub fn format_report(diags: &[Diagnostic], filename: &str, format: OutputFormat) -> String {
    if format == OutputFormat::Json {
        return json_report(diags);
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&format_diagnostic(d, filename, format));
        out.push('\n');
    }
    out
}

/// The whole report as a pretty-printed JSON array (2-space indent, one
/// object per diagnostic, stable field order).
fn json_report(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        use crate::message::json_string;
        out.push_str("  {\n");
        out.push_str(&format!("    \"id\": {},\n", json_string(d.id)));
        out.push_str(&format!(
            "    \"category\": {},\n",
            json_string(d.category.name())
        ));
        out.push_str(&format!("    \"line\": {},\n", d.line));
        out.push_str(&format!("    \"col\": {},\n", d.col));
        out.push_str(&format!("    \"message\": {}\n", json_string(&d.message)));
        out.push_str(if i + 1 == diags.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    out.push_str("]\n");
    out
}

/// Message counts by category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Number of error messages.
    pub errors: usize,
    /// Number of warning messages.
    pub warnings: usize,
    /// Number of style comments.
    pub styles: usize,
}

impl Summary {
    /// Tally a set of diagnostics.
    pub fn of(diags: &[Diagnostic]) -> Summary {
        let mut s = Summary::default();
        for d in diags {
            match d.category {
                Category::Error => s.errors += 1,
                Category::Warning => s.warnings += 1,
                Category::Style => s.styles += 1,
            }
        }
        s
    }

    /// Total message count.
    pub fn total(&self) -> usize {
        self.errors + self.warnings + self.styles
    }

    /// Whether the document produced no messages at all.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} error(s), {} warning(s), {} style comment(s)",
            self.errors, self.warnings, self.styles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(category: Category) -> Diagnostic {
        Diagnostic::new(
            "unclosed-element",
            category,
            4,
            2,
            "no closing </TITLE> seen for <TITLE> on line 3".into(),
        )
    }

    #[test]
    fn lint_style_matches_paper() {
        // §4.2: "test.html(1): blah blah blah".
        let d = diag(Category::Error);
        assert_eq!(
            format_diagnostic(&d, "test.html", OutputFormat::Lint),
            "test.html(4): no closing </TITLE> seen for <TITLE> on line 3"
        );
    }

    #[test]
    fn short_style_matches_paper() {
        let d = diag(Category::Error);
        assert_eq!(
            format_diagnostic(&d, "test.html", OutputFormat::Short),
            "line 4: no closing </TITLE> seen for <TITLE> on line 3"
        );
    }

    #[test]
    fn terse_style_has_five_fields() {
        let d = diag(Category::Error);
        let line = format_diagnostic(&d, "f.html", OutputFormat::Terse);
        assert_eq!(line.splitn(5, ':').count(), 5);
        assert!(line.starts_with("f.html:4:2:unclosed-element:"));
    }

    #[test]
    fn explain_style_names_the_check() {
        let d = diag(Category::Error);
        let text = format_diagnostic(&d, "f.html", OutputFormat::Explain);
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "f.html(4): no closing </TITLE> seen for <TITLE> on line 3"
        );
        let explain = lines.next().unwrap();
        assert!(explain.contains("[unclosed-element]"), "{explain}");
        assert!(explain.contains("container"), "{explain}");
    }

    #[test]
    fn json_report_is_an_array() {
        let report = format_report(&[diag(Category::Error)], "f.html", OutputFormat::Json);
        let parsed: serde_json::Value = serde_json::from_str(&report).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 1);
    }

    #[test]
    fn empty_report_is_empty() {
        assert_eq!(format_report(&[], "f.html", OutputFormat::Lint), "");
    }

    #[test]
    fn summary_counts() {
        let diags = vec![
            diag(Category::Error),
            diag(Category::Warning),
            diag(Category::Warning),
            diag(Category::Style),
        ];
        let s = Summary::of(&diags);
        assert_eq!(s.errors, 1);
        assert_eq!(s.warnings, 2);
        assert_eq!(s.styles, 1);
        assert_eq!(s.total(), 4);
        assert!(!s.is_clean());
        assert!(Summary::of(&[]).is_clean());
        assert_eq!(
            s.to_string(),
            "1 error(s), 2 warning(s), 1 style comment(s)"
        );
    }
}
