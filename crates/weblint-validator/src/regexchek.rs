//! The htmlchek-style line checker — the §3.3 comparator.
//!
//! htmlchek was "a perl script (also available in awk) which performs
//! syntax checking similar to weblint". Its essence: per-tag pattern
//! checks plus whole-file open/close *counting*, with no element stack.
//! It catches token-local mistakes and count imbalances, but anything that
//! depends on nesting *order* — overlapping elements, heading pairs closed
//! at the wrong level in a document with other headings, context rules —
//! is invisible to it.

use std::collections::HashMap;

use weblint_html::{AttrStatus, ElementStatus, Extensions, HtmlSpec, HtmlVersion};
use weblint_tokenizer::{scan_entities, Pos, Quote, TokenKind, Tokenizer};

use crate::finding::{Finding, HtmlChecker};

/// A stack-less, htmlchek-style checker.
#[derive(Debug, Clone)]
pub struct RegexChecker {
    spec: HtmlSpec,
}

impl RegexChecker {
    /// A checker for HTML 4.0 Transitional.
    pub fn new() -> RegexChecker {
        RegexChecker::with_version(HtmlVersion::Html40Transitional, Extensions::none())
    }

    /// A checker for an explicit version.
    pub fn with_version(version: HtmlVersion, extensions: Extensions) -> RegexChecker {
        RegexChecker {
            spec: HtmlSpec::new(version, extensions),
        }
    }

    /// Run the tag-local and counting checks.
    pub fn run(&self, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        // (opens, closes, first line) per container element name.
        let mut counts: HashMap<String, (i64, i64, u32)> = HashMap::new();
        for token in Tokenizer::new(src) {
            let line = token.span.start.line;
            match &token.kind {
                TokenKind::StartTag(tag) => {
                    let name_lc = tag.name_lc();
                    if tag.odd_quotes {
                        out.push(Finding::new(
                            line,
                            "odd-quotes",
                            format!("odd number of quotes in <{}> tag", tag.name),
                        ));
                    }
                    match self.spec.element_status(&name_lc) {
                        ElementStatus::Active(def) => {
                            self.check_tag_attrs(tag, def, line, &mut out);
                            if def.is_container() && def.end_tag == weblint_html::EndTag::Required {
                                let entry = counts.entry(name_lc).or_insert((0, 0, line));
                                entry.0 += 1;
                            }
                        }
                        _ => {
                            out.push(Finding::new(
                                line,
                                "unknown-tag",
                                format!("<{}> is not a known tag", tag.name),
                            ));
                        }
                    }
                }
                TokenKind::EndTag(tag) => {
                    let name_lc = tag.name_lc();
                    if let ElementStatus::Active(def) = self.spec.element_status(&name_lc) {
                        if def.is_container() && def.end_tag == weblint_html::EndTag::Required {
                            let entry = counts.entry(name_lc).or_insert((0, 0, line));
                            entry.1 += 1;
                        }
                    }
                }
                TokenKind::Text(t) if !t.is_raw => {
                    self.check_text(t.raw, line, &mut out);
                }
                _ => {}
            }
        }
        // Whole-file count imbalances, htmlchek's signature report.
        let mut names: Vec<_> = counts.iter().collect();
        names.sort_by_key(|(name, _)| name.as_str());
        for (name, &(opens, closes, first_line)) in names {
            if opens != closes {
                out.push(Finding::new(
                    first_line,
                    "count-mismatch",
                    format!(
                        "{opens} <{up}> tag(s) but {closes} </{up}> tag(s)",
                        up = name.to_uppercase()
                    ),
                ));
            }
        }
        out
    }

    fn check_tag_attrs(
        &self,
        tag: &weblint_tokenizer::Tag<'_>,
        def: &'static weblint_html::ElementDef,
        line: u32,
        out: &mut Vec<Finding>,
    ) {
        for attr in &tag.attrs {
            let lc = attr.name_lc();
            match self.spec.attr_status(def, &lc) {
                AttrStatus::Active(adef) => {
                    if let Some(v) = &attr.value {
                        if v.quote == Quote::None && v.raw.contains(['#', '/', ':', '?']) {
                            out.push(Finding::new(
                                line,
                                "unquoted-value",
                                format!("value of {} should be quoted", attr.name),
                            ));
                        }
                        if v.quote == Quote::Single {
                            out.push(Finding::new(
                                line,
                                "single-quotes",
                                format!("single-quoted value for {}", attr.name),
                            ));
                        }
                        if !v.raw.is_empty() && !self.spec.validate_attr_value(adef, v.raw) {
                            out.push(Finding::new(
                                line,
                                "bad-value",
                                format!("bad value \"{}\" for {}", v.raw, attr.name),
                            ));
                        }
                    }
                }
                _ => {
                    out.push(Finding::new(
                        line,
                        "unknown-attr",
                        format!("{} is not a known attribute of <{}>", attr.name, tag.name),
                    ));
                }
            }
        }
        for required in def.required_attrs {
            if !tag.has_attr(required) {
                out.push(Finding::new(
                    line,
                    "missing-attr",
                    format!("<{}> needs {}", tag.name, required.to_uppercase()),
                ));
            }
        }
        if def.name == "img" && !tag.has_attr("alt") {
            out.push(Finding::new(line, "no-alt", "IMG without ALT".to_string()));
        }
    }

    fn check_text(&self, raw: &str, line: u32, out: &mut Vec<Finding>) {
        for entity in scan_entities(raw, Pos::START) {
            if !entity.numeric && entity.terminated && self.spec.entity(entity.name).is_none() {
                out.push(Finding::new(
                    line,
                    "unknown-entity",
                    format!("unknown entity &{};", entity.name),
                ));
            }
        }
        for hit in weblint_tokenizer::scan_metachars(raw, Pos::START) {
            if hit.kind == weblint_tokenizer::MetaCharKind::Lt {
                out.push(Finding::new(
                    line,
                    "loose-lt",
                    "unescaped < in text".to_string(),
                ));
            }
        }
    }
}

impl Default for RegexChecker {
    fn default() -> RegexChecker {
        RegexChecker::new()
    }
}

impl HtmlChecker for RegexChecker {
    fn name(&self) -> &'static str {
        "htmlchek-style"
    }

    fn check(&self, src: &str) -> Vec<Finding> {
        self.run(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        RegexChecker::new()
            .run(src)
            .into_iter()
            .map(|f| f.code)
            .collect()
    }

    const CLEAN: &str = "<HTML><HEAD><TITLE>t</TITLE></HEAD>\n\
                         <BODY><H1>h</H1><P>text</P></BODY></HTML>\n";

    #[test]
    fn clean_page_is_quiet() {
        // Note: no doctype check at all — htmlchek predates DOCTYPE zeal.
        assert_eq!(codes(CLEAN), Vec::<String>::new());
    }

    #[test]
    fn catches_token_local_mistakes() {
        assert!(codes("<BLOCKQOUTE>x</BLOCKQOUTE>").contains(&"unknown-tag".to_string()));
        assert!(codes("<P ZZZ=1>x</P>").contains(&"unknown-attr".to_string()));
        assert!(codes("<IMG SRC=\"x.gif\">").contains(&"no-alt".to_string()));
        assert!(codes("<A HREF=a/b.html>x</A>").contains(&"unquoted-value".to_string()));
        assert!(codes("<P>1 < 2</P>").contains(&"loose-lt".to_string()));
        assert!(codes("<P>&zzz;</P>").contains(&"unknown-entity".to_string()));
    }

    #[test]
    fn catches_count_imbalance() {
        let found = codes("<B>unclosed bold");
        assert!(found.contains(&"count-mismatch".to_string()), "{found:?}");
    }

    #[test]
    fn blind_to_overlap() {
        // The defining weakness: overlapping but balanced markup passes.
        assert_eq!(codes("<P><B><I>x</B></I></P>"), Vec::<String>::new());
    }

    #[test]
    fn blind_to_context() {
        // An LI outside any list balances, so nothing fires.
        assert_eq!(codes("<LI>loose</LI>"), Vec::<String>::new());
    }

    #[test]
    fn optional_end_tags_not_counted() {
        // <P> without </P> is fine — counting them would drown in noise.
        assert_eq!(codes("<P>one<P>two"), Vec::<String>::new());
    }
}
