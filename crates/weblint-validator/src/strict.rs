//! The strict content-model validator — the SP/nsgmls comparator (§3.2).
//!
//! Message wording follows the SGML-parser idiom the paper gently mocks:
//! "document type does not allow element X here", "end tag for element X
//! which is not open". No weblint heuristics: recovery is the classic
//! parser kind, which is exactly what makes one authoring mistake cascade.

use weblint_html::{AttrStatus, ElementStatus, Extensions, HtmlSpec, HtmlVersion};
use weblint_tokenizer::{scan_entities, Quote, Tag, TokenKind, Tokenizer};

use crate::content::{exclusions_for, may_contain, pcdata_allowed};
use crate::finding::{Finding, HtmlChecker};

/// A strict, DTD-style validator.
#[derive(Debug, Clone)]
pub struct StrictValidator {
    spec: HtmlSpec,
}

impl StrictValidator {
    /// Validate against the given HTML version.
    pub fn new(version: HtmlVersion, extensions: Extensions) -> StrictValidator {
        StrictValidator {
            spec: HtmlSpec::new(version, extensions),
        }
    }

    /// Validate a document, returning SGML-flavoured findings.
    pub fn validate(&self, src: &str) -> Vec<Finding> {
        let mut v = Run {
            spec: &self.spec,
            out: Vec::new(),
            stack: Vec::new(),
            seen_doctype: false,
            reported_no_doctype: false,
        };
        for token in Tokenizer::new(src) {
            let line = token.span.start.line;
            match &token.kind {
                TokenKind::Doctype(_) => v.seen_doctype = true,
                TokenKind::StartTag(tag) => v.start_tag(tag, line),
                TokenKind::EndTag(tag) => v.end_tag(tag, line),
                TokenKind::Text(t) if !t.is_raw => v.text(t.raw, line),
                _ => {}
            }
        }
        let eof_line = src.lines().count().max(1) as u32;
        while let Some((name, _)) = v.stack.pop() {
            v.out.push(Finding::new(
                eof_line,
                "eof-in-element",
                format!("document ended inside element \"{}\"", name.to_uppercase()),
            ));
        }
        v.out
    }
}

impl Default for StrictValidator {
    /// HTML 4.0 Transitional, like weblint's default.
    fn default() -> StrictValidator {
        StrictValidator::new(HtmlVersion::Html40Transitional, Extensions::none())
    }
}

impl HtmlChecker for StrictValidator {
    fn name(&self) -> &'static str {
        "strict-validator"
    }

    fn check(&self, src: &str) -> Vec<Finding> {
        self.validate(src)
    }
}

struct Run<'a> {
    spec: &'a HtmlSpec,
    out: Vec<Finding>,
    /// (lower-case name, def known) — unknown elements are *not* pushed,
    /// which is parser behaviour and a source of cascades.
    stack: Vec<(String, &'static weblint_html::ElementDef)>,
    seen_doctype: bool,
    reported_no_doctype: bool,
}

impl Run<'_> {
    fn report(&mut self, line: u32, code: &str, message: String) {
        self.out.push(Finding::new(line, code, message));
    }

    fn require_doctype(&mut self, line: u32) {
        if !self.seen_doctype && !self.reported_no_doctype {
            self.reported_no_doctype = true;
            self.report(
                line,
                "no-doctype",
                "no document type declaration; will parse without validation".to_string(),
            );
        }
    }

    fn start_tag(&mut self, tag: &Tag<'_>, line: u32) {
        self.require_doctype(line);
        let name_lc = tag.name_lc();
        let display = name_lc.to_uppercase();
        let def = match self.spec.element_status(&name_lc) {
            ElementStatus::Active(d) => d,
            _ => {
                self.report(
                    line,
                    "undeclared-element",
                    format!("element \"{display}\" undefined"),
                );
                return;
            }
        };
        // SGML omitted-end-tag inference: close optional-end elements that
        // cannot contain the new one.
        while let Some(&(_, top)) = self.stack.last() {
            if may_contain(top, def) {
                break;
            }
            if top.end_tag_optional() {
                self.stack.pop();
            } else {
                break;
            }
        }
        match self.stack.last() {
            Some(&(_, top)) => {
                if !may_contain(top, def) {
                    self.report(
                        line,
                        "not-allowed-here",
                        format!("document type does not allow element \"{display}\" here"),
                    );
                }
            }
            None => {
                if name_lc != "html" {
                    self.report(
                        line,
                        "not-allowed-here",
                        format!(
                            "document type does not allow element \"{display}\" here; \
                             only \"HTML\" is allowed at top level"
                        ),
                    );
                }
            }
        }
        // Exclusions apply to every open ancestor.
        for (open_name, _) in &self.stack {
            if exclusions_for(open_name).contains(&name_lc.as_str()) {
                let ancestor = open_name.to_uppercase();
                self.report(
                    line,
                    "excluded-element",
                    format!("element \"{display}\" is excluded from the content of \"{ancestor}\""),
                );
                break;
            }
        }
        self.check_attrs(tag, def, line);
        if def.is_container() && !tag.self_closing {
            self.stack.push((name_lc, def));
        }
    }

    fn check_attrs(&mut self, tag: &Tag<'_>, def: &'static weblint_html::ElementDef, line: u32) {
        for attr in &tag.attrs {
            let lc = attr.name_lc();
            match self.spec.attr_status(def, &lc) {
                AttrStatus::Active(adef) => {
                    if let Some(v) = &attr.value {
                        if v.quote == Quote::None && needs_literal(v.raw) {
                            self.report(
                                line,
                                "attr-literal",
                                "an attribute value literal can occur in an attribute \
                                 specification list only after a VI delimiter"
                                    .to_string(),
                            );
                        }
                        if !v.raw.is_empty() && !self.spec.validate_attr_value(adef, v.raw) {
                            self.report(
                                line,
                                "bad-attr-value",
                                format!(
                                    "value of attribute \"{}\" cannot be \"{}\"; must be {}",
                                    lc.to_uppercase(),
                                    v.raw,
                                    adef.constraint.describe()
                                ),
                            );
                        }
                    }
                }
                AttrStatus::Inactive(_) | AttrStatus::Unknown => {
                    self.report(
                        line,
                        "no-such-attribute",
                        format!("there is no attribute \"{}\"", lc.to_uppercase()),
                    );
                }
            }
        }
        for required in def.required_attrs {
            if !tag.has_attr(required) {
                self.report(
                    line,
                    "missing-attr",
                    format!(
                        "required attribute \"{}\" not specified",
                        required.to_uppercase()
                    ),
                );
            }
        }
    }

    fn end_tag(&mut self, tag: &Tag<'_>, line: u32) {
        self.require_doctype(line);
        let name_lc = tag.name_lc();
        let display = name_lc.to_uppercase();
        match self.stack.iter().rposition(|(n, _)| *n == name_lc) {
            Some(index) => {
                while self.stack.len() > index + 1 {
                    let (open, open_def) = self.stack.pop().expect("intervening");
                    if !open_def.end_tag_optional() {
                        self.report(
                            line,
                            "omitted-end-tag",
                            format!(
                                "end tag for \"{}\" omitted, but its declaration \
                                 does not permit this",
                                open.to_uppercase()
                            ),
                        );
                    }
                }
                self.stack.pop();
            }
            None => {
                self.report(
                    line,
                    "not-open",
                    format!("end tag for element \"{display}\" which is not open"),
                );
            }
        }
    }

    fn text(&mut self, raw: &str, line: u32) {
        if !raw.trim().is_empty() {
            if let Some(&(_, top)) = self.stack.last() {
                if !pcdata_allowed(top) {
                    self.report(
                        line,
                        "pcdata-not-allowed",
                        "character data is not allowed here".to_string(),
                    );
                }
            }
        }
        for entity in scan_entities(raw, weblint_tokenizer::Pos::START) {
            if entity.numeric {
                continue;
            }
            if entity.terminated && self.spec.entity(entity.name).is_none() {
                self.report(
                    line,
                    "undefined-entity",
                    format!(
                        "general entity \"{}\" not defined and no default entity",
                        entity.name
                    ),
                );
            }
        }
    }
}

/// Unquoted values must contain only name characters under SGML rules.
fn needs_literal(value: &str) -> bool {
    !value.is_empty()
        && !value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        StrictValidator::default()
            .validate(src)
            .into_iter()
            .map(|f| f.code)
            .collect()
    }

    const CLEAN: &str = "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n\
        <HTML><HEAD><TITLE>t</TITLE></HEAD>\n\
        <BODY><H1>h</H1><P>text</P></BODY></HTML>\n";

    #[test]
    fn clean_document_validates() {
        assert_eq!(codes(CLEAN), Vec::<String>::new());
    }

    #[test]
    fn missing_doctype_reported_once() {
        let found = codes("<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x</P></BODY></HTML>");
        assert_eq!(found, vec!["no-doctype"]);
    }

    #[test]
    fn undeclared_element() {
        let src = CLEAN.replace("<P>text</P>", "<BLOCKQOUTE>x</BLOCKQOUTE>");
        let found = codes(&src);
        assert!(
            found.contains(&"undeclared-element".to_string()),
            "{found:?}"
        );
        // The close tag of the undeclared element also errors: cascade.
        assert!(found.contains(&"not-open".to_string()), "{found:?}");
    }

    #[test]
    fn block_in_paragraph_not_allowed() {
        // H2 has a required end tag, so no omission can be inferred and the
        // DIV is a hard content-model violation.
        let src = CLEAN.replace("<P>text</P>", "<H2><DIV>x</DIV>oops</H2>");
        let found = codes(&src);
        assert!(found.contains(&"not-allowed-here".to_string()), "{found:?}");
    }

    #[test]
    fn block_in_p_infers_omitted_end() {
        // P is optional-end: SGML infers </P> before the DIV, leaving the
        // explicit </P> dangling — cryptic, but correct parser behaviour.
        let src = CLEAN.replace("<P>text</P>", "<P><DIV>x</DIV>oops</P>");
        assert_eq!(codes(&src), vec!["not-open"]);
    }

    #[test]
    fn text_in_table_not_allowed() {
        let src = CLEAN.replace(
            "<P>text</P>",
            "<TABLE>loose text<TR><TD>x</TD></TR></TABLE>",
        );
        assert!(codes(&src).contains(&"pcdata-not-allowed".to_string()));
    }

    #[test]
    fn overlap_cascades() {
        let src = CLEAN.replace("<P>text</P>", "<P><B><I>x</B></I></P>");
        let found = codes(&src);
        // </B> forces I closed with an error, then </I> is not open:
        // one mistake, two messages — the contrast with weblint's one.
        assert!(found.contains(&"omitted-end-tag".to_string()), "{found:?}");
        assert!(found.contains(&"not-open".to_string()), "{found:?}");
    }

    #[test]
    fn nested_anchor_excluded() {
        let src = CLEAN.replace(
            "<P>text</P>",
            "<P><A HREF=\"x\">a<A HREF=\"y\">b</A></A></P>",
        );
        assert!(codes(&src).contains(&"excluded-element".to_string()));
    }

    #[test]
    fn attribute_messages() {
        let src = CLEAN.replace("<P>text</P>", "<P BLARG=\"x\">text</P>");
        assert!(codes(&src).contains(&"no-such-attribute".to_string()));
        let src = CLEAN.replace("<P>text</P>", "<TEXTAREA NAME=\"t\">x</TEXTAREA>");
        let found = codes(&src);
        assert_eq!(
            found.iter().filter(|c| *c == "missing-attr").count(),
            2,
            "{found:?}"
        );
    }

    #[test]
    fn unquoted_literal_value() {
        let src = CLEAN.replace("<P>text</P>", "<P><A HREF=a/b.html>x</A></P>");
        assert!(codes(&src).contains(&"attr-literal".to_string()));
    }

    #[test]
    fn eof_inside_element() {
        let found = codes("<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P><B>x");
        assert!(found.contains(&"eof-in-element".to_string()), "{found:?}");
    }

    #[test]
    fn undefined_entity() {
        let src = CLEAN.replace("<P>text</P>", "<P>&fooby;</P>");
        assert!(codes(&src).contains(&"undefined-entity".to_string()));
    }

    #[test]
    fn omitted_end_tags_are_inferred() {
        // <P> before a block element closes silently, as the DTD allows.
        let src = CLEAN.replace("<P>text</P>", "<P>one<P>two<UL><LI>a<LI>b</UL>");
        assert_eq!(codes(&src), Vec::<String>::new());
    }
}
