//! The common checker interface used by the comparison experiments.

use weblint_core::{LintConfig, Weblint};

/// One finding from any checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// 1-based line.
    pub line: u32,
    /// A stable machine-readable code for the finding type.
    pub code: String,
    /// Human-readable message, in the checker's native voice.
    pub message: String,
}

impl Finding {
    /// Build a finding.
    pub fn new(line: u32, code: impl Into<String>, message: impl Into<String>) -> Finding {
        Finding {
            line,
            code: code.into(),
            message: message.into(),
        }
    }
}

/// Anything that can check an HTML document — weblint, the strict
/// validator, or the regex baseline.
pub trait HtmlChecker {
    /// Checker name for reports.
    fn name(&self) -> &'static str;
    /// Check one document.
    fn check(&self, src: &str) -> Vec<Finding>;
}

/// Weblint viewed through the common checker interface.
#[derive(Debug, Clone)]
pub struct WeblintChecker {
    weblint: Weblint,
}

impl WeblintChecker {
    /// Wrap a weblint configuration.
    pub fn new(config: LintConfig) -> WeblintChecker {
        WeblintChecker {
            weblint: Weblint::with_config(config),
        }
    }
}

impl Default for WeblintChecker {
    fn default() -> WeblintChecker {
        WeblintChecker::new(LintConfig::default())
    }
}

impl HtmlChecker for WeblintChecker {
    fn name(&self) -> &'static str {
        "weblint"
    }

    fn check(&self, src: &str) -> Vec<Finding> {
        self.weblint
            .check_string(src)
            .into_iter()
            .map(|d| Finding::new(d.line, d.id, d.message))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weblint_checker_maps_diagnostics() {
        let checker = WeblintChecker::default();
        let findings = checker.check("<H1>x</H2>");
        assert_eq!(checker.name(), "weblint");
        assert!(findings.iter().any(|f| f.code == "heading-mismatch"));
        assert!(findings.iter().all(|f| f.line >= 1));
    }

    #[test]
    fn finding_constructor() {
        let f = Finding::new(3, "x", "y");
        assert_eq!((f.line, f.code.as_str(), f.message.as_str()), (3, "x", "y"));
    }
}
