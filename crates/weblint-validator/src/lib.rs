//! Baseline checkers weblint is compared against.
//!
//! The paper positions weblint between two alternatives:
//!
//! * **Strict SGML validators** (§3.2), "based on one of James Clark's
//!   parsers": they check against the DTD, but "the warning and error
//!   messages are usually straight from the parser, and require a grounding
//!   in SGML to understand". [`StrictValidator`] is that comparator — a
//!   content-model validator with SP/nsgmls-flavoured messages and classic
//!   parser-style cascade behaviour.
//!
//! * **htmlchek** (§3.3), "a perl script (also available in awk) which
//!   performs syntax checking similar to weblint" but line-oriented.
//!   [`RegexChecker`] is that comparator — tag-local and count-based
//!   checks with no element stack, so nesting-class mistakes (overlap,
//!   heading mismatch, misplaced context) are invisible to it.
//!
//! All three checkers (including weblint itself, via [`WeblintChecker`])
//! implement [`HtmlChecker`], so the comparison experiments can drive them
//! interchangeably.
//!
//! # Examples
//!
//! ```
//! use weblint_validator::{HtmlChecker, StrictValidator, RegexChecker, WeblintChecker};
//!
//! let page = "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P><B><I>x</B></I></P></BODY></HTML>";
//! let strict = StrictValidator::default();
//! let regex = RegexChecker::new();
//! let weblint = WeblintChecker::default();
//! // The overlap is invisible to the line checker: tags all balance.
//! assert!(regex.check(page).is_empty());
//! assert!(weblint.check(page).iter().any(|f| f.code == "element-overlap"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod content;
mod finding;
mod regexchek;
mod strict;

pub use content::{exclusions_for, may_contain, pcdata_allowed};
pub use finding::{Finding, HtmlChecker, WeblintChecker};
pub use regexchek::RegexChecker;
pub use strict::StrictValidator;
