//! Simplified HTML content models for the strict validator.
//!
//! Real SP reads the DTD; this comparator encodes the HTML 4.0 content
//! models directly, at the granularity the comparison needs: which elements
//! a container may hold, whether character data is allowed, and the SGML
//! *exclusions* (`-(A)` on `A`, `-(FORM)` on `FORM`, …).

use weblint_html::{ElementCategory, ElementDef};

/// Whether `parent` may directly contain `child` under the (simplified)
/// HTML 4.0 content models.
pub fn may_contain(parent: &ElementDef, child: &ElementDef) -> bool {
    use ElementCategory::{Block, Form, Frame, Head, Inline, List, Structure, Table};
    let inline_ok = matches!(child.category, Inline | Form);
    let flow_ok = inline_ok || matches!(child.category, Block | Table) || child.name == "script";
    match parent.name {
        "html" => matches!(child.name, "head" | "body" | "frameset" | "noframes"),
        "head" => {
            child.category == Head
                || matches!(child.name, "script" | "style" | "object" | "isindex")
        }
        "body" | "noframes" | "noscript" | "blockquote" | "center" | "form" | "fieldset" | "li"
        | "dd" | "td" | "th" | "div" | "object" | "iframe" | "layer" | "ilayer" | "nolayer"
        | "multicol" | "marquee" | "comment" | "noembed" | "ins" | "del" => flow_ok,
        "p" | "address" | "legend" | "caption" | "dt" | "label" | "h1" | "h2" | "h3" | "h4"
        | "h5" | "h6" => inline_ok,
        "pre" => {
            inline_ok
                && !matches!(
                    child.name,
                    "img"
                        | "object"
                        | "applet"
                        | "big"
                        | "small"
                        | "sub"
                        | "sup"
                        | "font"
                        | "basefont"
                )
        }
        "ul" | "ol" | "dir" | "menu" => child.name == "li",
        "dl" => matches!(child.name, "dt" | "dd"),
        "table" => matches!(
            child.name,
            "caption" | "colgroup" | "col" | "thead" | "tbody" | "tfoot" | "tr"
        ),
        "thead" | "tbody" | "tfoot" => child.name == "tr",
        "colgroup" => child.name == "col",
        "tr" => matches!(child.name, "td" | "th"),
        "select" => matches!(child.name, "option" | "optgroup"),
        "optgroup" => child.name == "option",
        "map" => child.name == "area" || matches!(child.category, Block),
        "frameset" => matches!(child.name, "frameset" | "frame" | "noframes"),
        "button" => flow_ok, // exclusions handle the forbidden descendants
        "applet" => flow_ok || child.name == "param",
        "style" | "script" | "title" | "textarea" | "option" | "xmp" | "listing" | "plaintext" => {
            false
        } // raw or PCDATA-only content
        _ => match parent.category {
            Inline => inline_ok,
            Block => flow_ok,
            Structure | Head | Table | List | Form | Frame => flow_ok,
        },
    }
}

/// Whether `parent` may directly contain character data.
pub fn pcdata_allowed(parent: &ElementDef) -> bool {
    if matches!(
        parent.name,
        "title" | "option" | "textarea" | "script" | "style" | "xmp" | "listing" | "pre"
    ) {
        return true;
    }
    if matches!(
        parent.name,
        "html"
            | "head"
            | "ul"
            | "ol"
            | "dl"
            | "dir"
            | "menu"
            | "table"
            | "thead"
            | "tbody"
            | "tfoot"
            | "tr"
            | "colgroup"
            | "select"
            | "optgroup"
            | "frameset"
            | "map"
    ) {
        return false;
    }
    true
}

/// SGML exclusions: descendants forbidden anywhere inside the element.
pub fn exclusions_for(name: &str) -> &'static [&'static str] {
    match name {
        "a" => &["a"],
        "form" => &["form"],
        "label" => &["label"],
        "button" => &[
            "a", "input", "select", "textarea", "label", "button", "form", "fieldset", "iframe",
            "isindex",
        ],
        "pre" => &[
            "img", "object", "applet", "big", "small", "sub", "sup", "font", "basefont",
        ],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weblint_html::HtmlSpec;

    fn el(name: &str) -> &'static ElementDef {
        HtmlSpec::default()
            .element_any(name)
            .unwrap_or_else(|| panic!("{name} missing"))
    }

    #[test]
    fn document_structure() {
        assert!(may_contain(el("html"), el("head")));
        assert!(may_contain(el("html"), el("body")));
        assert!(!may_contain(el("html"), el("p")));
        assert!(may_contain(el("head"), el("title")));
        assert!(may_contain(el("head"), el("script")));
        assert!(!may_contain(el("head"), el("h1")));
    }

    #[test]
    fn paragraphs_hold_inline_only() {
        assert!(may_contain(el("p"), el("b")));
        assert!(may_contain(el("p"), el("input")));
        assert!(!may_contain(el("p"), el("div")));
        assert!(!may_contain(el("p"), el("table")));
    }

    #[test]
    fn lists_and_tables_are_structured() {
        assert!(may_contain(el("ul"), el("li")));
        assert!(!may_contain(el("ul"), el("p")));
        assert!(may_contain(el("table"), el("tr")));
        assert!(!may_contain(el("table"), el("td")));
        assert!(may_contain(el("tr"), el("td")));
        assert!(may_contain(el("dl"), el("dt")));
        assert!(!may_contain(el("dl"), el("li")));
    }

    #[test]
    fn flow_containers_hold_blocks() {
        assert!(may_contain(el("body"), el("h1")));
        assert!(may_contain(el("td"), el("table")));
        assert!(may_contain(el("li"), el("ul")));
    }

    #[test]
    fn pre_excludes_images() {
        assert!(may_contain(el("pre"), el("b")));
        assert!(!may_contain(el("pre"), el("img")));
    }

    #[test]
    fn pcdata_rules() {
        assert!(pcdata_allowed(el("p")));
        assert!(pcdata_allowed(el("title")));
        assert!(pcdata_allowed(el("body")));
        assert!(!pcdata_allowed(el("ul")));
        assert!(!pcdata_allowed(el("table")));
        assert!(!pcdata_allowed(el("html")));
        assert!(!pcdata_allowed(el("select")));
    }

    #[test]
    fn exclusion_sets() {
        assert_eq!(exclusions_for("a"), &["a"]);
        assert!(exclusions_for("button").contains(&"input"));
        assert!(exclusions_for("p").is_empty());
    }
}
