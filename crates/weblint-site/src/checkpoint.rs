//! Durable crawl checkpoints: the write-ahead state files that make a
//! sharded crawl ([`crate::Robot::crawl_sharded`]) survive a hard kill.
//!
//! # Wire format
//!
//! A checkpoint directory holds one file per shard per epoch
//! (`shard{N}.{epoch}.ckpt`, epoch = wave number at save time) plus a
//! `manifest.ckpt` naming the newest complete epoch and, as a fallback,
//! the previous one. Every file is a sequence of *records*:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a of payload][payload bytes]
//! ```
//!
//! The payload's first byte is a record tag (header, visited set,
//! frontier, pages, …); a shard file is valid only if it decodes from
//! its `Header` record through its `End` marker with every checksum
//! intact. Decoding stops at the first torn record — a partial write
//! from a crash truncates to garbage, the checksum catches it, and the
//! loader falls back to the previous epoch (recorded in the manifest)
//! or refuses cleanly. Nothing in this module panics on hostile bytes;
//! the torture suite (`tests/checkpoint_torture.rs`) truncates a valid
//! checkpoint at every byte offset and flips bits to prove it.
//!
//! # Atomicity
//!
//! Files are published with the classic tmp+rename dance: the bytes are
//! fully written and flushed to `.tmp`, then renamed into place. The
//! manifest is written *last*, after every shard file of the new epoch
//! is durable, so a crash mid-save leaves the manifest pointing at the
//! old epoch — the new epoch's partial files are invisible garbage that
//! the next save garbage-collects.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use weblint_core::{intern_id, Category, Diagnostic, Pos, Span};
use weblint_service::fnv1a;

use crate::fault::{
    BreakerSnapshot, FaultLayerState, HostFaults, HostResilience, ResilienceHostState,
    ResilienceLayerState,
};
use crate::frontier::Candidate;
use crate::pacing::{PacerHostState, PacingLayerState};
use crate::robot::{CrawledPage, DeadLink};
use crate::stack::StackState;
use crate::url::Url;

/// `"WLCK"` — the first field of every checkpoint header.
const MAGIC: u32 = 0x574C_434B;
/// Bumped on any wire-format change; a mismatch refuses cleanly.
const VERSION: u32 = 1;
/// Upper bound on a single record's payload, far above anything a real
/// crawl writes. Bounds allocation when a corrupt length field lies.
const MAX_RECORD: usize = 1 << 28;

/// Record tags. A shard file is `Header … End`; the manifest is a
/// single `Manifest` record.
mod tag {
    pub const HEADER: u8 = 1;
    pub const VISITED: u8 = 2;
    pub const FRONTIER: u8 = 3;
    pub const HEAD_CHECKED: u8 = 4;
    pub const PAGES: u8 = 5;
    pub const DEAD_LINKS: u8 = 6;
    pub const STACK: u8 = 7;
    pub const END: u8 = 8;
    pub const MANIFEST: u8 = 9;
    pub const PROBES: u8 = 10;
}

/// Why a checkpoint operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The filesystem said no.
    Io(String),
    /// Bytes on disk failed a checksum, length, or structural check.
    Corrupt(String),
    /// The checkpoint is valid but belongs to a different crawl
    /// configuration (fingerprint mismatch) or format version.
    Incompatible(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(e) => write!(f, "corrupt checkpoint: {e}"),
            CheckpointError::Incompatible(e) => write!(f, "incompatible checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(context: &str, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(format!("{context}: {e}"))
}

fn corrupt(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(msg.into())
}

/// Crawl-level metadata stamped into every shard file and the manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Number of shards the crawl was partitioned into.
    pub shards: usize,
    /// The wave the checkpoint was taken after (waves `0..wave` are
    /// fully merged into the state).
    pub wave: usize,
    /// The crawl's fetch-stack seed.
    pub seed: u64,
    /// FNV fingerprint of everything that must match for a resume to be
    /// exact: shard count, seed, start URLs, robot options, stack
    /// configuration token.
    pub fingerprint: u64,
    /// Pages crawled so far, across all shards.
    pub pages_total: u64,
    /// Whether the page budget cut the frontier (`truncated` in the
    /// final report).
    pub truncated: bool,
    /// Whether the crawl finished — a complete checkpoint replays to a
    /// report without fetching anything.
    pub complete: bool,
}

/// One shard's full durable state: everything its scheduler needs to
/// carry on exactly where it left off.
#[derive(Debug, Clone, Default)]
pub struct ShardState {
    /// The shard index.
    pub shard: usize,
    /// Every URL ever assigned to this shard (sorted).
    pub visited: Vec<String>,
    /// Candidates pending for the next wave (sorted by URL).
    pub frontier: Vec<Candidate>,
    /// Link-validation probes pending for the next wave (sorted by
    /// URL): links the crawl will HEAD-check but never fetch.
    pub probes: Vec<Candidate>,
    /// URLs already HEAD-probed (sorted).
    pub head_checked: Vec<String>,
    /// Pages this shard has crawled, in crawl order.
    pub pages: Vec<CrawledPage>,
    /// Dead links this shard has found, in discovery order.
    pub dead_links: Vec<DeadLink>,
    /// Redirects this shard has followed.
    pub redirects: u64,
    /// The shard's fetch-stack state (attempt counters, breakers, AIMD
    /// limits, latency estimators).
    pub stack: StackState,
}

/// A checkpoint successfully loaded from disk.
#[derive(Debug, Clone)]
pub struct LoadedCheckpoint {
    /// The crawl-level metadata.
    pub meta: CheckpointMeta,
    /// One state per shard, index-aligned.
    pub shards: Vec<ShardState>,
    /// The epoch the states were loaded from (equals `meta.wave` unless
    /// the loader fell back to the previous epoch).
    pub epoch: u64,
}

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("record truncated at byte {}", self.pos)))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| corrupt("length does not fit a usize"))
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// A length the record claims a collection has. Bounded by the
    /// bytes actually remaining so a lying length cannot balloon an
    /// allocation.
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(corrupt(format!(
                "collection length {n} exceeds remaining {} bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not UTF-8"))
    }

    fn url(&mut self) -> Result<Url, CheckpointError> {
        let s = self.str()?;
        Url::parse(&s).ok_or_else(|| corrupt(format!("invalid URL `{s}'")))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

fn push_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Split `bytes` into checksum-verified record payloads. Stops cleanly
/// at the first torn record (short header, short payload, bad checksum,
/// oversize length) — the caller decides whether the prefix read so far
/// forms a complete checkpoint.
fn split_records(bytes: &[u8]) -> Vec<&[u8]> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 12 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if len > MAX_RECORD || bytes.len() - pos - 12 < len {
            break; // torn or lying record
        }
        let payload = &bytes[pos + 12..pos + 12 + len];
        if fnv1a(payload) != sum {
            break; // bit rot
        }
        records.push(payload);
        pos += 12 + len;
    }
    records
}

// ---------------------------------------------------------------------
// Domain encoding
// ---------------------------------------------------------------------

fn enc_candidate(e: &mut Enc, c: &Candidate) {
    e.str(&c.url.to_string());
    e.usize(c.depth);
    e.str(&c.via);
    e.str(&c.href);
}

fn dec_candidate(d: &mut Dec) -> Result<Candidate, CheckpointError> {
    Ok(Candidate {
        url: d.url()?,
        depth: d.usize()?,
        via: d.str()?,
        href: d.str()?,
    })
}

fn enc_pos(e: &mut Enc, p: &Pos) {
    e.u32(p.line);
    e.u32(p.col);
    e.usize(p.offset);
}

fn dec_pos(d: &mut Dec) -> Result<Pos, CheckpointError> {
    Ok(Pos {
        line: d.u32()?,
        col: d.u32()?,
        offset: d.usize()?,
    })
}

/// Diagnostics are stored without their `fix` payload: the sharded
/// crawl never collects fixes (`emit_fixes` stays off in crawl paths),
/// and a fix is a derived artifact of the page source anyway.
fn enc_diagnostic(e: &mut Enc, diag: &Diagnostic) {
    e.str(diag.id);
    e.str(diag.category.name());
    e.u32(diag.line);
    e.u32(diag.col);
    e.str(&diag.message);
    enc_pos(e, &diag.span.start);
    enc_pos(e, &diag.span.end);
}

fn dec_diagnostic(d: &mut Dec) -> Result<Diagnostic, CheckpointError> {
    let id = intern_id(&d.str()?);
    let category_name = d.str()?;
    let category = Category::parse(&category_name)
        .ok_or_else(|| corrupt(format!("unknown category `{category_name}'")))?;
    Ok(Diagnostic {
        id,
        category,
        line: d.u32()?,
        col: d.u32()?,
        message: d.str()?,
        span: Span {
            start: dec_pos(d)?,
            end: dec_pos(d)?,
        },
        fix: None,
    })
}

fn enc_page(e: &mut Enc, p: &CrawledPage) {
    e.str(&p.url.to_string());
    e.usize(p.depth);
    e.usize(p.link_count);
    e.usize(p.diagnostics.len());
    for diag in &p.diagnostics {
        enc_diagnostic(e, diag);
    }
}

fn dec_page(d: &mut Dec) -> Result<CrawledPage, CheckpointError> {
    let url = d.url()?;
    let depth = d.usize()?;
    let link_count = d.usize()?;
    let n = d.len()?;
    let mut diagnostics = Vec::with_capacity(n);
    for _ in 0..n {
        diagnostics.push(dec_diagnostic(d)?);
    }
    Ok(CrawledPage {
        url,
        diagnostics,
        link_count,
        depth,
    })
}

fn enc_dead_link(e: &mut Enc, l: &DeadLink) {
    e.str(&l.page.to_string());
    e.str(&l.href);
    e.str(&l.reason);
}

fn dec_dead_link(d: &mut Dec) -> Result<DeadLink, CheckpointError> {
    Ok(DeadLink {
        page: d.url()?,
        href: d.str()?,
        reason: d.str()?,
    })
}

fn enc_host_faults(e: &mut Enc, h: &HostFaults) {
    e.u64(h.requests);
    e.u64(h.latency);
    e.u64(h.timeouts);
    e.u64(h.server_errors);
    e.u64(h.resets);
    e.u64(h.truncated);
    e.u64(h.added_latency_us);
}

fn dec_host_faults(d: &mut Dec) -> Result<HostFaults, CheckpointError> {
    Ok(HostFaults {
        requests: d.u64()?,
        latency: d.u64()?,
        timeouts: d.u64()?,
        server_errors: d.u64()?,
        resets: d.u64()?,
        truncated: d.u64()?,
        added_latency_us: d.u64()?,
    })
}

fn enc_host_resilience(e: &mut Enc, h: &HostResilience) {
    e.u64(h.requests);
    e.u64(h.successes);
    e.u64(h.failures);
    e.u64(h.retries);
    e.u64(h.backoff_us);
    e.u64(h.breaker_opens);
    e.u64(h.fast_failures);
    e.u64(h.probes);
}

fn dec_host_resilience(d: &mut Dec) -> Result<HostResilience, CheckpointError> {
    Ok(HostResilience {
        requests: d.u64()?,
        successes: d.u64()?,
        failures: d.u64()?,
        retries: d.u64()?,
        backoff_us: d.u64()?,
        breaker_opens: d.u64()?,
        fast_failures: d.u64()?,
        probes: d.u64()?,
    })
}

fn enc_breaker(e: &mut Enc, b: &BreakerSnapshot) {
    match b {
        BreakerSnapshot::Unset => {
            e.u8(0);
            e.u32(0);
        }
        BreakerSnapshot::Closed { failures } => {
            e.u8(1);
            e.u32(*failures);
        }
        BreakerSnapshot::Open { remaining } => {
            e.u8(2);
            e.u32(*remaining);
        }
        BreakerSnapshot::HalfOpen => {
            e.u8(3);
            e.u32(0);
        }
    }
}

fn dec_breaker(d: &mut Dec) -> Result<BreakerSnapshot, CheckpointError> {
    let kind = d.u8()?;
    let arg = d.u32()?;
    Ok(match kind {
        0 => BreakerSnapshot::Unset,
        1 => BreakerSnapshot::Closed { failures: arg },
        2 => BreakerSnapshot::Open { remaining: arg },
        3 => BreakerSnapshot::HalfOpen,
        b => return Err(corrupt(format!("invalid breaker tag {b}"))),
    })
}

fn enc_stack(e: &mut Enc, s: &StackState) {
    match &s.faults {
        None => e.bool(false),
        Some(f) => {
            e.bool(true);
            e.usize(f.attempts.len());
            for (url, n) in &f.attempts {
                e.str(url);
                e.u64(*n);
            }
            e.usize(f.hosts.len());
            for (host, h) in &f.hosts {
                e.str(host);
                enc_host_faults(e, h);
            }
        }
    }
    match &s.resilience {
        None => e.bool(false),
        Some(r) => {
            e.bool(true);
            e.usize(r.hosts.len());
            for h in &r.hosts {
                e.str(&h.host);
                enc_host_resilience(e, &h.stats);
                enc_breaker(e, &h.breaker);
            }
        }
    }
    e.usize(s.pacing.hosts.len());
    for h in &s.pacing.hosts {
        e.str(&h.host);
        e.u32(h.limit);
        e.u32(h.clean_streak);
        e.i64(h.srtt_us);
        e.i64(h.dev_us);
        e.u64(h.samples);
        let st = &h.stats;
        e.u32(st.limit);
        e.u64(st.authorized);
        e.u64(st.clean);
        e.u64(st.bad);
        e.u64(st.decreases);
        e.u64(st.increases);
        e.u64(st.hedges_fired);
        e.u64(st.hedges_won);
        e.u64(st.suppressed_breaker);
        e.u64(st.suppressed_budget);
        e.u64(st.threshold_us);
    }
}

fn dec_stack(d: &mut Dec) -> Result<StackState, CheckpointError> {
    let faults = if d.bool()? {
        let n = d.len()?;
        let mut attempts = Vec::with_capacity(n);
        for _ in 0..n {
            let url = d.str()?;
            let count = d.u64()?;
            attempts.push((url, count));
        }
        let n = d.len()?;
        let mut hosts = Vec::with_capacity(n);
        for _ in 0..n {
            let host = d.str()?;
            let h = dec_host_faults(d)?;
            hosts.push((host, h));
        }
        Some(FaultLayerState { attempts, hosts })
    } else {
        None
    };
    let resilience = if d.bool()? {
        let n = d.len()?;
        let mut hosts = Vec::with_capacity(n);
        for _ in 0..n {
            let host = d.str()?;
            let stats = dec_host_resilience(d)?;
            let breaker = dec_breaker(d)?;
            hosts.push(ResilienceHostState {
                host,
                stats,
                breaker,
            });
        }
        Some(ResilienceLayerState { hosts })
    } else {
        None
    };
    let n = d.len()?;
    let mut hosts = Vec::with_capacity(n);
    for _ in 0..n {
        let host = d.str()?;
        let limit = d.u32()?;
        let clean_streak = d.u32()?;
        let srtt_us = d.i64()?;
        let dev_us = d.i64()?;
        let samples = d.u64()?;
        let stats = crate::pacing::HostPacing {
            limit: d.u32()?,
            authorized: d.u64()?,
            clean: d.u64()?,
            bad: d.u64()?,
            decreases: d.u64()?,
            increases: d.u64()?,
            hedges_fired: d.u64()?,
            hedges_won: d.u64()?,
            suppressed_breaker: d.u64()?,
            suppressed_budget: d.u64()?,
            threshold_us: d.u64()?,
        };
        hosts.push(PacerHostState {
            host,
            limit,
            clean_streak,
            srtt_us,
            dev_us,
            samples,
            stats,
        });
    }
    Ok(StackState {
        faults,
        resilience,
        pacing: PacingLayerState { hosts },
    })
}

fn enc_meta(e: &mut Enc, meta: &CheckpointMeta, shard: usize) {
    e.u32(MAGIC);
    e.u32(VERSION);
    e.usize(shard);
    e.usize(meta.shards);
    e.usize(meta.wave);
    e.u64(meta.seed);
    e.u64(meta.fingerprint);
    e.u64(meta.pages_total);
    e.bool(meta.truncated);
    e.bool(meta.complete);
}

fn dec_meta(d: &mut Dec) -> Result<(CheckpointMeta, usize), CheckpointError> {
    let magic = d.u32()?;
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:#x}")));
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(CheckpointError::Incompatible(format!(
            "checkpoint format v{version}, this build reads v{VERSION}"
        )));
    }
    let shard = d.usize()?;
    let meta = CheckpointMeta {
        shards: d.usize()?,
        wave: d.usize()?,
        seed: d.u64()?,
        fingerprint: d.u64()?,
        pages_total: d.u64()?,
        truncated: d.bool()?,
        complete: d.bool()?,
    };
    Ok((meta, shard))
}

// ---------------------------------------------------------------------
// Shard files
// ---------------------------------------------------------------------

/// Serialize one shard's state (plus the crawl metadata) to checkpoint
/// bytes — the exact bytes [`decode_shard`] reads back.
pub fn encode_shard(meta: &CheckpointMeta, state: &ShardState) -> Vec<u8> {
    let mut out = Vec::new();
    let mut rec = |build: &dyn Fn(&mut Enc)| {
        let mut e = Enc::new();
        build(&mut e);
        push_record(&mut out, &e.buf);
    };
    rec(&|e| {
        e.u8(tag::HEADER);
        enc_meta(e, meta, state.shard);
    });
    rec(&|e| {
        e.u8(tag::VISITED);
        e.usize(state.visited.len());
        for v in &state.visited {
            e.str(v);
        }
    });
    rec(&|e| {
        e.u8(tag::FRONTIER);
        e.usize(state.frontier.len());
        for c in &state.frontier {
            enc_candidate(e, c);
        }
    });
    rec(&|e| {
        e.u8(tag::PROBES);
        e.usize(state.probes.len());
        for c in &state.probes {
            enc_candidate(e, c);
        }
    });
    rec(&|e| {
        e.u8(tag::HEAD_CHECKED);
        e.usize(state.head_checked.len());
        for h in &state.head_checked {
            e.str(h);
        }
    });
    rec(&|e| {
        e.u8(tag::PAGES);
        e.usize(state.pages.len());
        for p in &state.pages {
            enc_page(e, p);
        }
    });
    rec(&|e| {
        e.u8(tag::DEAD_LINKS);
        e.usize(state.dead_links.len());
        for l in &state.dead_links {
            enc_dead_link(e, l);
        }
    });
    rec(&|e| {
        e.u8(tag::STACK);
        e.u64(state.redirects);
        enc_stack(e, &state.stack);
    });
    rec(&|e| e.u8(tag::END));
    out
}

/// Decode one shard's checkpoint bytes. Refuses (never panics) on torn
/// records, checksum failures, missing sections, or trailing garbage
/// inside a record.
pub fn decode_shard(bytes: &[u8]) -> Result<(CheckpointMeta, ShardState), CheckpointError> {
    let records = split_records(bytes);
    let mut meta: Option<(CheckpointMeta, usize)> = None;
    let mut state = ShardState::default();
    let mut seen_end = false;
    let mut seen = [false; 9];
    for payload in records {
        if seen_end {
            return Err(corrupt("records after the End marker"));
        }
        let mut d = Dec::new(payload);
        let t = d.u8()?;
        if t != tag::HEADER && meta.is_none() {
            return Err(corrupt("first record is not a header"));
        }
        let idx = match t {
            tag::HEADER => {
                meta = Some(dec_meta(&mut d)?);
                0
            }
            tag::VISITED => {
                let n = d.len()?;
                state.visited = Vec::with_capacity(n);
                for _ in 0..n {
                    state.visited.push(d.str()?);
                }
                1
            }
            tag::FRONTIER => {
                let n = d.len()?;
                state.frontier = Vec::with_capacity(n);
                for _ in 0..n {
                    state.frontier.push(dec_candidate(&mut d)?);
                }
                2
            }
            tag::HEAD_CHECKED => {
                let n = d.len()?;
                state.head_checked = Vec::with_capacity(n);
                for _ in 0..n {
                    state.head_checked.push(d.str()?);
                }
                3
            }
            tag::PAGES => {
                let n = d.len()?;
                state.pages = Vec::with_capacity(n);
                for _ in 0..n {
                    state.pages.push(dec_page(&mut d)?);
                }
                4
            }
            tag::DEAD_LINKS => {
                let n = d.len()?;
                state.dead_links = Vec::with_capacity(n);
                for _ in 0..n {
                    state.dead_links.push(dec_dead_link(&mut d)?);
                }
                5
            }
            tag::STACK => {
                state.redirects = d.u64()?;
                state.stack = dec_stack(&mut d)?;
                6
            }
            tag::PROBES => {
                let n = d.len()?;
                state.probes = Vec::with_capacity(n);
                for _ in 0..n {
                    state.probes.push(dec_candidate(&mut d)?);
                }
                7
            }
            tag::END => {
                seen_end = true;
                8
            }
            t => return Err(corrupt(format!("unknown record tag {t}"))),
        };
        if seen[idx] {
            return Err(corrupt(format!("duplicate record tag {t}")));
        }
        seen[idx] = true;
        if !d.done() {
            return Err(corrupt(format!("trailing bytes in record tag {t}")));
        }
    }
    if !seen_end || !seen.iter().all(|&s| s) {
        return Err(corrupt("checkpoint is missing records (torn write?)"));
    }
    let (meta, shard) = meta.expect("header seen");
    state.shard = shard;
    Ok((meta, state))
}

// ---------------------------------------------------------------------
// Directory layer: epochs, manifest, atomic publish
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct EpochEntry {
    epoch: u64,
    checksums: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Manifest {
    meta: CheckpointMeta,
    newest: EpochEntry,
    prev: Option<EpochEntry>,
}

fn shard_file(dir: &Path, shard: usize, epoch: u64) -> PathBuf {
    dir.join(format!("shard{shard}.{epoch}.ckpt"))
}

fn manifest_file(dir: &Path) -> PathBuf {
    dir.join("manifest.ckpt")
}

/// Write `bytes` to `path` atomically: full write + flush to a `.tmp`
/// sibling, then rename into place.
fn publish(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create tmp", e))?;
    f.write_all(bytes).map_err(|e| io_err("write tmp", e))?;
    f.sync_all().map_err(|e| io_err("sync tmp", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename into place", e))?;
    Ok(())
}

fn enc_epoch_entry(e: &mut Enc, entry: &EpochEntry) {
    e.u64(entry.epoch);
    e.usize(entry.checksums.len());
    for &c in &entry.checksums {
        e.u64(c);
    }
}

fn dec_epoch_entry(d: &mut Dec) -> Result<EpochEntry, CheckpointError> {
    let epoch = d.u64()?;
    let n = d.len()?;
    let mut checksums = Vec::with_capacity(n);
    for _ in 0..n {
        checksums.push(d.u64()?);
    }
    Ok(EpochEntry { epoch, checksums })
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(tag::MANIFEST);
    enc_meta(&mut e, &m.meta, 0);
    enc_epoch_entry(&mut e, &m.newest);
    match &m.prev {
        None => e.bool(false),
        Some(prev) => {
            e.bool(true);
            enc_epoch_entry(&mut e, prev);
        }
    }
    let mut out = Vec::new();
    push_record(&mut out, &e.buf);
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, CheckpointError> {
    let records = split_records(bytes);
    if records.len() != 1 {
        return Err(corrupt("manifest is not exactly one intact record"));
    }
    let mut d = Dec::new(records[0]);
    if d.u8()? != tag::MANIFEST {
        return Err(corrupt("not a manifest record"));
    }
    let (meta, _) = dec_meta(&mut d)?;
    let newest = dec_epoch_entry(&mut d)?;
    let prev = if d.bool()? {
        Some(dec_epoch_entry(&mut d)?)
    } else {
        None
    };
    if !d.done() {
        return Err(corrupt("trailing bytes in manifest"));
    }
    if newest.checksums.len() != meta.shards
        || prev
            .as_ref()
            .is_some_and(|p| p.checksums.len() != meta.shards)
    {
        return Err(corrupt("manifest shard count mismatch"));
    }
    Ok(Manifest { meta, newest, prev })
}

/// Save a full checkpoint: one file per shard for this epoch (epoch =
/// `meta.wave`), then the manifest naming it. The previous newest epoch
/// is retained as the manifest's fallback; anything older is
/// garbage-collected.
pub fn save_checkpoint(
    dir: &Path,
    meta: &CheckpointMeta,
    shards: &[ShardState],
) -> Result<(), CheckpointError> {
    if shards.len() != meta.shards {
        return Err(CheckpointError::Incompatible(format!(
            "{} shard states for a {}-shard checkpoint",
            shards.len(),
            meta.shards
        )));
    }
    fs::create_dir_all(dir).map_err(|e| io_err("create checkpoint dir", e))?;
    let epoch = meta.wave as u64;
    let mut checksums = Vec::with_capacity(shards.len());
    for state in shards {
        let bytes = encode_shard(meta, state);
        checksums.push(fnv1a(&bytes));
        publish(&shard_file(dir, state.shard, epoch), &bytes)?;
    }
    // The outgoing manifest's newest epoch becomes our fallback — but
    // only if it is a *different* epoch (re-saving the same wave just
    // replaces it) and its files still verify as named.
    let prev = match read_manifest(dir) {
        Ok(Some(m)) if m.newest.epoch != epoch => Some(m.newest),
        Ok(Some(m)) => m.prev.filter(|p| p.epoch != epoch),
        _ => None,
    };
    let manifest = Manifest {
        meta: meta.clone(),
        newest: EpochEntry { epoch, checksums },
        prev,
    };
    publish(&manifest_file(dir), &encode_manifest(&manifest))?;
    gc_epochs(dir, &manifest);
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<Option<Manifest>, CheckpointError> {
    let path = manifest_file(dir);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read manifest", e)),
    };
    decode_manifest(&bytes).map(Some)
}

/// Remove shard files from epochs the manifest no longer references.
/// Best-effort: GC failures never fail a save.
fn gc_epochs(dir: &Path, manifest: &Manifest) {
    let keep_prev = manifest.prev.as_ref().map(|p| p.epoch);
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("shard") else {
            continue;
        };
        let Some(middle) = rest.strip_suffix(".ckpt") else {
            continue;
        };
        let Some((_, epoch)) = middle.split_once('.') else {
            continue;
        };
        let Ok(epoch) = epoch.parse::<u64>() else {
            continue;
        };
        if epoch != manifest.newest.epoch && Some(epoch) != keep_prev {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Try to load one complete epoch: every shard file present, whole-file
/// checksum matching the manifest, decoding cleanly, and mutually
/// consistent.
fn load_epoch(
    dir: &Path,
    shards: usize,
    entry: &EpochEntry,
) -> Result<(CheckpointMeta, Vec<ShardState>), CheckpointError> {
    let mut states: Vec<Option<ShardState>> = (0..shards).map(|_| None).collect();
    let mut meta: Option<CheckpointMeta> = None;
    for (shard, slot) in states.iter_mut().enumerate() {
        let path = shard_file(dir, shard, entry.epoch);
        let bytes = fs::read(&path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
        if fnv1a(&bytes) != entry.checksums[shard] {
            return Err(corrupt(format!(
                "{} does not match its manifest checksum",
                path.display()
            )));
        }
        let (file_meta, state) = decode_shard(&bytes)?;
        if state.shard != shard {
            return Err(corrupt(format!(
                "{} claims to be shard {}",
                path.display(),
                state.shard
            )));
        }
        match &meta {
            None => meta = Some(file_meta),
            Some(m) if *m != file_meta => {
                return Err(corrupt("shard files disagree on crawl metadata"))
            }
            Some(_) => {}
        }
        *slot = Some(state);
    }
    let meta = meta.ok_or_else(|| corrupt("checkpoint has zero shards"))?;
    Ok((
        meta,
        states.into_iter().map(|s| s.expect("filled")).collect(),
    ))
}

/// Load the newest complete checkpoint from `dir`.
///
/// * No manifest → `Ok(None)`: a fresh crawl.
/// * Manifest valid, newest epoch intact → that epoch.
/// * Newest epoch torn/corrupt but the previous epoch verifies → the
///   previous epoch (crash during or after a save).
/// * Manifest corrupt, or no epoch verifies → `Err` — refuse cleanly
///   rather than resume from a lie.
pub fn load_checkpoint(dir: &Path) -> Result<Option<LoadedCheckpoint>, CheckpointError> {
    let Some(manifest) = read_manifest(dir)? else {
        return Ok(None);
    };
    let shards = manifest.meta.shards;
    let newest = load_epoch(dir, shards, &manifest.newest);
    match newest {
        Ok((meta, states)) => Ok(Some(LoadedCheckpoint {
            meta,
            shards: states,
            epoch: manifest.newest.epoch,
        })),
        Err(CheckpointError::Io(e)) if manifest.prev.is_none() => Err(CheckpointError::Io(e)),
        Err(newest_err) => {
            let Some(prev) = &manifest.prev else {
                return Err(newest_err);
            };
            let (meta, states) = load_epoch(dir, shards, prev).map_err(|prev_err| {
                corrupt(format!(
                    "newest epoch unusable ({newest_err}); previous epoch unusable ({prev_err})"
                ))
            })?;
            Ok(Some(LoadedCheckpoint {
                meta,
                shards: states,
                epoch: prev.epoch,
            }))
        }
    }
}

/// The FNV fingerprint binding a checkpoint to a crawl configuration:
/// any input that could change the schedule goes in.
pub(crate) fn fingerprint(parts: &[&str]) -> u64 {
    let mut joined = Vec::new();
    for p in parts {
        joined.extend_from_slice(&(p.len() as u64).to_le_bytes());
        joined.extend_from_slice(p.as_bytes());
    }
    fnv1a(&joined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(shard: usize) -> ShardState {
        let diag = Diagnostic {
            id: intern_id("missing-alt"),
            category: Category::parse("warning").unwrap(),
            line: 3,
            col: 5,
            message: "img does not have ALT text defined".to_string(),
            span: Span {
                start: Pos {
                    line: 3,
                    col: 5,
                    offset: 40,
                },
                end: Pos {
                    line: 3,
                    col: 20,
                    offset: 55,
                },
            },
            fix: None,
        };
        ShardState {
            shard,
            visited: vec!["http://a/x.html".into(), "http://b/y.html".into()],
            frontier: vec![Candidate {
                url: Url::parse("http://a/next.html").unwrap(),
                depth: 2,
                via: "http://a/x.html".into(),
                href: "next.html".into(),
            }],
            probes: vec![Candidate {
                url: Url::parse("http://cdn/other.png").unwrap(),
                depth: 2,
                via: "http://a/x.html".into(),
                href: "http://cdn/other.png".into(),
            }],
            head_checked: vec!["http://cdn/img.png".into()],
            pages: vec![CrawledPage {
                url: Url::parse("http://a/x.html").unwrap(),
                diagnostics: vec![diag],
                link_count: 4,
                depth: 1,
            }],
            dead_links: vec![DeadLink {
                page: Url::parse("http://a/x.html").unwrap(),
                href: "gone.html".into(),
                reason: "404 Not Found".into(),
            }],
            redirects: 7,
            stack: StackState {
                faults: Some(FaultLayerState {
                    attempts: vec![("http://a/x.html".into(), 3)],
                    hosts: vec![(
                        "a".into(),
                        HostFaults {
                            requests: 9,
                            timeouts: 1,
                            ..HostFaults::default()
                        },
                    )],
                }),
                resilience: Some(ResilienceLayerState {
                    hosts: vec![ResilienceHostState {
                        host: "a".into(),
                        stats: HostResilience {
                            requests: 9,
                            successes: 8,
                            retries: 2,
                            ..HostResilience::default()
                        },
                        breaker: BreakerSnapshot::Open { remaining: 3 },
                    }],
                }),
                pacing: PacingLayerState {
                    hosts: vec![PacerHostState {
                        host: "a".into(),
                        limit: 6,
                        clean_streak: 2,
                        srtt_us: 20_000,
                        dev_us: 1_500,
                        samples: 11,
                        stats: crate::pacing::HostPacing {
                            limit: 6,
                            authorized: 20,
                            clean: 18,
                            bad: 2,
                            ..crate::pacing::HostPacing::default()
                        },
                    }],
                },
            },
        }
    }

    fn sample_meta() -> CheckpointMeta {
        CheckpointMeta {
            shards: 1,
            wave: 4,
            seed: 42,
            fingerprint: 0xDEAD_BEEF,
            pages_total: 17,
            truncated: false,
            complete: false,
        }
    }

    #[test]
    fn shard_bytes_round_trip() {
        let meta = sample_meta();
        let state = sample_state(0);
        let bytes = encode_shard(&meta, &state);
        let (meta2, state2) = decode_shard(&bytes).unwrap();
        assert_eq!(meta, meta2);
        // CrawledPage/DeadLink lack PartialEq; byte equality of a
        // re-encode is the round-trip proof.
        assert_eq!(bytes, encode_shard(&meta2, &state2));
    }

    #[test]
    fn truncation_refuses_cleanly() {
        let bytes = encode_shard(&sample_meta(), &sample_state(0));
        for cut in 0..bytes.len() {
            let r = decode_shard(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn bit_flip_refuses_cleanly() {
        let bytes = encode_shard(&sample_meta(), &sample_state(0));
        // Flip a byte in the middle of the pages record.
        let mut evil = bytes.clone();
        let mid = evil.len() / 2;
        evil[mid] ^= 0x40;
        assert!(decode_shard(&evil).is_err());
    }

    #[test]
    fn save_load_round_trips_and_falls_back() {
        let dir = std::env::temp_dir().join(format!("weblint-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let mut meta = sample_meta();
        let state = sample_state(0);
        save_checkpoint(&dir, &meta, std::slice::from_ref(&state)).unwrap();
        let loaded = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(loaded.meta, meta);
        assert_eq!(loaded.epoch, meta.wave as u64);
        assert_eq!(
            encode_shard(&loaded.meta, &loaded.shards[0]),
            encode_shard(&meta, &state)
        );

        // Save a newer epoch, then corrupt it: the loader must fall
        // back to the older epoch.
        let old_meta = meta.clone();
        meta.wave = 9;
        meta.pages_total = 30;
        save_checkpoint(&dir, &meta, std::slice::from_ref(&state)).unwrap();
        let newest = shard_file(&dir, 0, 9);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        fs::write(&newest, &bytes).unwrap();
        let loaded = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(loaded.meta, old_meta, "fell back to the previous epoch");
        assert_eq!(loaded.epoch, old_meta.wave as u64);

        // A corrupt manifest refuses cleanly.
        let mpath = manifest_file(&dir);
        let mut mbytes = fs::read(&mpath).unwrap();
        let mid = mbytes.len() / 2;
        mbytes[mid] ^= 1;
        fs::write(&mpath, &mbytes).unwrap();
        assert!(matches!(
            load_checkpoint(&dir),
            Err(CheckpointError::Corrupt(_))
        ));

        // An absent directory is just a fresh start.
        let _ = fs::remove_dir_all(&dir);
        assert!(load_checkpoint(&dir).unwrap().is_none());
    }

    #[test]
    fn gc_keeps_only_manifest_epochs() {
        let dir = std::env::temp_dir().join(format!("weblint-ckpt-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut meta = sample_meta();
        let state = sample_state(0);
        for wave in [2usize, 5, 8] {
            meta.wave = wave;
            save_checkpoint(&dir, &meta, std::slice::from_ref(&state)).unwrap();
        }
        assert!(!shard_file(&dir, 0, 2).exists(), "epoch 2 collected");
        assert!(shard_file(&dir, 0, 5).exists(), "previous epoch kept");
        assert!(shard_file(&dir, 0, 8).exists(), "newest epoch kept");
        let _ = fs::remove_dir_all(&dir);
    }
}
