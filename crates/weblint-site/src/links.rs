//! Hyperlink extraction and local-path resolution.

use weblint_tokenizer::{TokenKind, Tokenizer};

use crate::url::normalize_path;

/// Where a link points, coarsely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// A relative or site-rooted reference to this site.
    Local,
    /// An absolute URL with a scheme and host (`http://…`).
    External,
    /// A `mailto:` reference.
    Mailto,
    /// A same-page fragment (`#section`).
    Fragment,
}

/// One extracted link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// The reference exactly as written.
    pub href: String,
    /// Classification.
    pub kind: LinkKind,
    /// 1-based line of the tag carrying it.
    pub line: u32,
    /// Which element/attribute produced it (`A HREF`, `IMG SRC`, …).
    pub source: &'static str,
}

/// The (element, attribute) pairs that carry links, and their label.
const LINK_ATTRS: &[(&str, &str, &str)] = &[
    ("a", "href", "A HREF"),
    ("img", "src", "IMG SRC"),
    ("area", "href", "AREA HREF"),
    ("link", "href", "LINK HREF"),
    ("form", "action", "FORM ACTION"),
    ("frame", "src", "FRAME SRC"),
    ("iframe", "src", "IFRAME SRC"),
    ("body", "background", "BODY BACKGROUND"),
    ("script", "src", "SCRIPT SRC"),
    ("embed", "src", "EMBED SRC"),
];

/// Extract every link from a page.
///
/// # Examples
///
/// ```
/// use weblint_site::{extract_links, LinkKind};
///
/// let links = extract_links("<A HREF=\"a.html\">x</A> <IMG SRC=\"http://h/i.gif\">");
/// assert_eq!(links.len(), 2);
/// assert_eq!(links[0].kind, LinkKind::Local);
/// assert_eq!(links[1].kind, LinkKind::External);
/// ```
pub fn extract_links(src: &str) -> Vec<Link> {
    let mut out = Vec::new();
    for token in Tokenizer::new(src) {
        let TokenKind::StartTag(tag) = &token.kind else {
            continue;
        };
        let name_lc = tag.name_lc();
        for (element, attr_name, label) in LINK_ATTRS {
            if name_lc != *element {
                continue;
            }
            let Some(attr) = tag.attr(attr_name) else {
                continue;
            };
            let href = attr.value_raw().trim();
            if href.is_empty() {
                continue;
            }
            out.push(Link {
                href: href.to_string(),
                kind: classify(href),
                line: token.span.start.line,
                source: label,
            });
        }
    }
    out
}

/// The named anchors a page defines — `<A NAME="x">` and (HTML 4.0)
/// any element's `ID` attribute. Used to validate fragment links.
pub fn anchor_names(src: &str) -> std::collections::HashSet<String> {
    let mut names = std::collections::HashSet::new();
    for token in Tokenizer::new(src) {
        let TokenKind::StartTag(tag) = &token.kind else {
            continue;
        };
        if tag.name_lc() == "a" {
            if let Some(attr) = tag.attr("name") {
                let v = attr.value_raw().trim();
                if !v.is_empty() {
                    names.insert(v.to_string());
                }
            }
        }
        if let Some(attr) = tag.attr("id") {
            let v = attr.value_raw().trim();
            if !v.is_empty() {
                names.insert(v.to_string());
            }
        }
    }
    names
}

/// The `#fragment` part of a reference, if any (and non-empty).
pub fn fragment_of(href: &str) -> Option<&str> {
    let (_, fragment) = href.split_once('#')?;
    let end = fragment.find('?').unwrap_or(fragment.len());
    let fragment = &fragment[..end];
    if fragment.is_empty() {
        None
    } else {
        Some(fragment)
    }
}

/// Classify one reference.
pub fn classify(href: &str) -> LinkKind {
    if href.starts_with('#') {
        return LinkKind::Fragment;
    }
    match crate::url::Url::parse(href) {
        Some(url) if url.scheme == "mailto" => LinkKind::Mailto,
        Some(_) => LinkKind::External,
        None => LinkKind::Local,
    }
}

/// Resolve a local reference found on `page` (a site-relative path like
/// `dir/page.html`) to a site-relative target path.
///
/// Query and fragment are stripped; a trailing `/` resolves to the
/// directory's `index.html`; `..` that escapes the site root yields `None`.
pub fn resolve_local(page: &str, href: &str) -> Option<String> {
    let end = href.find(['?', '#']).unwrap_or(href.len());
    let href = &href[..end];
    if href.is_empty() {
        return Some(page.to_string());
    }
    let joined = if let Some(rooted) = href.strip_prefix('/') {
        format!("/{rooted}")
    } else {
        let dir = match page.rfind('/') {
            Some(i) => &page[..=i],
            None => "",
        };
        format!("/{dir}{href}")
    };
    // Count how far `..` would climb: normalize clamps, so detect escape by
    // rebuilding and comparing depth.
    if escapes_root(&joined) {
        return None;
    }
    let mut normalized = normalize_path(&joined);
    if normalized.ends_with('/') {
        normalized.push_str("index.html");
    }
    Some(normalized.trim_start_matches('/').to_string())
}

/// Whether a rooted path's `..` segments climb above `/`.
fn escapes_root(path: &str) -> bool {
    let mut depth: i32 = 0;
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                depth -= 1;
                if depth < 0 {
                    return true;
                }
            }
            _ => depth += 1,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_from_all_carriers() {
        let page = r#"
            <A HREF="a.html">a</A>
            <IMG SRC="i.gif" ALT="x">
            <FORM ACTION="/cgi-bin/go"><INPUT TYPE="submit"></FORM>
            <LINK HREF="style.css" REL="stylesheet">
            <BODY BACKGROUND="bg.gif">
        "#;
        let sources: Vec<_> = extract_links(page).iter().map(|l| l.source).collect();
        assert_eq!(
            sources,
            [
                "A HREF",
                "IMG SRC",
                "FORM ACTION",
                "LINK HREF",
                "BODY BACKGROUND"
            ]
        );
    }

    #[test]
    fn classification() {
        assert_eq!(classify("a.html"), LinkKind::Local);
        assert_eq!(classify("/rooted/x.html"), LinkKind::Local);
        assert_eq!(classify("http://example.org/"), LinkKind::External);
        assert_eq!(classify("mailto:x@y"), LinkKind::Mailto);
        assert_eq!(classify("#top"), LinkKind::Fragment);
    }

    #[test]
    fn line_numbers_tracked() {
        let links = extract_links("<P>x</P>\n<A HREF=\"a.html\">a</A>");
        assert_eq!(links[0].line, 2);
    }

    #[test]
    fn resolve_relative() {
        assert_eq!(resolve_local("index.html", "a.html"), Some("a.html".into()));
        assert_eq!(
            resolve_local("dir/page.html", "other.html"),
            Some("dir/other.html".into())
        );
        assert_eq!(
            resolve_local("dir/page.html", "../top.html"),
            Some("top.html".into())
        );
        assert_eq!(
            resolve_local("dir/page.html", "/rooted.html"),
            Some("rooted.html".into())
        );
    }

    #[test]
    fn resolve_directory_links_get_index() {
        assert_eq!(
            resolve_local("index.html", "docs/"),
            Some("docs/index.html".into())
        );
    }

    #[test]
    fn resolve_strips_query_and_fragment() {
        assert_eq!(
            resolve_local("index.html", "a.html#sec?x=1"),
            Some("a.html".into())
        );
        assert_eq!(resolve_local("a/b.html", ""), Some("a/b.html".into()));
    }

    #[test]
    fn resolve_escaping_root_is_none() {
        assert_eq!(resolve_local("index.html", "../outside.html"), None);
        assert_eq!(resolve_local("d/p.html", "../../../x.html"), None);
    }

    #[test]
    fn anchor_names_collects_name_and_id() {
        let names =
            anchor_names("<A NAME=\"top\">x</A> <H2 ID=\"sec2\">s</H2> <A HREF=\"x\">no name</A>");
        assert!(names.contains("top"));
        assert!(names.contains("sec2"));
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn fragment_extraction() {
        assert_eq!(fragment_of("a.html#sec"), Some("sec"));
        assert_eq!(fragment_of("#top"), Some("top"));
        assert_eq!(fragment_of("a.html"), None);
        assert_eq!(fragment_of("a.html#"), None);
    }

    #[test]
    fn empty_hrefs_skipped() {
        assert!(extract_links("<A HREF=\"\">x</A>").is_empty());
        assert!(extract_links("<A NAME=\"anchor\">x</A>").is_empty());
    }
}
