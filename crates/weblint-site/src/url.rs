//! A deliberately small URL type — enough for 1998-era site checking.

use std::fmt;

/// A parsed absolute URL (`http://host/path`) or a relative reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// Scheme (`http`, `ftp`, `mailto`, …), lower-case. Empty for relative
    /// references.
    pub scheme: String,
    /// Host, lower-case. Empty for relative references and schemes without
    /// authority (mailto).
    pub host: String,
    /// Path, always beginning with `/` for absolute URLs. Query and
    /// fragment are stripped.
    pub path: String,
}

impl Url {
    /// Parse an absolute URL. Returns `None` when `s` has no scheme.
    pub fn parse(s: &str) -> Option<Url> {
        let (scheme, rest) = split_scheme(s)?;
        if let Some(rest) = rest.strip_prefix("//") {
            let (host, path) = match rest.find('/') {
                Some(i) => (&rest[..i], &rest[i..]),
                None => (rest, "/"),
            };
            Some(Url {
                scheme: scheme.to_ascii_lowercase(),
                host: host.to_ascii_lowercase(),
                path: strip_suffixes(path).to_string(),
            })
        } else {
            // mailto:user@host and friends: no authority.
            Some(Url {
                scheme: scheme.to_ascii_lowercase(),
                host: String::new(),
                path: strip_suffixes(rest).to_string(),
            })
        }
    }

    /// Resolve a reference against this URL, RFC-1808-style (simplified:
    /// same-scheme absolute paths and relative paths; queries and fragments
    /// are stripped).
    pub fn join(&self, reference: &str) -> Url {
        if let Some(url) = Url::parse(reference) {
            return url;
        }
        let reference = strip_suffixes(reference);
        let path = if reference.starts_with('/') {
            normalize_path(reference)
        } else {
            let base_dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            normalize_path(&format!("{base_dir}{reference}"))
        };
        Url {
            scheme: self.scheme.clone(),
            host: self.host.clone(),
            path,
        }
    }

    /// True when the two URLs are on the same host (and scheme).
    pub fn same_site(&self, other: &Url) -> bool {
        self.scheme == other.scheme && self.host == other.host
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.host.is_empty() {
            write!(f, "{}:{}", self.scheme, self.path)
        } else {
            write!(f, "{}://{}{}", self.scheme, self.host, self.path)
        }
    }
}

/// Split `scheme:rest`; the scheme must be alphabetic with `+-.` allowed.
fn split_scheme(s: &str) -> Option<(&str, &str)> {
    let colon = s.find(':')?;
    let scheme = &s[..colon];
    if scheme.is_empty() {
        return None;
    }
    let mut chars = scheme.chars();
    let first = chars.next()?;
    if !first.is_ascii_alphabetic() {
        return None;
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.')) {
        return None;
    }
    Some((scheme, &s[colon + 1..]))
}

/// Drop `?query` and `#fragment`.
fn strip_suffixes(s: &str) -> &str {
    let end = s.find(['?', '#']).unwrap_or(s.len());
    &s[..end]
}

/// Collapse `.` and `..` segments. `..` above the root is clamped.
pub(crate) fn normalize_path(path: &str) -> String {
    let trailing_slash = path.ends_with('/');
    let mut segments: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                segments.pop();
            }
            other => segments.push(other),
        }
    }
    let mut out = String::from("/");
    out.push_str(&segments.join("/"));
    if trailing_slash && out.len() > 1 {
        out.push('/');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_http() {
        let u = Url::parse("http://www.cre.canon.co.uk/~neilb/weblint/").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "www.cre.canon.co.uk");
        assert_eq!(u.path, "/~neilb/weblint/");
    }

    #[test]
    fn parse_normalizes_case_and_strips_query() {
        let u = Url::parse("HTTP://Example.ORG/a?b=c#d").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "example.org");
        assert_eq!(u.path, "/a");
    }

    #[test]
    fn parse_host_only() {
        let u = Url::parse("http://example.org").unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn parse_mailto() {
        let u = Url::parse("mailto:neilb@cre.canon.co.uk").unwrap();
        assert_eq!(u.scheme, "mailto");
        assert!(u.host.is_empty());
    }

    #[test]
    fn relative_reference_is_not_absolute() {
        assert_eq!(Url::parse("a.html"), None);
        assert_eq!(Url::parse("../x/y.html"), None);
        assert_eq!(Url::parse("/rooted.html"), None);
        assert_eq!(Url::parse(":nope"), None);
    }

    #[test]
    fn join_relative() {
        let base = Url::parse("http://h/a/b/c.html").unwrap();
        assert_eq!(base.join("d.html").path, "/a/b/d.html");
        assert_eq!(base.join("../d.html").path, "/a/d.html");
        assert_eq!(base.join("../../../d.html").path, "/d.html");
        assert_eq!(base.join("/rooted.html").path, "/rooted.html");
        assert_eq!(base.join("sub/").path, "/a/b/sub/");
        assert_eq!(base.join("x.html#frag").path, "/a/b/x.html");
    }

    #[test]
    fn join_absolute_replaces() {
        let base = Url::parse("http://h/a.html").unwrap();
        let joined = base.join("http://other/x.html");
        assert_eq!(joined.host, "other");
    }

    #[test]
    fn same_site() {
        let a = Url::parse("http://h/x").unwrap();
        let b = Url::parse("http://h/y").unwrap();
        let c = Url::parse("http://other/x").unwrap();
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
    }

    #[test]
    fn display_round_trip() {
        let u = Url::parse("http://h/a/b.html").unwrap();
        assert_eq!(u.to_string(), "http://h/a/b.html");
        let m = Url::parse("mailto:x@y").unwrap();
        assert_eq!(m.to_string(), "mailto:x@y");
    }

    #[test]
    fn normalize_edge_cases() {
        assert_eq!(normalize_path("/"), "/");
        assert_eq!(normalize_path("/a/./b"), "/a/b");
        assert_eq!(normalize_path("/a/../../b"), "/b");
        assert_eq!(normalize_path("/a/b/"), "/a/b/");
    }
}
