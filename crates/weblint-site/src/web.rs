//! An in-memory simulated web.
//!
//! The paper's robot and `check_url` ride on LWP and the live web; neither
//! is available or desirable in a reproduction, so this module provides the
//! closest synthetic equivalent (DESIGN.md, substitutions): named hosts
//! serving resources with statuses, content types, redirect chains and a
//! deterministic latency model. The robot exercises exactly the same code
//! path (fetch → parse → lint → extract links → enqueue); only the
//! transport is synthetic.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::url::Url;

/// Response status, reduced to what a 1998 link checker cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 301/302, with the Location target.
    Redirect(String),
    /// 404.
    NotFound,
    /// 5xx.
    ServerError,
    /// No response before the deadline (injected by fault decorators; the
    /// simulated web itself never stalls).
    TimedOut,
    /// Connection reset mid-request (likewise injected).
    Reset,
}

/// One hosted resource.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Response status.
    pub status: Status,
    /// MIME type (`text/html`, `image/gif`, …).
    pub content_type: String,
    /// Response body (empty for non-HTML).
    pub body: String,
}

impl Resource {
    /// An HTML page.
    pub fn html(body: impl Into<String>) -> Resource {
        Resource {
            status: Status::Ok,
            content_type: "text/html".to_string(),
            body: body.into(),
        }
    }

    /// A binary asset (body not modelled).
    pub fn asset(content_type: &str) -> Resource {
        Resource {
            status: Status::Ok,
            content_type: content_type.to_string(),
            body: String::new(),
        }
    }

    /// A redirect to `location`.
    pub fn redirect(location: impl Into<String>) -> Resource {
        Resource {
            status: Status::Redirect(location.into()),
            content_type: "text/html".to_string(),
            body: String::new(),
        }
    }
}

/// Aggregate transfer statistics, for the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WebStats {
    /// GET requests served (including 404s).
    pub gets: u64,
    /// HEAD requests served.
    pub heads: u64,
    /// Body bytes transferred by GETs.
    pub bytes: u64,
    /// Simulated wall-clock microseconds spent on the wire.
    pub simulated_us: u64,
}

/// Simulated round-trip time per request, in microseconds. Chosen to
/// resemble a 1998 intranet: ~20 ms RTT.
const RTT_US: u64 = 20_000;
/// Simulated transfer rate: bytes per microsecond (≈ 3 Mbit/s).
const BYTES_PER_US: u64 = 3;

/// The simulated web: a map from URL to resource, plus counters.
#[derive(Debug, Default)]
pub struct SimulatedWeb {
    resources: HashMap<String, Resource>,
    gets: Cell<u64>,
    heads: Cell<u64>,
    bytes: Cell<u64>,
    simulated_us: Cell<u64>,
}

impl SimulatedWeb {
    /// An empty web.
    pub fn new() -> SimulatedWeb {
        SimulatedWeb::default()
    }

    /// Host a resource at an absolute URL.
    pub fn add(&mut self, url: &str, resource: Resource) {
        let key = Self::key(url);
        self.resources.insert(key, resource);
    }

    /// Host an HTML page.
    pub fn add_page(&mut self, url: &str, html: impl Into<String>) {
        self.add(url, Resource::html(html));
    }

    /// Host a redirect.
    pub fn add_redirect(&mut self, from: &str, to: &str) {
        self.add(from, Resource::redirect(to));
    }

    /// Remove a resource (turning links at it dead).
    pub fn remove(&mut self, url: &str) {
        self.resources.remove(&Self::key(url));
    }

    /// Mount a generated site spec under `http://{host}/`.
    ///
    /// Every page lands at its site-relative path; referenced images are
    /// *not* mounted, matching the corpus generator's page-only output.
    pub fn mount_pages<'a>(
        &mut self,
        host: &str,
        pages: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) {
        for (path, html) in pages {
            self.add_page(&format!("http://{host}/{path}"), html);
        }
    }

    /// Number of hosted resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether nothing is hosted.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Serve a HEAD request: status and content type only.
    pub fn head(&self, url: &Url) -> (Status, String) {
        self.heads.set(self.heads.get() + 1);
        self.simulated_us.set(self.simulated_us.get() + RTT_US);
        match self.lookup(url) {
            Some(r) => (r.status.clone(), r.content_type.clone()),
            None => (Status::NotFound, String::new()),
        }
    }

    /// Serve a GET request.
    pub fn get(&self, url: &Url) -> (Status, String, String) {
        self.gets.set(self.gets.get() + 1);
        match self.lookup(url) {
            Some(r) => {
                let body_len = r.body.len() as u64;
                self.bytes.set(self.bytes.get() + body_len);
                self.simulated_us
                    .set(self.simulated_us.get() + RTT_US + body_len / BYTES_PER_US);
                (r.status.clone(), r.content_type.clone(), r.body.clone())
            }
            None => {
                self.simulated_us.set(self.simulated_us.get() + RTT_US);
                (Status::NotFound, String::new(), String::new())
            }
        }
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> WebStats {
        WebStats {
            gets: self.gets.get(),
            heads: self.heads.get(),
            bytes: self.bytes.get(),
            simulated_us: self.simulated_us.get(),
        }
    }

    fn lookup(&self, url: &Url) -> Option<&Resource> {
        self.resources.get(&url.to_string())
    }

    fn key(url: &str) -> String {
        Url::parse(url)
            .map(|u| u.to_string())
            .unwrap_or_else(|| url.to_string())
    }
}

/// A thread-safe handle to a [`SimulatedWeb`].
///
/// [`SimulatedWeb`] keeps its transfer counters in `Cell`s and so cannot be
/// shared across threads directly; servers whose connection threads resolve
/// URLs concurrently (the httpd front end) wrap it here. Cloning the handle
/// shares the same web.
#[derive(Debug, Clone, Default)]
pub struct SharedWeb {
    inner: Arc<Mutex<SimulatedWeb>>,
}

impl SharedWeb {
    /// Wrap a populated web for sharing.
    pub fn new(web: SimulatedWeb) -> SharedWeb {
        SharedWeb {
            inner: Arc::new(Mutex::new(web)),
        }
    }

    /// Run `f` with exclusive access to the underlying web (to add or
    /// remove resources after the handle has been shared).
    pub fn with<R>(&self, f: impl FnOnce(&mut SimulatedWeb) -> R) -> R {
        f(&mut self.inner.lock().unwrap())
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> WebStats {
        self.inner.lock().unwrap().stats()
    }
}

impl crate::robot::Fetcher for SharedWeb {
    fn head(&self, url: &Url) -> (Status, String) {
        self.inner.lock().unwrap().head(url)
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        self.inner.lock().unwrap().get(url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn get_and_head() {
        let mut web = SimulatedWeb::new();
        web.add_page("http://h/index.html", "<P>hello</P>");
        web.add("http://h/logo.gif", Resource::asset("image/gif"));
        let (status, ct, body) = web.get(&url("http://h/index.html"));
        assert_eq!(status, Status::Ok);
        assert_eq!(ct, "text/html");
        assert!(body.contains("hello"));
        let (status, ct) = web.head(&url("http://h/logo.gif"));
        assert_eq!(status, Status::Ok);
        assert_eq!(ct, "image/gif");
    }

    #[test]
    fn missing_is_404() {
        let web = SimulatedWeb::new();
        let (status, _, _) = web.get(&url("http://h/none.html"));
        assert_eq!(status, Status::NotFound);
        assert!(web.is_empty());
    }

    #[test]
    fn redirects_carry_location() {
        let mut web = SimulatedWeb::new();
        web.add_redirect("http://h/old.html", "http://h/new.html");
        let (status, _) = web.head(&url("http://h/old.html"));
        assert_eq!(status, Status::Redirect("http://h/new.html".to_string()));
    }

    #[test]
    fn keys_normalize_case() {
        let mut web = SimulatedWeb::new();
        web.add_page("HTTP://Host/x.html", "<P>x");
        let (status, _, _) = web.get(&url("http://host/x.html"));
        assert_eq!(status, Status::Ok);
    }

    #[test]
    fn remove_makes_links_dead() {
        let mut web = SimulatedWeb::new();
        web.add_page("http://h/a.html", "x");
        assert_eq!(web.len(), 1);
        web.remove("http://h/a.html");
        let (status, _) = web.head(&url("http://h/a.html"));
        assert_eq!(status, Status::NotFound);
    }

    #[test]
    fn stats_accumulate() {
        let mut web = SimulatedWeb::new();
        web.add_page("http://h/a.html", "x".repeat(3000));
        web.get(&url("http://h/a.html"));
        web.head(&url("http://h/a.html"));
        let stats = web.stats();
        assert_eq!(stats.gets, 1);
        assert_eq!(stats.heads, 1);
        assert_eq!(stats.bytes, 3000);
        // Two RTTs plus 3000 bytes at 3 bytes/us.
        assert_eq!(stats.simulated_us, 2 * 20_000 + 1000);
    }

    #[test]
    fn mount_pages_hosts_under_host() {
        let mut web = SimulatedWeb::new();
        web.mount_pages("site", [("index.html", "<P>i"), ("d/p.html", "<P>p")]);
        assert_eq!(web.len(), 2);
        let (status, _, _) = web.get(&url("http://site/d/p.html"));
        assert_eq!(status, Status::Ok);
    }
}
