//! The `-R` site checker.

use std::collections::{HashMap, HashSet};

use weblint_core::{Category, Diagnostic, LintConfig, Summary, Weblint};
use weblint_service::{JobHandle, LintService};

use crate::links::{anchor_names, extract_links, fragment_of, resolve_local, LinkKind};
use crate::store::PageStore;

/// Result of checking a whole site.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// Per-page lint results, in page order. Pages with no messages are
    /// included with an empty list so callers can count pages checked.
    pub pages: Vec<(String, Vec<Diagnostic>)>,
    /// Site-level diagnostics (`bad-link`, `orphan-page`,
    /// `directory-index`), keyed by the page or directory they concern.
    pub site_diagnostics: Vec<(String, Diagnostic)>,
}

impl SiteReport {
    /// Total pages checked.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Counts over every message in the report.
    pub fn summary(&self) -> Summary {
        let mut all: Vec<Diagnostic> = Vec::new();
        for (_, diags) in &self.pages {
            all.extend(diags.iter().cloned());
        }
        all.extend(self.site_diagnostics.iter().map(|(_, d)| d.clone()));
        Summary::of(&all)
    }
}

/// Weblint's `-R` mode over a [`PageStore`].
#[derive(Debug, Clone)]
pub struct SiteChecker {
    config: LintConfig,
    weblint: Weblint,
}

impl SiteChecker {
    /// A site checker with the given per-page configuration.
    pub fn new(config: LintConfig) -> SiteChecker {
        SiteChecker {
            weblint: Weblint::with_config(config.clone()),
            config,
        }
    }

    /// Check every page plus the site-level properties.
    pub fn check(&self, store: &dyn PageStore) -> SiteReport {
        self.check_impl(store, None)
    }

    /// [`SiteChecker::check`], but with per-page linting fanned out over a
    /// [`LintService`]. Pages are submitted up front so the workers lint
    /// while this thread walks links, anchors, and directories; results
    /// are collected in page order, so the report is identical to the
    /// sequential one.
    pub fn check_with(&self, store: &dyn PageStore, service: &LintService) -> SiteReport {
        self.check_impl(store, Some(service))
    }

    /// The per-page configuration after applying in-page pragmas, exactly
    /// as in single-file mode. Falls back to the checker's configuration
    /// when a pragma fails to apply.
    fn page_config(&self, html: &str) -> Option<LintConfig> {
        match weblint_config::extract_pragmas(html) {
            Ok(directives) if !directives.is_empty() => {
                let mut page_config = self.config.clone();
                let ok = directives
                    .iter()
                    .all(|d| weblint_config::apply_directive(d, &mut page_config).is_ok());
                ok.then_some(page_config)
            }
            _ => None,
        }
    }

    fn check_impl(&self, store: &dyn PageStore, service: Option<&LintService>) -> SiteReport {
        let pages = store.pages();
        // Read every page first; with a service attached, submit each one
        // immediately so linting overlaps the link analysis below.
        let mut docs: Vec<(String, String)> = Vec::with_capacity(pages.len());
        let mut handles: Vec<Option<JobHandle>> = Vec::with_capacity(pages.len());
        for page in &pages {
            let Some(html) = store.read(page) else {
                continue;
            };
            if let Some(service) = service {
                let config = self
                    .page_config(&html)
                    .unwrap_or_else(|| self.config.clone());
                handles.push(service.submit_with(html.clone(), Some(config)).ok());
            }
            docs.push((page.clone(), html));
        }

        let mut report = SiteReport {
            pages: Vec::with_capacity(docs.len()),
            site_diagnostics: Vec::new(),
        };
        let mut inbound: HashSet<String> = HashSet::new();
        // Lazily-computed anchor sets, shared across all fragment checks.
        let mut anchors: HashMap<String, HashSet<String>> = HashMap::new();
        let mut anchors_of = |path: &str, html: Option<&str>| -> HashSet<String> {
            if let Some(cached) = anchors.get(path) {
                return cached.clone();
            }
            let computed = match html {
                Some(html) => anchor_names(html),
                None => store
                    .read(path)
                    .map(|h| anchor_names(&h))
                    .unwrap_or_default(),
            };
            anchors.insert(path.to_string(), computed.clone());
            computed
        };

        for (page, html) in &docs {
            // Link validation: every local link must resolve to something
            // that exists in the store.
            for link in extract_links(html) {
                // Same-page fragments must name an anchor on this page.
                if link.kind == LinkKind::Fragment {
                    if let Some(fragment) = fragment_of(&link.href) {
                        if self.config.is_enabled("bad-link")
                            && !anchors_of(page, Some(html)).contains(fragment)
                        {
                            report.site_diagnostics.push((
                                page.clone(),
                                Diagnostic::new(
                                    "bad-link",
                                    Category::Error,
                                    link.line,
                                    1,
                                    format!(
                                        "no anchor \"{fragment}\" on this page \
                                         (target of {} \"{}\")",
                                        link.source, link.href
                                    ),
                                ),
                            ));
                        }
                    }
                    continue;
                }
                if link.kind != LinkKind::Local {
                    continue;
                }
                match resolve_local(page, &link.href) {
                    Some(target) => {
                        inbound.insert(target.clone());
                        // Cross-page fragment: the target page must define
                        // the anchor.
                        if store.exists(&target) && self.config.is_enabled("bad-link") {
                            if let Some(fragment) = fragment_of(&link.href) {
                                if crate::store::is_html_path(&target)
                                    && !anchors_of(&target, None).contains(fragment)
                                {
                                    report.site_diagnostics.push((
                                        page.clone(),
                                        Diagnostic::new(
                                            "bad-link",
                                            Category::Error,
                                            link.line,
                                            1,
                                            format!(
                                                "no anchor \"{fragment}\" in {target} \
                                                 (target of {} \"{}\")",
                                                link.source, link.href
                                            ),
                                        ),
                                    ));
                                }
                            }
                        }
                        if !store.exists(&target) && self.config.is_enabled("bad-link") {
                            report.site_diagnostics.push((
                                page.clone(),
                                Diagnostic::new(
                                    "bad-link",
                                    Category::Error,
                                    link.line,
                                    1,
                                    format!(
                                        "target of {} \"{}\" does not exist ({})",
                                        link.source, link.href, target
                                    ),
                                ),
                            ));
                        }
                    }
                    None => {
                        if self.config.is_enabled("bad-link") {
                            report.site_diagnostics.push((
                                page.clone(),
                                Diagnostic::new(
                                    "bad-link",
                                    Category::Error,
                                    link.line,
                                    1,
                                    format!(
                                        "{} \"{}\" points outside the site",
                                        link.source, link.href
                                    ),
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // Per-page lint results, in page order: collected from the service
        // handles when fanned out, computed inline otherwise. The shared
        // checker serves pragma-free pages so the HTML tables are only
        // rebuilt when needed.
        let mut handles = handles.into_iter();
        for (page, html) in &docs {
            let diags = match handles.next().flatten() {
                Some(handle) => handle.wait().unwrap_or_default(),
                None => match self.page_config(html) {
                    Some(config) => Weblint::with_config(config).check_string(html),
                    None => self.weblint.check_string(html),
                },
            };
            report.pages.push((page.clone(), diags));
        }

        // Orphan pages: not the target of any link. Index files are the
        // entry points users type, so they are exempt.
        if self.config.is_enabled("orphan-page") {
            for page in &pages {
                let is_index = page == "index.html"
                    || page.ends_with("/index.html")
                    || page == "index.htm"
                    || page.ends_with("/index.htm");
                if !is_index && !inbound.contains(page) {
                    report.site_diagnostics.push((
                        page.clone(),
                        Diagnostic::new(
                            "orphan-page",
                            Category::Warning,
                            1,
                            1,
                            format!("{page} is not linked to by any other page checked (orphan)"),
                        ),
                    ));
                }
            }
        }

        // Directory index files.
        if self.config.is_enabled("directory-index") {
            for dir in store.directories() {
                let candidates = if dir.is_empty() {
                    ["index.html".to_string(), "index.htm".to_string()]
                } else {
                    [format!("{dir}/index.html"), format!("{dir}/index.htm")]
                };
                if !candidates.iter().any(|c| store.exists(c)) {
                    let shown = if dir.is_empty() { "." } else { dir.as_str() };
                    report.site_diagnostics.push((
                        dir.clone(),
                        Diagnostic::new(
                            "directory-index",
                            Category::Warning,
                            1,
                            1,
                            format!("directory {shown} has no index file"),
                        ),
                    ));
                }
            }
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn page(body: &str) -> String {
        format!(
            "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n\
             <HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>{body}</BODY></HTML>\n"
        )
    }

    fn checker() -> SiteChecker {
        SiteChecker::new(LintConfig::default())
    }

    fn site_ids(report: &SiteReport) -> Vec<&'static str> {
        report.site_diagnostics.iter().map(|(_, d)| d.id).collect()
    }

    #[test]
    fn clean_linked_site_is_clean() {
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"a.html\">a page</A></P>"));
        store.insert("a.html", page("<P><A HREF=\"index.html\">back</A></P>"));
        let report = checker().check(&store);
        assert_eq!(report.page_count(), 2);
        assert!(report.summary().is_clean(), "{report:?}");
    }

    #[test]
    fn dead_link_reported_with_line() {
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"gone.html\">x</A></P>"));
        let report = checker().check(&store);
        assert_eq!(site_ids(&report), ["bad-link"]);
        let (_, d) = &report.site_diagnostics[0];
        assert!(d.message.contains("gone.html"));
        assert_eq!(d.line, 2); // body is on line 2 of the template
    }

    #[test]
    fn link_outside_site_reported() {
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"../up.html\">x</A></P>"));
        let report = checker().check(&store);
        assert_eq!(site_ids(&report), ["bad-link"]);
    }

    #[test]
    fn image_and_asset_links_checked() {
        let mut store = MemStore::new();
        store.insert(
            "index.html",
            page("<P><IMG SRC=\"logo.gif\" ALT=\"l\" WIDTH=\"1\" HEIGHT=\"1\"></P>"),
        );
        let report = checker().check(&store);
        assert_eq!(site_ids(&report), ["bad-link"]);
        store.insert("logo.gif", "GIF89a");
        let report = checker().check(&store);
        assert!(site_ids(&report).is_empty());
    }

    #[test]
    fn external_links_ignored_by_r_mode() {
        let mut store = MemStore::new();
        store.insert(
            "index.html",
            page("<P><A HREF=\"http://elsewhere/x.html\">x</A></P>"),
        );
        assert!(site_ids(&checker().check(&store)).is_empty());
    }

    #[test]
    fn orphan_detected_and_index_exempt() {
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"a.html\">a</A></P>"));
        store.insert("a.html", page("<P>linked</P>"));
        store.insert("lonely.html", page("<P>nobody links here</P>"));
        let report = checker().check(&store);
        let orphans: Vec<_> = report
            .site_diagnostics
            .iter()
            .filter(|(_, d)| d.id == "orphan-page")
            .map(|(p, _)| p.as_str())
            .collect();
        assert_eq!(orphans, ["lonely.html"]);
    }

    #[test]
    fn directory_index_check() {
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"docs/a.html\">a</A></P>"));
        store.insert("docs/a.html", page("<P>doc</P>"));
        let report = checker().check(&store);
        let dirs: Vec<_> = report
            .site_diagnostics
            .iter()
            .filter(|(_, d)| d.id == "directory-index")
            .map(|(p, _)| p.as_str())
            .collect();
        assert_eq!(dirs, ["docs"]);
    }

    #[test]
    fn site_checks_respect_config() {
        let mut config = LintConfig::default();
        config.disable("bad-link").unwrap();
        config.disable("orphan-page").unwrap();
        config.disable("directory-index").unwrap();
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"gone.html\">x</A></P>"));
        store.insert("lonely.html", page("<P>alone</P>"));
        store.insert("docs/a.html", page("<P>doc</P>"));
        let report = SiteChecker::new(config).check(&store);
        assert!(report.site_diagnostics.is_empty());
    }

    #[test]
    fn same_page_fragment_must_exist() {
        let mut store = MemStore::new();
        store.insert(
            "index.html",
            page(
                "<P><A HREF=\"#missing\">down</A><A NAME=\"present\">x</A>\
                  <A HREF=\"#present\">ok</A></P>",
            ),
        );
        let report = checker().check(&store);
        assert_eq!(site_ids(&report), ["bad-link"]);
        assert!(report.site_diagnostics[0].1.message.contains("missing"));
    }

    #[test]
    fn cross_page_fragment_must_exist() {
        let mut store = MemStore::new();
        store.insert(
            "index.html",
            page(
                "<P><A HREF=\"a.html#sec\">good</A> \
                  <A HREF=\"a.html#nope\">bad</A></P>",
            ),
        );
        store.insert("a.html", page("<H2 ID=\"sec\">section</H2>"));
        let report = checker().check(&store);
        assert_eq!(site_ids(&report), ["bad-link"]);
        let (_, d) = &report.site_diagnostics[0];
        assert!(d.message.contains("nope"), "{}", d.message);
        assert!(d.message.contains("a.html"), "{}", d.message);
    }

    #[test]
    fn fragment_to_missing_page_reports_dead_target_only() {
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"gone.html#x\">x</A></P>"));
        let report = checker().check(&store);
        // One message (the missing page), not two.
        assert_eq!(site_ids(&report), ["bad-link"]);
        assert!(report.site_diagnostics[0]
            .1
            .message
            .contains("does not exist"));
    }

    #[test]
    fn page_pragmas_apply_in_site_mode() {
        let mut store = MemStore::new();
        store.insert(
            "index.html",
            format!(
                "<!-- weblint: disable heading-mismatch -->\n{}",
                page("<H1>x</H2><P><A HREF=\"index.html\">self</A></P>")
            ),
        );
        let report = checker().check(&store);
        let (_, diags) = &report.pages[0];
        assert_eq!(diags, &vec![]);
    }

    #[test]
    fn check_with_service_matches_sequential() {
        let mut store = MemStore::new();
        store.insert(
            "index.html",
            page("<P><A HREF=\"a.html\">a</A> <A HREF=\"gone.html\">x</A></P>"),
        );
        store.insert(
            "a.html",
            format!(
                "<!-- weblint: disable heading-mismatch -->\n{}",
                page("<H1>x</H2>")
            ),
        );
        store.insert("lonely.html", page("<H2>bad</H3>"));
        let checker = checker();
        let sequential = checker.check(&store);
        let service = LintService::with_config(LintConfig::default());
        let fanned = checker.check_with(&store, &service);
        assert_eq!(fanned.pages, sequential.pages);
        assert_eq!(fanned.site_diagnostics, sequential.site_diagnostics);
        assert!(service.metrics().jobs_completed >= 3);
    }

    #[test]
    fn per_page_lint_results_included() {
        let mut store = MemStore::new();
        store.insert("index.html", page("<H1>bad heading</H2>"));
        let report = checker().check(&store);
        let (_, diags) = &report.pages[0];
        assert!(diags.iter().any(|d| d.id == "heading-mismatch"));
        assert_eq!(report.summary().errors, 1);
    }
}
