//! Page stores: where a site's pages come from.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A source of site pages, keyed by site-relative path (`dir/page.html`).
///
/// Both the real filesystem ([`DirStore`]) and in-memory sites
/// ([`MemStore`], fed by the corpus generator) implement this, so the
/// `-R` checker is independent of where pages live.
pub trait PageStore {
    /// All page paths, sorted.
    fn pages(&self) -> Vec<String>;
    /// Read one page's HTML.
    fn read(&self, path: &str) -> Option<String>;
    /// Whether any file (page or asset) exists at `path`.
    fn exists(&self, path: &str) -> bool;
    /// All directories containing at least one page, sorted; `""` is the
    /// root.
    fn directories(&self) -> Vec<String> {
        let mut dirs: Vec<String> = self
            .pages()
            .iter()
            .map(|p| match p.rfind('/') {
                Some(i) => p[..i].to_string(),
                None => String::new(),
            })
            .collect();
        dirs.sort();
        dirs.dedup();
        dirs
    }
}

/// An in-memory page store.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    files: BTreeMap<String, String>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Add or replace a file.
    pub fn insert(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(path.into(), contents.into());
    }

    /// Number of files held.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl PageStore for MemStore {
    fn pages(&self) -> Vec<String> {
        self.files
            .keys()
            .filter(|p| is_html_path(p))
            .cloned()
            .collect()
    }

    fn read(&self, path: &str) -> Option<String> {
        self.files.get(path).cloned()
    }

    fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }
}

/// A filesystem-backed store rooted at a directory — what `weblint -R dir`
/// operates on.
#[derive(Debug, Clone)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Open a store over `root`. Fails if `root` is not a directory.
    pub fn open(root: impl AsRef<Path>) -> io::Result<DirStore> {
        let root = root.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} is not a directory", root.display()),
            ));
        }
        Ok(DirStore { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn walk(&self, dir: &Path, out: &mut Vec<String>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                self.walk(&path, out);
            } else if let Ok(rel) = path.strip_prefix(&self.root) {
                let rel = rel.to_string_lossy().replace('\\', "/");
                if is_html_path(&rel) {
                    out.push(rel);
                }
            }
        }
    }
}

impl PageStore for DirStore {
    fn pages(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&self.root.clone(), &mut out);
        out.sort();
        out
    }

    fn read(&self, path: &str) -> Option<String> {
        let bytes = fs::read(self.root.join(path)).ok()?;
        Some(String::from_utf8_lossy(&bytes).into_owned())
    }

    fn exists(&self, path: &str) -> bool {
        self.root.join(path).exists()
    }
}

/// Is this path an HTML page (by extension)?
pub(crate) fn is_html_path(path: &str) -> bool {
    let lower = path.to_ascii_lowercase();
    lower.ends_with(".html") || lower.ends_with(".htm") || lower.ends_with(".shtml")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_basics() {
        let mut s = MemStore::new();
        assert!(s.is_empty());
        s.insert("index.html", "<P>hi");
        s.insert("logo.gif", "GIF89a");
        s.insert("docs/a.htm", "<P>a");
        assert_eq!(s.len(), 3);
        assert_eq!(s.pages(), ["docs/a.htm", "index.html"]);
        assert!(s.exists("logo.gif"));
        assert!(!s.exists("missing.gif"));
        assert_eq!(s.read("index.html").unwrap(), "<P>hi");
    }

    #[test]
    fn directories_derived_from_pages() {
        let mut s = MemStore::new();
        s.insert("index.html", "");
        s.insert("a/x.html", "");
        s.insert("a/b/y.html", "");
        assert_eq!(s.directories(), ["", "a", "a/b"]);
    }

    #[test]
    fn html_path_detection() {
        assert!(is_html_path("x.html"));
        assert!(is_html_path("X.HTM"));
        assert!(is_html_path("a/b.shtml"));
        assert!(!is_html_path("x.gif"));
        assert!(!is_html_path("html"));
    }

    #[test]
    fn dirstore_walks_recursively() {
        let root = std::env::temp_dir().join("weblint-dirstore-test");
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("sub")).unwrap();
        fs::write(root.join("index.html"), "<P>root").unwrap();
        fs::write(root.join("sub/page.html"), "<P>sub").unwrap();
        fs::write(root.join("sub/pic.gif"), "GIF").unwrap();
        let store = DirStore::open(&root).unwrap();
        assert_eq!(store.pages(), ["index.html", "sub/page.html"]);
        assert!(store.exists("sub/pic.gif"));
        assert_eq!(store.read("sub/page.html").unwrap(), "<P>sub");
        assert!(store.read("nope.html").is_none());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dirstore_rejects_files() {
        assert!(DirStore::open("/no/such/dir").is_err());
    }
}
