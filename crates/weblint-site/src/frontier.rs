//! The sharded crawl frontier: host-hash partitioning and per-shard
//! pending/visited bookkeeping for [`crate::Robot::crawl_sharded`].
//!
//! The ROADMAP's "millions of pages" crawl cannot live in one scheduler's
//! queue. This module partitions the frontier by **host hash**: every URL
//! belongs to exactly one shard ([`shard_of`]), all requests to a host are
//! issued by its owner shard's fetch stack (so AIMD limits, breakers and
//! hedge budgets stay per-shard truths), and links that cross shards
//! travel as [`Candidate`] records through the coordinator.
//!
//! Determinism discipline (the E15 contract, extended to N schedulers):
//! the crawl proceeds in *waves*. Each wave, the coordinator extracts each
//! shard's pending candidates in `(depth, url)` order, the shard processes
//! them in that order on its own scheduler thread, and discovered links
//! only enter the next wave after a coordinator barrier. No decision ever
//! depends on cross-shard timing, so the merged report is byte-identical
//! run to run — and byte-identical across shard deaths and process
//! restarts, which is what makes the checkpoint layer's replay exact.

use std::collections::{BTreeMap, BTreeSet};

use weblint_service::fnv1a;

use crate::url::Url;

/// The shard that owns `host`: a stable hash partition, independent of
/// discovery order, so the same crawl always shards the same way.
pub fn shard_of(host: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (fnv1a(host.as_bytes()) % shards as u64) as usize
}

/// One frontier entry: a URL waiting to be crawled, plus where it was
/// discovered (for dead-link attribution). Seeds carry empty `via`/`href`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The URL to fetch.
    pub url: Url,
    /// Click depth this candidate would be crawled at.
    pub depth: usize,
    /// URL of the page the link appeared on (`""` for a seed).
    pub via: String,
    /// The reference as written on that page (`""` for a seed).
    pub href: String,
}

impl Candidate {
    /// A crawl seed at depth 0.
    pub fn seed(url: Url) -> Candidate {
        Candidate {
            url,
            depth: 0,
            via: String::new(),
            href: String::new(),
        }
    }

    /// Tie-break key when the same URL is discovered more than once: the
    /// smallest `(depth, via, href)` wins, independent of arrival order.
    fn rank(&self) -> (usize, &str, &str) {
        (self.depth, self.via.as_str(), self.href.as_str())
    }
}

/// One shard's frontier state: the URLs it has ever been assigned
/// (visited) and the candidates pending for the next wave.
#[derive(Debug, Clone, Default)]
pub struct ShardFrontier {
    visited: BTreeSet<String>,
    next: BTreeMap<String, Candidate>,
}

impl ShardFrontier {
    /// An empty frontier.
    pub fn new() -> ShardFrontier {
        ShardFrontier::default()
    }

    /// Rebuild a frontier from checkpointed state.
    pub fn restore(visited: Vec<String>, pending: Vec<Candidate>) -> ShardFrontier {
        let mut f = ShardFrontier {
            visited: visited.into_iter().collect(),
            next: BTreeMap::new(),
        };
        for c in pending {
            f.admit(c);
        }
        f
    }

    /// Offer a discovered candidate. Deduplicates against everything this
    /// shard has already been assigned and against better-ranked pending
    /// discoveries of the same URL. Returns whether the candidate is now
    /// pending.
    pub fn admit(&mut self, candidate: Candidate) -> bool {
        let key = candidate.url.to_string();
        if self.visited.contains(&key) {
            return false;
        }
        match self.next.get_mut(&key) {
            Some(existing) => {
                if candidate.rank() < existing.rank() {
                    *existing = candidate;
                }
            }
            None => {
                self.next.insert(key, candidate);
            }
        }
        true
    }

    /// Number of candidates pending for the next wave.
    pub fn pending(&self) -> usize {
        self.next.len()
    }

    /// Whether the URL has ever entered this frontier (pending now or
    /// already assigned).
    pub fn has_seen(&self, url: &str) -> bool {
        self.visited.contains(url) || self.next.contains_key(url)
    }

    /// Drop a pending candidate without marking it visited (used when a
    /// probe-only URL is promoted to a full crawl candidate).
    pub fn remove_pending(&mut self, url: &str) {
        self.next.remove(url);
    }

    /// `(depth, url)` keys of every pending candidate, for the
    /// coordinator's global budget cut.
    pub fn pending_keys(&self) -> impl Iterator<Item = (usize, &str)> {
        self.next.iter().map(|(k, c)| (c.depth, k.as_str()))
    }

    /// Remove the given URLs from the pending set, mark them visited, and
    /// return their candidates sorted by `(depth, url)` — the order the
    /// shard will process them in.
    pub fn extract(&mut self, urls: &[String]) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = urls
            .iter()
            .filter_map(|u| {
                let c = self.next.remove(u)?;
                self.visited.insert(u.clone());
                Some(c)
            })
            .collect();
        out.sort_by_key(|a| (a.depth, a.url.to_string()));
        out
    }

    /// The visited set, sorted, for checkpointing.
    pub fn visited(&self) -> Vec<String> {
        self.visited.iter().cloned().collect()
    }

    /// The pending candidates, sorted by URL, for checkpointing.
    pub fn pending_candidates(&self) -> Vec<Candidate> {
        self.next.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn cand(u: &str, depth: usize, via: &str, href: &str) -> Candidate {
        Candidate {
            url: url(u),
            depth,
            via: via.to_string(),
            href: href.to_string(),
        }
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for host in ["a", "b", "mega0", "mega7", "site"] {
                let s = shard_of(host, shards);
                assert!(s < shards, "{host} -> {s} of {shards}");
                assert_eq!(s, shard_of(host, shards), "stable");
            }
        }
        assert_eq!(shard_of("anything", 1), 0);
        // Multiple hosts actually spread across shards.
        let spread: BTreeSet<usize> = (0..16).map(|i| shard_of(&format!("mega{i}"), 4)).collect();
        assert!(spread.len() > 1, "{spread:?}");
    }

    #[test]
    fn admit_dedups_and_keeps_the_best_rank() {
        let mut f = ShardFrontier::new();
        assert!(f.admit(cand("http://h/p.html", 2, "http://h/b.html", "p.html")));
        // A later, shallower discovery replaces the pending candidate.
        f.admit(cand("http://h/p.html", 1, "http://h/a.html", "p.html"));
        // A deeper one does not.
        f.admit(cand("http://h/p.html", 3, "http://h/c.html", "p.html"));
        assert_eq!(f.pending(), 1);
        let got = f.extract(&["http://h/p.html".to_string()]);
        assert_eq!(got[0].depth, 1);
        assert_eq!(got[0].via, "http://h/a.html");
        // Once assigned, the URL never re-enters the frontier.
        assert!(!f.admit(cand("http://h/p.html", 0, "", "")));
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn extract_orders_by_depth_then_url() {
        let mut f = ShardFrontier::new();
        f.admit(cand("http://h/z.html", 1, "", ""));
        f.admit(cand("http://h/a.html", 2, "", ""));
        f.admit(cand("http://h/m.html", 1, "", ""));
        let urls: Vec<String> = f
            .pending_candidates()
            .iter()
            .map(|c| c.url.to_string())
            .collect();
        let got = f.extract(&urls);
        let order: Vec<String> = got.iter().map(|c| c.url.to_string()).collect();
        assert_eq!(
            order,
            vec!["http://h/m.html", "http://h/z.html", "http://h/a.html"]
        );
    }

    #[test]
    fn restore_round_trips() {
        let mut f = ShardFrontier::new();
        f.admit(cand("http://h/a.html", 0, "", ""));
        f.admit(cand("http://h/b.html", 1, "http://h/a.html", "b.html"));
        let _ = f.extract(&["http://h/a.html".to_string()]);
        let restored = ShardFrontier::restore(f.visited(), f.pending_candidates());
        assert_eq!(restored.visited(), f.visited());
        assert_eq!(restored.pending_candidates(), f.pending_candidates());
    }
}
