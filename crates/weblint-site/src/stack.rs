//! [`FetchStack`]: one place to compose the fetch decorator tower.
//!
//! Before this module, every consumer that wanted chaos plus resilience
//! hand-nested the decorators — `ResilientFetcher::with_defaults(
//! FaultyWeb::new(web, spec, seed), seed)` — and then had to remember
//! which layer exposes which stats and in what order to print them. The
//! builder centralizes that wiring:
//!
//! ```
//! use weblint_site::{FaultSpec, FetchStack, SharedWeb, SimulatedWeb};
//!
//! let stack = FetchStack::new(SharedWeb::new(SimulatedWeb::new()))
//!     .faults(FaultSpec::all(20), 42)
//!     .resilience_defaults()
//!     .adaptive_defaults()
//!     .hedging_defaults()
//!     .build();
//! assert!(stack.telemetry().to_string().contains("pacing:"));
//! ```
//!
//! Each layer is optional and independently toggled; [`FetchStack`]
//! itself implements [`Fetcher`], so it drops into `Robot::crawl` or any
//! other consumer unchanged. [`FetchStack::telemetry`] returns the one
//! unified snapshot ([`StackTelemetry`]) whose `Display` is the single
//! render path shared by poacher `-stats` and the httpd `/metrics`
//! endpoint — the two can no longer drift.

use std::fmt;

use crate::fault::{
    BreakerPolicy, BreakerState, FaultLayerState, FaultSpec, FaultStats, FaultyWeb, RequestCost,
    ResilienceLayerState, ResilienceStats, ResilientFetcher, RetryPolicy,
};
use crate::pacing::{AimdPolicy, HedgePolicy, Pacer, PacingLayerState, PacingStats};
use crate::robot::Fetcher;
use crate::url::Url;
use crate::web::Status;

/// The four shapes the optional fault/resilience layers can compose
/// into. An enum rather than nested generics so `FetchStack<F>` has one
/// concrete type regardless of which layers are enabled.
enum Tower<F> {
    Plain(F),
    Faulty(FaultyWeb<F>),
    Resilient(ResilientFetcher<F>),
    ResilientFaulty(ResilientFetcher<FaultyWeb<F>>),
}

/// Builder for [`FetchStack`]; see the module docs for the idiom.
pub struct FetchStackBuilder<F> {
    base: F,
    faults: Option<(FaultSpec, u64)>,
    resilience: Option<(RetryPolicy, BreakerPolicy)>,
    aimd: Option<AimdPolicy>,
    hedge: Option<HedgePolicy>,
}

impl<F> FetchStackBuilder<F> {
    /// Inject deterministic faults below every other layer.
    pub fn faults(mut self, spec: FaultSpec, seed: u64) -> Self {
        self.faults = Some((spec, seed));
        self
    }

    /// Wrap the transport in retries + per-host circuit breakers. The
    /// backoff jitter reuses the fault seed so one seed fixes the whole
    /// stack's schedule.
    pub fn resilience(mut self, retry: RetryPolicy, breaker: BreakerPolicy) -> Self {
        self.resilience = Some((retry, breaker));
        self
    }

    /// [`Self::resilience`] with default policies.
    pub fn resilience_defaults(self) -> Self {
        self.resilience(RetryPolicy::default(), BreakerPolicy::default())
    }

    /// Enable per-host AIMD in-flight limits for crawl scheduling.
    pub fn adaptive(mut self, aimd: AimdPolicy) -> Self {
        self.aimd = Some(aimd);
        self
    }

    /// [`Self::adaptive`] with the default policy.
    pub fn adaptive_defaults(self) -> Self {
        self.adaptive(AimdPolicy::default())
    }

    /// Enable budget-capped hedged fetches for crawl scheduling.
    pub fn hedging(mut self, policy: HedgePolicy) -> Self {
        self.hedge = Some(policy);
        self
    }

    /// [`Self::hedging`] with the default policy.
    pub fn hedging_defaults(self) -> Self {
        self.hedging(HedgePolicy::default())
    }

    /// Compose the configured layers into a [`FetchStack`].
    pub fn build(self) -> FetchStack<F> {
        let seed = self.faults.as_ref().map(|(_, seed)| *seed).unwrap_or(0);
        let tower = match (self.faults, self.resilience) {
            (None, None) => Tower::Plain(self.base),
            (Some((spec, seed)), None) => Tower::Faulty(FaultyWeb::new(self.base, spec, seed)),
            (None, Some((retry, breaker))) => {
                Tower::Resilient(ResilientFetcher::new(self.base, retry, breaker, seed))
            }
            (Some((spec, fault_seed)), Some((retry, breaker))) => {
                Tower::ResilientFaulty(ResilientFetcher::new(
                    FaultyWeb::new(self.base, spec, fault_seed),
                    retry,
                    breaker,
                    fault_seed,
                ))
            }
        };
        FetchStack {
            tower,
            pacer: Pacer::new(self.aimd, self.hedge),
        }
    }
}

/// A composed fetch stack: optional fault injection, optional
/// resilience, plus the adaptive pacer the crawl scheduler consults.
pub struct FetchStack<F> {
    tower: Tower<F>,
    pacer: Pacer,
}

impl<F> FetchStack<F> {
    /// Start building a stack over `base` (the transport: a
    /// [`crate::SharedWeb`], a live fetcher, a test double).
    ///
    /// `new` deliberately returns the builder, not the stack — the whole
    /// point of the API is that the tower is only ever composed in one
    /// place, through `FetchStack::new(web)…build()`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(base: F) -> FetchStackBuilder<F> {
        FetchStackBuilder {
            base,
            faults: None,
            resilience: None,
            aimd: None,
            hedge: None,
        }
    }

    /// The adaptive pacer (inert when neither `adaptive` nor `hedging`
    /// was configured).
    pub fn pacer(&self) -> &Pacer {
        &self.pacer
    }

    /// The host's breaker state, [`BreakerState::Closed`] when no
    /// resilience layer is present.
    pub fn breaker_state(&self, host: &str) -> BreakerState {
        match &self.tower {
            Tower::Plain(_) | Tower::Faulty(_) => BreakerState::Closed,
            Tower::Resilient(r) => r.breaker_state(host),
            Tower::ResilientFaulty(r) => r.breaker_state(host),
        }
    }

    /// The unified telemetry snapshot: every enabled layer's stats, each
    /// pre-sorted by host, behind one `Display`.
    pub fn telemetry(&self) -> StackTelemetry {
        let faults = match &self.tower {
            Tower::Faulty(f) => Some(f.stats()),
            Tower::ResilientFaulty(r) => Some(r.inner().stats()),
            _ => None,
        };
        let resilience = match &self.tower {
            Tower::Resilient(r) => Some(r.stats()),
            Tower::ResilientFaulty(r) => Some(r.stats()),
            _ => None,
        };
        let pacing = if self.pacer.adaptive() || self.pacer.hedging() {
            Some(self.pacer.stats())
        } else {
            None
        };
        StackTelemetry {
            faults,
            resilience,
            pacing,
        }
    }

    /// Snapshot every enabled layer's mutable state for checkpointing.
    /// Restoring this into a freshly built stack with the same
    /// configuration makes its future schedule identical to the
    /// original's — attempt counters, breakers, AIMD limits and latency
    /// estimators all carry over.
    pub fn export_state(&self) -> StackState {
        let faults = match &self.tower {
            Tower::Faulty(f) => Some(f.export_state()),
            Tower::ResilientFaulty(r) => Some(r.inner().export_state()),
            _ => None,
        };
        let resilience = match &self.tower {
            Tower::Resilient(r) => Some(r.export_state()),
            Tower::ResilientFaulty(r) => Some(r.export_state()),
            _ => None,
        };
        StackState {
            faults,
            resilience,
            pacing: self.pacer.export_state(),
        }
    }

    /// Overwrite every enabled layer's mutable state from a checkpoint
    /// snapshot. Layers absent from either side are left untouched.
    pub fn restore_state(&self, snapshot: &StackState) {
        if let Some(faults) = &snapshot.faults {
            match &self.tower {
                Tower::Faulty(f) => f.restore_state(faults),
                Tower::ResilientFaulty(r) => r.inner().restore_state(faults),
                _ => {}
            }
        }
        if let Some(resilience) = &snapshot.resilience {
            match &self.tower {
                Tower::Resilient(r) => r.restore_state(resilience),
                Tower::ResilientFaulty(r) => r.restore_state(resilience),
                _ => {}
            }
        }
        self.pacer.restore_state(&snapshot.pacing);
    }
}

impl<F: Fetcher> FetchStack<F> {
    /// Whether a worker may touch the transport for `host` under the
    /// breaker snapshot frozen for the current batch (an open breaker
    /// sheds; closed and half-open — the probe — proceed). Towers
    /// without a resilience layer always admit.
    pub(crate) fn frozen_allows(&self, host: &str) -> bool {
        self.breaker_state(host) != BreakerState::Open
    }

    /// Worker half of a scheduler-issued GET: retries without breaker
    /// bookkeeping (see [`ResilientFetcher::attempt_get`]).
    pub(crate) fn attempt_get(&self, url: &Url) -> ((Status, String, String), RequestCost) {
        match &self.tower {
            Tower::Plain(f) => (f.get(url), RequestCost::default()),
            Tower::Faulty(f) => (f.get(url), RequestCost::default()),
            Tower::Resilient(r) => r.attempt_get(url),
            Tower::ResilientFaulty(r) => r.attempt_get(url),
        }
    }

    /// One raw attempt below the resilience layer — the hedge: a single
    /// speculative fetch, never a second retry loop.
    pub(crate) fn raw_get(&self, url: &Url) -> (Status, String, String) {
        match &self.tower {
            Tower::Plain(f) => f.get(url),
            Tower::Faulty(f) => f.get(url),
            Tower::Resilient(r) => r.inner().get(url),
            Tower::ResilientFaulty(r) => r.inner().get(url),
        }
    }

    /// Scheduler half: settle one recorded hop in issue order (see
    /// [`ResilientFetcher::settle_hop`]). No-op for towers without a
    /// resilience layer.
    pub(crate) fn settle_hop(&self, host: &str, record: &crate::fault::HopRecord) {
        match &self.tower {
            Tower::Plain(_) | Tower::Faulty(_) => {}
            Tower::Resilient(r) => r.settle_hop(host, record),
            Tower::ResilientFaulty(r) => r.settle_hop(host, record),
        }
    }

    /// HEAD through the tower, reporting the request's virtual cost.
    pub fn head_cost(&self, url: &Url) -> ((Status, String), RequestCost) {
        match &self.tower {
            Tower::Plain(f) => (f.head(url), RequestCost::default()),
            Tower::Faulty(f) => (f.head(url), RequestCost::default()),
            Tower::Resilient(r) => r.head_cost(url),
            Tower::ResilientFaulty(r) => r.head_cost(url),
        }
    }

    /// GET through the tower, reporting the request's virtual cost.
    pub fn get_cost(&self, url: &Url) -> ((Status, String, String), RequestCost) {
        match &self.tower {
            Tower::Plain(f) => (f.get(url), RequestCost::default()),
            Tower::Faulty(f) => (f.get(url), RequestCost::default()),
            Tower::Resilient(r) => r.get_cost(url),
            Tower::ResilientFaulty(r) => r.get_cost(url),
        }
    }
}

impl<F: Fetcher> Fetcher for FetchStack<F> {
    fn head(&self, url: &Url) -> (Status, String) {
        self.head_cost(url).0
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        self.get_cost(url).0
    }
}

/// Checkpointable state of a whole [`FetchStack`]: the mutable parts of
/// every enabled layer. Configuration (policies, fault spec, seed) is
/// *not* captured — a restore target must be built with the same
/// configuration, which the checkpoint layer enforces by fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackState {
    /// Fault-layer attempt counters and per-host accounting, when a
    /// fault layer is present.
    pub faults: Option<FaultLayerState>,
    /// Retry/breaker state, when a resilience layer is present.
    pub resilience: Option<ResilienceLayerState>,
    /// Per-host AIMD and latency-estimator state.
    pub pacing: PacingLayerState,
}

/// Unified stats snapshot across every enabled stack layer. Its
/// `Display` — present sections joined by blank lines — is the shared
/// render path for poacher `-stats` and httpd `/metrics`.
#[derive(Debug, Clone, Default)]
pub struct StackTelemetry {
    /// Fault-injection accounting, when a fault layer is present.
    pub faults: Option<FaultStats>,
    /// Retry/breaker accounting, when a resilience layer is present.
    pub resilience: Option<ResilienceStats>,
    /// Adaptive pacing accounting, when AIMD limits or hedging are on.
    pub pacing: Option<PacingStats>,
}

impl StackTelemetry {
    /// Whether any layer contributed a section.
    pub fn is_empty(&self) -> bool {
        self.faults.is_none() && self.resilience.is_none() && self.pacing.is_none()
    }
}

impl fmt::Display for StackTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut section = |f: &mut fmt::Formatter<'_>, text: String| {
            let sep = if first { "" } else { "\n\n" };
            first = false;
            write!(f, "{sep}{text}")
        };
        if let Some(faults) = &self.faults {
            section(f, faults.to_string())?;
        }
        if let Some(resilience) = &self.resilience {
            section(f, resilience.to_string())?;
        }
        if let Some(pacing) = &self.pacing {
            section(f, pacing.to_string())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::{SharedWeb, SimulatedWeb};

    fn web() -> SharedWeb {
        let mut web = SimulatedWeb::new();
        web.add_page("http://s/x.html", "<HTML><BODY>x</BODY></HTML>");
        SharedWeb::new(web)
    }

    #[test]
    fn plain_stack_fetches_and_reports_nothing() {
        let stack = FetchStack::new(web()).build();
        let url = Url::parse("http://s/x.html").unwrap();
        let ((status, _, body), cost) = stack.get_cost(&url);
        assert_eq!(status, Status::Ok);
        assert!(body.contains("x"));
        assert_eq!(cost, RequestCost::default());
        assert_eq!(stack.breaker_state("s"), BreakerState::Closed);
        let telemetry = stack.telemetry();
        assert!(telemetry.is_empty());
        assert_eq!(telemetry.to_string(), "");
    }

    #[test]
    fn full_stack_renders_every_section_once() {
        let stack = FetchStack::new(web())
            .faults(FaultSpec::all(50), 7)
            .resilience_defaults()
            .adaptive_defaults()
            .hedging_defaults()
            .build();
        let url = Url::parse("http://s/x.html").unwrap();
        for _ in 0..8 {
            let _ = stack.get(&url);
        }
        stack.pacer().observe(
            "s",
            crate::pacing::Observation {
                clean: true,
                bad: false,
                latency_us: 20_000,
            },
        );
        let text = stack.telemetry().to_string();
        assert_eq!(text.matches("fault injection:").count(), 1, "{text}");
        assert_eq!(text.matches("resilience:").count(), 1, "{text}");
        assert_eq!(text.matches("pacing:").count(), 1, "{text}");
        let sections: Vec<&str> = text.split("\n\n").collect();
        assert_eq!(sections.len(), 3, "{text}");
    }

    #[test]
    fn layers_toggle_independently() {
        let faulty_only = FetchStack::new(web()).faults(FaultSpec::all(10), 1).build();
        let t = faulty_only.telemetry();
        assert!(t.faults.is_some() && t.resilience.is_none() && t.pacing.is_none());

        let resilient_only = FetchStack::new(web()).resilience_defaults().build();
        let t = resilient_only.telemetry();
        assert!(t.faults.is_none() && t.resilience.is_some() && t.pacing.is_none());
        assert!(!resilient_only.pacer().adaptive());

        let adaptive_only = FetchStack::new(web()).adaptive_defaults().build();
        let t = adaptive_only.telemetry();
        assert!(t.faults.is_none() && t.resilience.is_none() && t.pacing.is_some());
        assert_eq!(adaptive_only.pacer().limit("s"), 4);
    }

    #[test]
    fn stack_matches_hand_nested_construction() {
        // The builder must reproduce the legacy hand-nested tower
        // byte-for-byte: same seed, same schedule, same stats.
        let url = Url::parse("http://s/x.html").unwrap();
        let stack = FetchStack::new(web())
            .faults(FaultSpec::all(30), 11)
            .resilience_defaults()
            .build();
        let legacy =
            ResilientFetcher::with_defaults(FaultyWeb::new(web(), FaultSpec::all(30), 11), 11);
        for _ in 0..12 {
            assert_eq!(stack.get(&url), legacy.get(&url));
            assert_eq!(stack.head(&url), legacy.head(&url));
        }
        let telemetry = stack.telemetry();
        assert_eq!(
            telemetry.faults.as_ref().unwrap().to_string(),
            legacy.inner().stats().to_string()
        );
        assert_eq!(
            telemetry.resilience.as_ref().unwrap().to_string(),
            legacy.stats().to_string()
        );
    }
}
