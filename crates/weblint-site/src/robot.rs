//! The *poacher* robot: crawl a site, lint every page, validate links.
//!
//! "A robot can be used to invoke weblint on all accessible pages on a
//! site. I have written one, called poacher … Poacher also performs basic
//! link validation. … At its simplest, this merely consists of sending a
//! HEAD request, and reporting all URLs which result in a 404 response
//! code. Smarter robots will handle redirects" (§4.5, §3.5). This robot
//! does both: it follows redirects (bounded), GETs and lints same-site HTML
//! pages breadth-first, and HEAD-validates everything else.

use std::collections::{HashSet, VecDeque};

use weblint_core::{Diagnostic, LintConfig, Weblint};
use weblint_service::{JobHandle, LintService};

use crate::links::{extract_links, LinkKind};
use crate::url::Url;
use crate::web::{SimulatedWeb, Status};

/// Transport abstraction so the robot can crawl the simulated web today
/// and a real HTTP client if one is ever wired in.
pub trait Fetcher {
    /// HEAD: status and content type.
    fn head(&self, url: &Url) -> (Status, String);
    /// GET: status, content type, body.
    fn get(&self, url: &Url) -> (Status, String, String);
}

/// [`SimulatedWeb`] as a [`Fetcher`].
pub struct WebFetcher<'a> {
    web: &'a SimulatedWeb,
}

impl<'a> WebFetcher<'a> {
    /// Wrap a simulated web.
    pub fn new(web: &'a SimulatedWeb) -> WebFetcher<'a> {
        WebFetcher { web }
    }
}

impl Fetcher for WebFetcher<'_> {
    fn head(&self, url: &Url) -> (Status, String) {
        self.web.head(url)
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        self.web.get(url)
    }
}

/// A [`crate::PageStore`] served as a website: `http://{host}/{path}` maps
/// to the store's `path`. This is how *poacher* crawls a local directory
/// tree — the same traversal code, with the filesystem as the transport.
pub struct StoreFetcher<'a> {
    store: &'a dyn crate::PageStore,
    host: String,
}

impl<'a> StoreFetcher<'a> {
    /// Serve `store` as `http://{host}/`.
    pub fn new(store: &'a dyn crate::PageStore, host: &str) -> StoreFetcher<'a> {
        StoreFetcher {
            store,
            host: host.to_ascii_lowercase(),
        }
    }

    /// The URL of the store's root index page.
    pub fn start_url(&self) -> Url {
        Url::parse(&format!("http://{}/index.html", self.host)).expect("valid URL")
    }

    fn path_of<'u>(&self, url: &'u Url) -> Option<&'u str> {
        if url.host != self.host {
            return None;
        }
        Some(url.path.trim_start_matches('/'))
    }
}

impl Fetcher for StoreFetcher<'_> {
    fn head(&self, url: &Url) -> (Status, String) {
        match self.path_of(url) {
            Some(path) if self.store.exists(path) => (Status::Ok, content_type_of(path)),
            _ => (Status::NotFound, String::new()),
        }
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        match self
            .path_of(url)
            .and_then(|p| self.store.read(p).map(|body| (content_type_of(p), body)))
        {
            Some((ct, body)) => (Status::Ok, ct, body),
            None => (Status::NotFound, String::new(), String::new()),
        }
    }
}

/// MIME type by file extension, 1998 edition.
fn content_type_of(path: &str) -> String {
    let lower = path.to_ascii_lowercase();
    let ct = if lower.ends_with(".html") || lower.ends_with(".htm") || lower.ends_with(".shtml") {
        "text/html"
    } else if lower.ends_with(".gif") {
        "image/gif"
    } else if lower.ends_with(".jpg") || lower.ends_with(".jpeg") {
        "image/jpeg"
    } else if lower.ends_with(".css") {
        "text/css"
    } else if lower.ends_with(".txt") {
        "text/plain"
    } else {
        "application/octet-stream"
    };
    ct.to_string()
}

/// Robot knobs.
#[derive(Debug, Clone)]
pub struct RobotOptions {
    /// Stop after this many pages have been fetched and linted.
    pub max_pages: usize,
    /// Give up on a redirect chain after this many hops.
    pub max_redirects: usize,
    /// HEAD-validate links that leave the start host.
    pub check_external: bool,
    /// Lint configuration applied to each fetched page.
    pub lint: LintConfig,
}

impl Default for RobotOptions {
    fn default() -> RobotOptions {
        RobotOptions {
            max_pages: 1_000,
            max_redirects: 5,
            check_external: true,
            lint: LintConfig::default(),
        }
    }
}

/// One crawled page.
#[derive(Debug, Clone)]
pub struct CrawledPage {
    /// Final URL (after redirects).
    pub url: Url,
    /// Lint results for the page.
    pub diagnostics: Vec<Diagnostic>,
    /// Links found on the page.
    pub link_count: usize,
    /// Click depth from the start page (the start page is depth 0).
    ///
    /// §2 asks "How easy is your site to navigate?" and §3.5 notes that
    /// "smarter robots … generate navigational analysis of your site" —
    /// this is that analysis: BFS depth is the minimum number of clicks a
    /// visitor needs.
    pub depth: usize,
}

/// A dead or broken link discovered during the crawl.
#[derive(Debug, Clone)]
pub struct DeadLink {
    /// Page the link appeared on.
    pub page: Url,
    /// The reference as written.
    pub href: String,
    /// Why it is considered dead.
    pub reason: String,
}

/// What the robot found.
#[derive(Debug, Clone, Default)]
pub struct RobotReport {
    /// Every page fetched and linted.
    pub pages: Vec<CrawledPage>,
    /// Every broken link.
    pub dead_links: Vec<DeadLink>,
    /// Redirect hops followed.
    pub redirects_followed: usize,
    /// Crawl stopped early because `max_pages` was reached.
    pub truncated: bool,
}

impl RobotReport {
    /// Total diagnostics across all pages.
    pub fn total_diagnostics(&self) -> usize {
        self.pages.iter().map(|p| p.diagnostics.len()).sum()
    }

    /// The deepest click depth reached.
    pub fn max_depth(&self) -> usize {
        self.pages.iter().map(|p| p.depth).max().unwrap_or(0)
    }

    /// Page count per click depth: index `d` holds how many pages sit `d`
    /// clicks from the start.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0; self.max_depth() + 1];
        for page in &self.pages {
            histogram[page.depth] += 1;
        }
        if self.pages.is_empty() {
            histogram.clear();
        }
        histogram
    }
}

/// The poacher analog.
#[derive(Debug, Clone)]
pub struct Robot {
    options: RobotOptions,
    weblint: Weblint,
}

impl Robot {
    /// A robot with the given options.
    pub fn new(options: RobotOptions) -> Robot {
        Robot {
            weblint: Weblint::with_config(options.lint.clone()),
            options,
        }
    }

    /// Crawl breadth-first from `start`, staying on `start`'s host.
    pub fn crawl(&self, fetcher: &dyn Fetcher, start: &Url) -> RobotReport {
        self.crawl_impl(fetcher, start, None)
    }

    /// [`Robot::crawl`], with page linting handed to a [`LintService`] so
    /// the crawl (fetching, link extraction, HEAD validation) overlaps
    /// with linting. The report is identical to the sequential one: pages
    /// stay in crawl order and each page's diagnostics are collected from
    /// its service handle at the end.
    pub fn crawl_with(
        &self,
        fetcher: &dyn Fetcher,
        start: &Url,
        service: &LintService,
    ) -> RobotReport {
        self.crawl_impl(fetcher, start, Some(service))
    }

    fn crawl_impl(
        &self,
        fetcher: &dyn Fetcher,
        start: &Url,
        service: Option<&LintService>,
    ) -> RobotReport {
        let mut report = RobotReport::default();
        let mut pending: Vec<(usize, JobHandle)> = Vec::new();
        let mut queue: VecDeque<(Url, usize)> = VecDeque::new();
        let mut enqueued: HashSet<String> = HashSet::new();
        let mut head_checked: HashSet<String> = HashSet::new();
        queue.push_back((start.clone(), 0));
        enqueued.insert(start.to_string());

        while let Some((url, depth)) = queue.pop_front() {
            if report.pages.len() >= self.options.max_pages {
                report.truncated = true;
                break;
            }
            let Some((final_url, body)) =
                self.fetch_following_redirects(fetcher, &url, &mut report)
            else {
                continue;
            };
            // With a service attached, hand the body to a worker and keep
            // crawling; the diagnostics slot is filled in afterwards.
            let diagnostics = match service {
                Some(service) => {
                    match service.submit_with(body.clone(), Some(self.options.lint.clone())) {
                        Ok(handle) => {
                            pending.push((report.pages.len(), handle));
                            Vec::new()
                        }
                        Err(_) => self.weblint.check_string(&body),
                    }
                }
                None => self.weblint.check_string(&body),
            };
            let links = extract_links(&body);
            report.pages.push(CrawledPage {
                url: final_url.clone(),
                diagnostics,
                link_count: links.len(),
                depth,
            });
            for link in links {
                match link.kind {
                    LinkKind::Fragment | LinkKind::Mailto => continue,
                    LinkKind::Local | LinkKind::External => {}
                }
                let target = final_url.join(&link.href);
                if target.same_site(start) {
                    if enqueued.insert(target.to_string()) {
                        // Cheap HEAD before committing to a GET: dead links
                        // are reported here, non-HTML is HEAD-only.
                        match fetcher.head(&target) {
                            (Status::Ok, ct) if ct.starts_with("text/html") => {
                                queue.push_back((target, depth + 1));
                            }
                            (Status::Ok, _) => {}
                            (Status::Redirect(_), _) => queue.push_back((target, depth + 1)),
                            (Status::NotFound, _) => report.dead_links.push(DeadLink {
                                page: final_url.clone(),
                                href: link.href.clone(),
                                reason: "404 Not Found".to_string(),
                            }),
                            (Status::ServerError, _) => report.dead_links.push(DeadLink {
                                page: final_url.clone(),
                                href: link.href.clone(),
                                reason: "server error".to_string(),
                            }),
                            (Status::TimedOut, _) => report.dead_links.push(DeadLink {
                                page: final_url.clone(),
                                href: link.href.clone(),
                                reason: "timed out".to_string(),
                            }),
                            (Status::Reset, _) => report.dead_links.push(DeadLink {
                                page: final_url.clone(),
                                href: link.href.clone(),
                                reason: "connection reset".to_string(),
                            }),
                        }
                    }
                } else if self.options.check_external && head_checked.insert(target.to_string()) {
                    match fetcher.head(&target) {
                        (Status::NotFound, _) => report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "404 Not Found (external)".to_string(),
                        }),
                        (Status::ServerError, _) => report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "server error (external)".to_string(),
                        }),
                        (Status::TimedOut, _) => report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "timed out (external)".to_string(),
                        }),
                        (Status::Reset, _) => report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "connection reset (external)".to_string(),
                        }),
                        _ => {}
                    }
                }
            }
        }
        for (index, handle) in pending {
            report.pages[index].diagnostics = handle.wait().unwrap_or_default();
        }
        report
    }

    /// GET `url`, following redirects up to the limit. Returns the final
    /// URL and HTML body, or `None` when the target is missing, non-HTML,
    /// or loops.
    fn fetch_following_redirects(
        &self,
        fetcher: &dyn Fetcher,
        url: &Url,
        report: &mut RobotReport,
    ) -> Option<(Url, String)> {
        let mut current = url.clone();
        for _ in 0..=self.options.max_redirects {
            match fetcher.get(&current) {
                (Status::Ok, ct, body) if ct.starts_with("text/html") => {
                    return Some((current, body));
                }
                (Status::Ok, _, _) => return None,
                (Status::Redirect(location), _, _) => {
                    report.redirects_followed += 1;
                    current = current.join(&location);
                }
                (Status::NotFound, _, _) => {
                    report.dead_links.push(DeadLink {
                        page: url.clone(),
                        href: current.to_string(),
                        reason: "404 Not Found".to_string(),
                    });
                    return None;
                }
                (Status::ServerError, _, _) => {
                    report.dead_links.push(DeadLink {
                        page: url.clone(),
                        href: current.to_string(),
                        reason: "server error".to_string(),
                    });
                    return None;
                }
                (Status::TimedOut, _, _) => {
                    report.dead_links.push(DeadLink {
                        page: url.clone(),
                        href: current.to_string(),
                        reason: "timed out".to_string(),
                    });
                    return None;
                }
                (Status::Reset, _, _) => {
                    report.dead_links.push(DeadLink {
                        page: url.clone(),
                        href: current.to_string(),
                        reason: "connection reset".to_string(),
                    });
                    return None;
                }
            }
        }
        report.dead_links.push(DeadLink {
            page: url.clone(),
            href: current.to_string(),
            reason: "too many redirects".to_string(),
        });
        None
    }
}

impl Default for Robot {
    fn default() -> Robot {
        Robot::new(RobotOptions::default())
    }
}

/// Why a URL could not be checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The URL did not parse.
    BadUrl(String),
    /// 404.
    NotFound(String),
    /// 5xx.
    ServerError(String),
    /// Content type is not HTML.
    NotHtml(String),
    /// Redirect chain exceeded the hop limit.
    TooManyRedirects(String),
    /// The host timed out or reset the connection (transient transport
    /// failure, possibly after retries).
    Unreachable(String),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::BadUrl(u) => write!(f, "cannot parse URL {u}"),
            FetchError::NotFound(u) => write!(f, "{u}: 404 Not Found"),
            FetchError::ServerError(u) => write!(f, "{u}: server error"),
            FetchError::NotHtml(u) => write!(f, "{u} is not an HTML page"),
            FetchError::TooManyRedirects(u) => write!(f, "{u}: too many redirects"),
            FetchError::Unreachable(u) => write!(f, "{u}: host unreachable"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Fetch one URL (following up to five redirects) and lint it — the
/// paper's `check_url` method (§5.4): "The latter requires the LWP
/// modules… If you don't have LWP installed, you can still use weblint,
/// but the check_url method won't be available." Here the transport is a
/// [`Fetcher`] rather than LWP.
///
/// # Examples
///
/// ```
/// use weblint_site::{check_url, SimulatedWeb, WebFetcher};
/// use weblint_core::LintConfig;
///
/// let mut web = SimulatedWeb::new();
/// web.add_page("http://h/p.html", "<H1>x</H2>");
/// let diags = check_url(
///     &WebFetcher::new(&web),
///     "http://h/p.html",
///     &LintConfig::default(),
/// ).unwrap();
/// assert!(diags.iter().any(|d| d.id == "heading-mismatch"));
/// ```
pub fn check_url(
    fetcher: &dyn Fetcher,
    url: &str,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, FetchError> {
    let parsed = Url::parse(url).ok_or_else(|| FetchError::BadUrl(url.to_string()))?;
    let mut current = parsed;
    for _ in 0..=5 {
        match fetcher.get(&current) {
            (Status::Ok, ct, body) if ct.starts_with("text/html") => {
                let weblint = Weblint::with_config(config.clone());
                return Ok(weblint.check_string(&body));
            }
            (Status::Ok, _, _) => return Err(FetchError::NotHtml(current.to_string())),
            (Status::Redirect(location), _, _) => current = current.join(&location),
            (Status::NotFound, _, _) => return Err(FetchError::NotFound(current.to_string())),
            (Status::ServerError, _, _) => {
                return Err(FetchError::ServerError(current.to_string()))
            }
            (Status::TimedOut, _, _) | (Status::Reset, _, _) => {
                return Err(FetchError::Unreachable(current.to_string()))
            }
        }
    }
    Err(FetchError::TooManyRedirects(current.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(body: &str) -> String {
        format!(
            "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n\
             <HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>{body}</BODY></HTML>\n"
        )
    }

    fn start() -> Url {
        Url::parse("http://site/index.html").unwrap()
    }

    #[test]
    fn crawls_reachable_pages() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"a.html\">a</A> <A HREF=\"d/b.html\">b</A></P>"),
        );
        web.add_page("http://site/a.html", page("<P>leaf</P>"));
        web.add_page(
            "http://site/d/b.html",
            page("<P><A HREF=\"../a.html\">back</A></P>"),
        );
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 3);
        assert!(report.dead_links.is_empty());
        assert!(!report.truncated);
    }

    #[test]
    fn reports_dead_links_via_head() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"gone.html\">x</A></P>"),
        );
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.dead_links.len(), 1);
        assert_eq!(report.dead_links[0].href, "gone.html");
        assert!(report.dead_links[0].reason.contains("404"));
    }

    #[test]
    fn follows_redirects() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"moved.html\">x</A></P>"),
        );
        web.add_redirect("http://site/moved.html", "http://site/new.html");
        web.add_page("http://site/new.html", page("<P>landed</P>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 2);
        assert_eq!(report.redirects_followed, 1);
        assert!(report.dead_links.is_empty());
    }

    #[test]
    fn redirect_loops_bounded() {
        let mut web = SimulatedWeb::new();
        web.add_redirect("http://site/index.html", "http://site/index.html");
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert!(report
            .dead_links
            .iter()
            .any(|d| d.reason.contains("too many redirects")));
    }

    #[test]
    fn stays_on_site_but_head_checks_external() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page(
                "<P><A HREF=\"http://other/ok.html\">a</A>\
                  <A HREF=\"http://other/gone.html\">b</A></P>",
            ),
        );
        web.add_page("http://other/ok.html", page("<P>elsewhere</P>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        // Only the start page is fetched; the external 404 is reported.
        assert_eq!(report.pages.len(), 1);
        assert_eq!(report.dead_links.len(), 1);
        assert!(report.dead_links[0].reason.contains("external"));
    }

    #[test]
    fn external_checking_can_be_disabled() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"http://other/gone.html\">b</A></P>"),
        );
        let robot = Robot::new(RobotOptions {
            check_external: false,
            ..RobotOptions::default()
        });
        let report = robot.crawl(&WebFetcher::new(&web), &start());
        assert!(report.dead_links.is_empty());
    }

    #[test]
    fn max_pages_truncates() {
        let mut web = SimulatedWeb::new();
        // A chain of pages, each linking to the next.
        for i in 0..10 {
            let body = page(&format!("<P><A HREF=\"p{}.html\">next</A></P>", i + 1));
            let path = if i == 0 {
                "http://site/index.html".to_string()
            } else {
                format!("http://site/p{i}.html")
            };
            web.add_page(&path, body);
        }
        let robot = Robot::new(RobotOptions {
            max_pages: 3,
            ..RobotOptions::default()
        });
        let report = robot.crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 3);
        assert!(report.truncated);
    }

    #[test]
    fn lints_every_fetched_page() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"bad.html\">x</A></P>"),
        );
        web.add_page("http://site/bad.html", page("<H1>oops</H2>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.total_diagnostics(), 1);
        let bad = report
            .pages
            .iter()
            .find(|p| p.url.path == "/bad.html")
            .unwrap();
        assert_eq!(bad.diagnostics[0].id, "heading-mismatch");
    }

    #[test]
    fn crawl_with_service_matches_sequential() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"a.html\">a</A> <A HREF=\"gone.html\">x</A></P>"),
        );
        web.add_page("http://site/a.html", page("<H1>oops</H2>"));
        let robot = Robot::default();
        let sequential = robot.crawl(&WebFetcher::new(&web), &start());
        let service = LintService::with_config(LintConfig::default());
        let fanned = robot.crawl_with(&WebFetcher::new(&web), &start(), &service);
        assert_eq!(fanned.pages.len(), sequential.pages.len());
        for (a, b) in fanned.pages.iter().zip(&sequential.pages) {
            assert_eq!(a.url, b.url);
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!((a.link_count, a.depth), (b.link_count, b.depth));
        }
        assert_eq!(fanned.dead_links.len(), sequential.dead_links.len());
        assert_eq!(service.metrics().jobs_completed, 2);
    }

    #[test]
    fn depth_tracks_click_distance() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"a.html\">a</A> <A HREF=\"b.html\">b</A></P>"),
        );
        web.add_page(
            "http://site/a.html",
            page("<P><A HREF=\"deep.html\">x</A></P>"),
        );
        web.add_page("http://site/b.html", page("<P>leaf</P>"));
        web.add_page("http://site/deep.html", page("<P>deep</P>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.max_depth(), 2);
        assert_eq!(report.depth_histogram(), vec![1, 2, 1]);
        let deep = report
            .pages
            .iter()
            .find(|p| p.url.path == "/deep.html")
            .unwrap();
        assert_eq!(deep.depth, 2);
    }

    #[test]
    fn empty_crawl_has_empty_histogram() {
        let web = SimulatedWeb::new();
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert!(report.depth_histogram().is_empty());
        assert_eq!(report.max_depth(), 0);
    }

    #[test]
    fn store_fetcher_serves_a_memstore() {
        use crate::store::MemStore;
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"sub/a.html\">a</A></P>"));
        store.insert(
            "sub/a.html",
            page(
                "<P><IMG SRC=\"pic.gif\" ALT=\"p\" \
                                         WIDTH=\"1\" HEIGHT=\"1\"></P>",
            ),
        );
        store.insert("sub/pic.gif", "GIF89a");
        let fetcher = StoreFetcher::new(&store, "local");
        let report = Robot::default().crawl(&fetcher, &fetcher.start_url());
        assert_eq!(report.pages.len(), 2);
        assert!(report.dead_links.is_empty());
        // Content types derived from extension:
        let (status, ct) = fetcher.head(&Url::parse("http://local/sub/pic.gif").unwrap());
        assert_eq!(status, Status::Ok);
        assert_eq!(ct, "image/gif");
        // Other hosts 404:
        let (status, _) = fetcher.head(&Url::parse("http://elsewhere/x.html").unwrap());
        assert_eq!(status, Status::NotFound);
    }

    #[test]
    fn check_url_follows_redirects_and_errors() {
        let mut web = SimulatedWeb::new();
        web.add_redirect("http://h/old.html", "/new.html");
        web.add_page("http://h/new.html", page("<H2>wrong</H3>"));
        web.add("http://h/pic.gif", crate::web::Resource::asset("image/gif"));
        let f = WebFetcher::new(&web);
        let config = LintConfig::default();
        let diags = check_url(&f, "http://h/old.html", &config).unwrap();
        assert!(diags.iter().any(|d| d.id == "heading-mismatch"));
        assert!(matches!(
            check_url(&f, "http://h/gone.html", &config),
            Err(FetchError::NotFound(_))
        ));
        assert!(matches!(
            check_url(&f, "http://h/pic.gif", &config),
            Err(FetchError::NotHtml(_))
        ));
        assert!(matches!(
            check_url(&f, "::", &config),
            Err(FetchError::BadUrl(_))
        ));
    }

    #[test]
    fn non_html_targets_head_only() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><IMG SRC=\"logo.gif\" ALT=\"l\" WIDTH=\"1\" HEIGHT=\"1\"></P>"),
        );
        web.add(
            "http://site/logo.gif",
            crate::web::Resource::asset("image/gif"),
        );
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 1);
        assert!(report.dead_links.is_empty());
        assert_eq!(web.stats().heads, 1);
    }
}
