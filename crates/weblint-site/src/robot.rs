//! The *poacher* robot: crawl a site, lint every page, validate links.
//!
//! "A robot can be used to invoke weblint on all accessible pages on a
//! site. I have written one, called poacher … Poacher also performs basic
//! link validation. … At its simplest, this merely consists of sending a
//! HEAD request, and reporting all URLs which result in a 404 response
//! code. Smarter robots will handle redirects" (§4.5, §3.5). This robot
//! does both: it follows redirects (bounded), GETs and lints same-site HTML
//! pages breadth-first, and HEAD-validates everything else.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

use weblint_core::{Diagnostic, LintConfig, LintSession, Weblint};
use weblint_service::{JobHandle, LintService};

use crate::checkpoint::{
    self, load_checkpoint, save_checkpoint, CheckpointError, CheckpointMeta, ShardState,
};
use crate::fault::{transient, HopRecord, VIRTUAL_RTT_US};
use crate::frontier::{shard_of, Candidate, ShardFrontier};
use crate::links::{extract_links, Link, LinkKind};
use crate::pacing::{HedgeToken, Observation};
use crate::stack::{FetchStack, StackState, StackTelemetry};
use crate::url::Url;
use crate::web::{SimulatedWeb, Status};

/// Bytes per transport delivery when a buffered body is replayed as a
/// stream — the packet size the default [`Fetcher::get_streamed`]
/// simulates, and the feed granularity for linting on a fetch worker.
const FETCH_CHUNK: usize = 4096;

/// Transport abstraction so the robot can crawl the simulated web today
/// and a real HTTP client if one is ever wired in.
pub trait Fetcher {
    /// HEAD: status and content type.
    fn head(&self, url: &Url) -> (Status, String);
    /// GET: status, content type, body.
    fn get(&self, url: &Url) -> (Status, String, String);
    /// GET, delivering the body through `sink` as it arrives; returns
    /// status and content type. This is what lets the robot lint a page
    /// *during* its fetch. The default buffers via [`Fetcher::get`] and
    /// replays the body in [`FETCH_CHUNK`]-byte pieces; a transport with
    /// a real wire overrides it to call `sink` as bytes land.
    fn get_streamed(&self, url: &Url, sink: &mut dyn FnMut(&[u8])) -> (Status, String) {
        let (status, content_type, body) = self.get(url);
        for chunk in body.as_bytes().chunks(FETCH_CHUNK) {
            sink(chunk);
        }
        (status, content_type)
    }
}

/// [`SimulatedWeb`] as a [`Fetcher`].
pub struct WebFetcher<'a> {
    web: &'a SimulatedWeb,
}

impl<'a> WebFetcher<'a> {
    /// Wrap a simulated web.
    pub fn new(web: &'a SimulatedWeb) -> WebFetcher<'a> {
        WebFetcher { web }
    }
}

impl Fetcher for WebFetcher<'_> {
    fn head(&self, url: &Url) -> (Status, String) {
        self.web.head(url)
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        self.web.get(url)
    }
}

/// A [`crate::PageStore`] served as a website: `http://{host}/{path}` maps
/// to the store's `path`. This is how *poacher* crawls a local directory
/// tree — the same traversal code, with the filesystem as the transport.
pub struct StoreFetcher<'a> {
    store: &'a (dyn crate::PageStore + Sync),
    host: String,
}

impl<'a> StoreFetcher<'a> {
    /// Serve `store` as `http://{host}/`.
    pub fn new(store: &'a (dyn crate::PageStore + Sync), host: &str) -> StoreFetcher<'a> {
        StoreFetcher {
            store,
            host: host.to_ascii_lowercase(),
        }
    }

    /// The URL of the store's root index page.
    pub fn start_url(&self) -> Url {
        Url::parse(&format!("http://{}/index.html", self.host)).expect("valid URL")
    }

    fn path_of<'u>(&self, url: &'u Url) -> Option<&'u str> {
        if url.host != self.host {
            return None;
        }
        Some(url.path.trim_start_matches('/'))
    }
}

impl Fetcher for StoreFetcher<'_> {
    fn head(&self, url: &Url) -> (Status, String) {
        match self.path_of(url) {
            Some(path) if self.store.exists(path) => (Status::Ok, content_type_of(path)),
            _ => (Status::NotFound, String::new()),
        }
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        match self
            .path_of(url)
            .and_then(|p| self.store.read(p).map(|body| (content_type_of(p), body)))
        {
            Some((ct, body)) => (Status::Ok, ct, body),
            None => (Status::NotFound, String::new(), String::new()),
        }
    }
}

/// MIME type by file extension, 1998 edition.
fn content_type_of(path: &str) -> String {
    let lower = path.to_ascii_lowercase();
    let ct = if lower.ends_with(".html") || lower.ends_with(".htm") || lower.ends_with(".shtml") {
        "text/html"
    } else if lower.ends_with(".gif") {
        "image/gif"
    } else if lower.ends_with(".jpg") || lower.ends_with(".jpeg") {
        "image/jpeg"
    } else if lower.ends_with(".css") {
        "text/css"
    } else if lower.ends_with(".txt") {
        "text/plain"
    } else {
        "application/octet-stream"
    };
    ct.to_string()
}

/// A [`Fetcher`] backed by a resolver closure: `resolve(url)` returns
/// `Some((content_type, body))` for resources that exist. This is how
/// generated corpora (the mega-site) plug into the robot without a
/// dependency on this crate's web types.
pub struct FnFetcher<G> {
    resolve: G,
}

impl<G> FnFetcher<G>
where
    G: Fn(&Url) -> Option<(String, String)>,
{
    /// Wrap a resolver closure.
    pub fn new(resolve: G) -> FnFetcher<G> {
        FnFetcher { resolve }
    }
}

impl<G> Fetcher for FnFetcher<G>
where
    G: Fn(&Url) -> Option<(String, String)>,
{
    fn head(&self, url: &Url) -> (Status, String) {
        match (self.resolve)(url) {
            Some((ct, _)) => (Status::Ok, ct),
            None => (Status::NotFound, String::new()),
        }
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        match (self.resolve)(url) {
            Some((ct, body)) => (Status::Ok, ct, body),
            None => (Status::NotFound, String::new(), String::new()),
        }
    }
}

/// Robot knobs. Prefer [`RobotOptions::builder`] — its setters validate
/// their inputs — over field-by-field struct construction; `Default` is
/// kept for compatibility.
#[derive(Debug, Clone)]
pub struct RobotOptions {
    /// Stop after this many pages have been fetched and linted.
    pub max_pages: usize,
    /// Give up on a redirect chain after this many hops.
    pub max_redirects: usize,
    /// Bound on click depth: links found on pages at this depth are
    /// still validated, but not crawled. `None` crawls without bound.
    pub max_depth: Option<usize>,
    /// Fetches [`Robot::crawl_stack`] may keep in flight at once (the
    /// adaptive per-host limit clamps each batch further). `1` crawls
    /// sequentially; `crawl`/`crawl_with` are always sequential.
    pub jobs: usize,
    /// HEAD-validate links that leave the start host.
    pub check_external: bool,
    /// Lint configuration applied to each fetched page.
    pub lint: LintConfig,
}

impl Default for RobotOptions {
    fn default() -> RobotOptions {
        RobotOptions {
            max_pages: 1_000,
            max_redirects: 5,
            max_depth: None,
            jobs: 1,
            check_external: true,
            lint: LintConfig::default(),
        }
    }
}

impl RobotOptions {
    /// A builder seeded with the defaults.
    pub fn builder() -> RobotOptionsBuilder {
        RobotOptionsBuilder {
            options: RobotOptions::default(),
        }
    }
}

/// Validating builder for [`RobotOptions`]: every setter clamps its
/// input to the option's sane range, so no combination of calls can
/// produce a robot that fetches zero pages or spawns a thousand
/// threads.
#[derive(Debug, Clone)]
pub struct RobotOptionsBuilder {
    options: RobotOptions,
}

impl RobotOptionsBuilder {
    /// Page budget; clamped to at least 1.
    pub fn max_pages(mut self, pages: usize) -> Self {
        self.options.max_pages = pages.max(1);
        self
    }

    /// Redirect-chain hop limit; clamped to at most 64.
    pub fn max_redirects(mut self, hops: usize) -> Self {
        self.options.max_redirects = hops.min(64);
        self
    }

    /// Click-depth bound (0 crawls only the start page).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.options.max_depth = Some(depth);
        self
    }

    /// Parallel fetch slots for [`Robot::crawl_stack`]; clamped to
    /// 1..=64.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = jobs.clamp(1, 64);
        self
    }

    /// Whether to HEAD-validate off-site links.
    pub fn check_external(mut self, yes: bool) -> Self {
        self.options.check_external = yes;
        self
    }

    /// Lint configuration applied to each page.
    pub fn lint(mut self, config: LintConfig) -> Self {
        self.options.lint = config;
        self
    }

    /// Finish.
    pub fn build(self) -> RobotOptions {
        self.options
    }
}

/// One crawled page.
#[derive(Debug, Clone)]
pub struct CrawledPage {
    /// Final URL (after redirects).
    pub url: Url,
    /// Lint results for the page.
    pub diagnostics: Vec<Diagnostic>,
    /// Links found on the page.
    pub link_count: usize,
    /// Click depth from the start page (the start page is depth 0).
    ///
    /// §2 asks "How easy is your site to navigate?" and §3.5 notes that
    /// "smarter robots … generate navigational analysis of your site" —
    /// this is that analysis: BFS depth is the minimum number of clicks a
    /// visitor needs.
    pub depth: usize,
}

/// A dead or broken link discovered during the crawl.
#[derive(Debug, Clone)]
pub struct DeadLink {
    /// Page the link appeared on.
    pub page: Url,
    /// The reference as written.
    pub href: String,
    /// Why it is considered dead.
    pub reason: String,
}

/// What the robot found.
#[derive(Debug, Clone, Default)]
pub struct RobotReport {
    /// Every page fetched and linted.
    pub pages: Vec<CrawledPage>,
    /// Every broken link.
    pub dead_links: Vec<DeadLink>,
    /// Redirect hops followed.
    pub redirects_followed: usize,
    /// Crawl stopped early because `max_pages` was reached.
    pub truncated: bool,
}

impl RobotReport {
    /// Total diagnostics across all pages.
    pub fn total_diagnostics(&self) -> usize {
        self.pages.iter().map(|p| p.diagnostics.len()).sum()
    }

    /// The deepest click depth reached.
    pub fn max_depth(&self) -> usize {
        self.pages.iter().map(|p| p.depth).max().unwrap_or(0)
    }

    /// Page count per click depth: index `d` holds how many pages sit `d`
    /// clicks from the start.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0; self.max_depth() + 1];
        for page in &self.pages {
            histogram[page.depth] += 1;
        }
        if self.pages.is_empty() {
            histogram.clear();
        }
        histogram
    }
}

/// The poacher analog.
#[derive(Debug, Clone)]
pub struct Robot {
    options: RobotOptions,
    weblint: Weblint,
}

impl Robot {
    /// A robot with the given options.
    pub fn new(options: RobotOptions) -> Robot {
        Robot {
            weblint: Weblint::with_config(options.lint.clone()),
            options,
        }
    }

    /// Crawl breadth-first from `start`, staying on `start`'s host.
    pub fn crawl(&self, fetcher: &dyn Fetcher, start: &Url) -> RobotReport {
        self.crawl_impl(fetcher, start, None)
    }

    /// [`Robot::crawl`], with page linting handed to a [`LintService`] so
    /// the crawl (fetching, link extraction, HEAD validation) overlaps
    /// with linting. The report is identical to the sequential one: pages
    /// stay in crawl order and each page's diagnostics are collected from
    /// its service handle at the end.
    pub fn crawl_with(
        &self,
        fetcher: &dyn Fetcher,
        start: &Url,
        service: &LintService,
    ) -> RobotReport {
        self.crawl_impl(fetcher, start, Some(service))
    }

    /// [`Robot::crawl`] over a composed [`FetchStack`], with the
    /// adaptive scheduler engaged: each round issues a *batch* of
    /// frontier URLs — at most `min(jobs, per-host AIMD limit)` — to
    /// parallel fetch workers, then settles the results in issue order,
    /// so the report (and every stats table) is byte-identical run to
    /// run for a fixed stack seed. With `jobs = 1` the batches degrade
    /// to the exact sequential crawl.
    pub fn crawl_stack<F: Fetcher + Sync>(
        &self,
        stack: &FetchStack<F>,
        start: &Url,
    ) -> RobotReport {
        self.crawl_stack_impl(stack, start, None)
    }

    /// [`Robot::crawl_stack`] with page linting handed to a
    /// [`LintService`], overlapping fetching with linting.
    pub fn crawl_stack_with<F: Fetcher + Sync>(
        &self,
        stack: &FetchStack<F>,
        start: &Url,
        service: &LintService,
    ) -> RobotReport {
        self.crawl_stack_impl(stack, start, Some(service))
    }

    /// The sequential frontier: batch size 1, no pacing — byte-identical
    /// to the historical fetch-then-lint loop.
    fn crawl_impl(
        &self,
        fetcher: &dyn Fetcher,
        start: &Url,
        service: Option<&LintService>,
    ) -> RobotReport {
        let mut state = CrawlState::begin(start);
        // Without a service, pages lint as their bytes arrive off the
        // transport (one session, reused page to page); with one, whole
        // bodies still go to the worker pool.
        let mut session = service
            .is_none()
            .then(|| LintSession::with_config(self.options.lint.clone()));
        while let Some((url, depth)) = state.queue.pop_front() {
            if state.report.pages.len() >= self.options.max_pages {
                state.report.truncated = true;
                break;
            }
            let (outcome, redirects) = match session.as_mut() {
                Some(session) => {
                    follow_redirects_streaming(self.options.max_redirects, &url, fetcher, session)
                }
                None => follow_redirects(self.options.max_redirects, &url, |u| fetcher.get(u)),
            };
            self.apply_outcome(
                &FetcherProbe(fetcher),
                start,
                &url,
                depth,
                outcome,
                redirects,
                service,
                &mut state,
            );
        }
        state.finish()
    }

    /// The adaptive frontier scheduler. Determinism contract: every
    /// order-sensitive decision happens on this thread — hedge tokens
    /// are authorized at issue time against a snapshot of the breaker
    /// and budget, workers only read frozen state and run retry loops
    /// whose fault schedule depends solely on `(seed, url, attempt)`,
    /// and all breaker transitions plus AIMD feedback are settled here
    /// in issue order after the batch joins.
    fn crawl_stack_impl<F: Fetcher + Sync>(
        &self,
        stack: &FetchStack<F>,
        start: &Url,
        service: Option<&LintService>,
    ) -> RobotReport {
        let mut state = CrawlState::begin(start);
        let host = start.host.clone();
        loop {
            if state.queue.is_empty() {
                break;
            }
            if state.report.pages.len() >= self.options.max_pages {
                state.report.truncated = true;
                break;
            }
            // The batch never exceeds the page budget, so a fully
            // successful batch cannot overshoot `max_pages`.
            let remaining = self.options.max_pages - state.report.pages.len();
            let width = self
                .options
                .jobs
                .min(stack.pacer().limit(&host))
                .min(remaining)
                .min(state.queue.len())
                .max(1);
            let mut batch: Vec<FetchTask> = Vec::with_capacity(width);
            for _ in 0..width {
                let (url, depth) = state.queue.pop_front().expect("width <= queue.len()");
                let token = stack
                    .pacer()
                    .authorize(&url.host, stack.breaker_state(&url.host));
                batch.push(FetchTask::new(url, depth, token));
            }
            // Without a service, fetch workers lint their page before
            // the batch joins; the service path keeps pool submission.
            let lint = service.is_none().then_some(&self.options.lint);
            run_batch(self.options.max_redirects, stack, lint, &mut batch);
            for task in batch {
                self.settle_task(stack, start, task, service, &mut state);
            }
        }
        state.finish()
    }

    /// Settle one fetched task in issue order: resilience bookkeeping,
    /// pacer feedback, then the same report/lint/link processing the
    /// sequential crawl does.
    fn settle_task<F: Fetcher>(
        &self,
        stack: &FetchStack<F>,
        start: &Url,
        task: FetchTask,
        service: Option<&LintService>,
        state: &mut CrawlState,
    ) {
        for (hop_host, record) in &task.hops {
            stack.settle_hop(hop_host, record);
        }
        let host = task.url.host.as_str();
        stack
            .pacer()
            .settle_hedge(host, task.token, task.hedge_fired, task.hedge_won);
        stack.pacer().observe(
            host,
            Observation {
                clean: !task.bad,
                bad: task.bad,
                latency_us: task.cost_us,
            },
        );
        let (outcome, redirects) = task.outcome.expect("batch ran every task");
        self.apply_outcome(
            &StackProbe(stack),
            start,
            &task.url,
            task.depth,
            outcome,
            redirects,
            service,
            state,
        );
    }

    /// Fold one fetch outcome into the report: redirects, dead links,
    /// and — for a page — lint submission plus link validation.
    #[allow(clippy::too_many_arguments)]
    fn apply_outcome(
        &self,
        probe: &dyn HeadProbe,
        start: &Url,
        origin: &Url,
        depth: usize,
        outcome: FetchOutcome,
        redirects: usize,
        service: Option<&LintService>,
        state: &mut CrawlState,
    ) {
        state.report.redirects_followed += redirects;
        match outcome {
            FetchOutcome::Skip => {}
            FetchOutcome::Dead { href, reason } => state.report.dead_links.push(DeadLink {
                page: origin.clone(),
                href,
                reason,
            }),
            FetchOutcome::Page {
                url: final_url,
                body,
                diagnostics,
            } => {
                let diagnostics = match (diagnostics, service) {
                    // Already linted while the body streamed in.
                    (Some(diags), _) => diags,
                    // With a service attached, hand the body to a worker
                    // and keep crawling; the diagnostics slot is filled
                    // in afterwards.
                    (None, Some(service)) => {
                        match service.submit_with(body.clone(), Some(self.options.lint.clone())) {
                            Ok(handle) => {
                                state.pending.push((state.report.pages.len(), handle));
                                Vec::new()
                            }
                            Err(_) => self.weblint.check_string(&body),
                        }
                    }
                    (None, None) => self.weblint.check_string(&body),
                };
                let links = extract_links(&body);
                state.report.pages.push(CrawledPage {
                    url: final_url.clone(),
                    diagnostics,
                    link_count: links.len(),
                    depth,
                });
                self.validate_links(probe, start, &final_url, links, depth, state);
            }
        }
    }

    /// HEAD-validate a page's links, enqueueing crawlable same-site
    /// targets (depth permitting) and reporting the dead.
    fn validate_links(
        &self,
        probe: &dyn HeadProbe,
        start: &Url,
        final_url: &Url,
        links: Vec<Link>,
        depth: usize,
        state: &mut CrawlState,
    ) {
        let within_depth = self.options.max_depth.is_none_or(|limit| depth < limit);
        for link in links {
            match link.kind {
                LinkKind::Fragment | LinkKind::Mailto => continue,
                LinkKind::Local | LinkKind::External => {}
            }
            let target = final_url.join(&link.href);
            if target.same_site(start) {
                if state.enqueued.insert(target.to_string()) {
                    // Cheap HEAD before committing to a GET: dead links
                    // are reported here, non-HTML is HEAD-only.
                    match probe.probe(&target) {
                        (Status::Ok, ct) if ct.starts_with("text/html") => {
                            if within_depth {
                                state.queue.push_back((target, depth + 1));
                            }
                        }
                        (Status::Ok, _) => {}
                        (Status::Redirect(_), _) => {
                            if within_depth {
                                state.queue.push_back((target, depth + 1));
                            }
                        }
                        (Status::NotFound, _) => state.report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "404 Not Found".to_string(),
                        }),
                        (Status::ServerError, _) => state.report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "server error".to_string(),
                        }),
                        (Status::TimedOut, _) => state.report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "timed out".to_string(),
                        }),
                        (Status::Reset, _) => state.report.dead_links.push(DeadLink {
                            page: final_url.clone(),
                            href: link.href.clone(),
                            reason: "connection reset".to_string(),
                        }),
                    }
                }
            } else if self.options.check_external && state.head_checked.insert(target.to_string()) {
                match probe.probe(&target) {
                    (Status::NotFound, _) => state.report.dead_links.push(DeadLink {
                        page: final_url.clone(),
                        href: link.href.clone(),
                        reason: "404 Not Found (external)".to_string(),
                    }),
                    (Status::ServerError, _) => state.report.dead_links.push(DeadLink {
                        page: final_url.clone(),
                        href: link.href.clone(),
                        reason: "server error (external)".to_string(),
                    }),
                    (Status::TimedOut, _) => state.report.dead_links.push(DeadLink {
                        page: final_url.clone(),
                        href: link.href.clone(),
                        reason: "timed out (external)".to_string(),
                    }),
                    (Status::Reset, _) => state.report.dead_links.push(DeadLink {
                        page: final_url.clone(),
                        href: link.href.clone(),
                        reason: "connection reset (external)".to_string(),
                    }),
                    _ => {}
                }
            }
        }
    }
}

/// Mutable crawl bookkeeping shared by the sequential and adaptive
/// frontiers.
struct CrawlState {
    report: RobotReport,
    pending: Vec<(usize, JobHandle)>,
    queue: VecDeque<(Url, usize)>,
    enqueued: HashSet<String>,
    head_checked: HashSet<String>,
}

impl CrawlState {
    fn begin(start: &Url) -> CrawlState {
        let mut state = CrawlState {
            report: RobotReport::default(),
            pending: Vec::new(),
            queue: VecDeque::new(),
            enqueued: HashSet::new(),
            head_checked: HashSet::new(),
        };
        state.queue.push_back((start.clone(), 0));
        state.enqueued.insert(start.to_string());
        state
    }

    fn finish(mut self) -> RobotReport {
        for (index, handle) in self.pending {
            self.report.pages[index].diagnostics = handle.wait().unwrap_or_default();
        }
        self.report
    }
}

/// What following one queued URL produced, before any report
/// bookkeeping — so fetch workers can compute it off-thread and the
/// scheduler can apply it in issue order.
enum FetchOutcome {
    /// An HTML page at its post-redirect URL. `diagnostics` is filled
    /// when the fetch path already linted the body as it arrived (the
    /// streaming crawl and the fetch workers); `None` leaves linting to
    /// the settle side (service submission, or the fallback one-shot).
    Page {
        url: Url,
        body: String,
        diagnostics: Option<Vec<Diagnostic>>,
    },
    /// The chain ended somewhere dead; `href` is the final URL tried.
    Dead { href: String, reason: String },
    /// A definitive non-HTML answer: nothing to lint, nothing dead.
    Skip,
}

/// GET `url` following redirects up to the hop limit, classifying the
/// result. Returns the outcome plus the redirect hops taken.
fn follow_redirects(
    max_redirects: usize,
    url: &Url,
    mut get: impl FnMut(&Url) -> (Status, String, String),
) -> (FetchOutcome, usize) {
    let mut redirects = 0usize;
    let mut current = url.clone();
    for _ in 0..=max_redirects {
        match get(&current) {
            (Status::Ok, ct, body) if ct.starts_with("text/html") => {
                return (
                    FetchOutcome::Page {
                        url: current,
                        body,
                        diagnostics: None,
                    },
                    redirects,
                );
            }
            (Status::Ok, _, _) => return (FetchOutcome::Skip, redirects),
            (Status::Redirect(location), _, _) => {
                redirects += 1;
                current = current.join(&location);
            }
            (Status::NotFound, _, _) => {
                return (
                    FetchOutcome::Dead {
                        href: current.to_string(),
                        reason: "404 Not Found".to_string(),
                    },
                    redirects,
                )
            }
            (Status::ServerError, _, _) => {
                return (
                    FetchOutcome::Dead {
                        href: current.to_string(),
                        reason: "server error".to_string(),
                    },
                    redirects,
                )
            }
            (Status::TimedOut, _, _) => {
                return (
                    FetchOutcome::Dead {
                        href: current.to_string(),
                        reason: "timed out".to_string(),
                    },
                    redirects,
                )
            }
            (Status::Reset, _, _) => {
                return (
                    FetchOutcome::Dead {
                        href: current.to_string(),
                        reason: "connection reset".to_string(),
                    },
                    redirects,
                )
            }
        }
    }
    (
        FetchOutcome::Dead {
            href: current.to_string(),
            reason: "too many redirects".to_string(),
        },
        redirects,
    )
}

/// [`follow_redirects`], but each hop's body streams through `session`
/// as the transport delivers it, so the final page's lint finishes with
/// its fetch. A hop that turns out to be a redirect or a non-HTML answer
/// discards its partial stream.
fn follow_redirects_streaming(
    max_redirects: usize,
    url: &Url,
    fetcher: &dyn Fetcher,
    session: &mut LintSession,
) -> (FetchOutcome, usize) {
    let mut hop_diags: Vec<Diagnostic> = Vec::new();
    let (mut outcome, redirects) = follow_redirects(max_redirects, url, |current| {
        session.abort();
        hop_diags.clear();
        let mut body = Vec::new();
        let (status, content_type) = fetcher.get_streamed(current, &mut |chunk| {
            hop_diags.extend(session.feed(chunk));
            body.extend_from_slice(chunk);
        });
        (
            status,
            content_type,
            String::from_utf8_lossy(&body).into_owned(),
        )
    });
    match &mut outcome {
        FetchOutcome::Page { diagnostics, .. } => {
            hop_diags.extend(session.finish());
            *diagnostics = Some(std::mem::take(&mut hop_diags));
        }
        _ => session.abort(),
    }
    (outcome, redirects)
}

/// One frontier URL issued to a fetch worker, with everything the
/// scheduler needs to settle it afterwards.
struct FetchTask {
    url: Url,
    depth: usize,
    token: HedgeToken,
    outcome: Option<(FetchOutcome, usize)>,
    /// Per-hop resilience records, settled in issue order.
    hops: Vec<(String, HopRecord)>,
    /// Total virtual latency across hops (including a fired hedge).
    cost_us: u64,
    /// The task burned retries, was shed, or ended transiently failed.
    bad: bool,
    hedge_fired: bool,
    hedge_won: bool,
}

impl FetchTask {
    fn new(url: Url, depth: usize, token: HedgeToken) -> FetchTask {
        FetchTask {
            url,
            depth,
            token,
            outcome: None,
            hops: Vec::new(),
            cost_us: 0,
            bad: false,
            hedge_fired: false,
            hedge_won: false,
        }
    }
}

/// Run a batch of fetch tasks — inline when it is one task, otherwise
/// one scoped worker thread per task (the batch width is already capped
/// by `jobs` and the per-host limit).
fn run_batch<F: Fetcher + Sync>(
    max_redirects: usize,
    stack: &FetchStack<F>,
    lint: Option<&LintConfig>,
    batch: &mut [FetchTask],
) {
    if let [task] = batch {
        run_task(max_redirects, stack, lint, task);
        return;
    }
    std::thread::scope(|scope| {
        for task in batch.iter_mut() {
            scope.spawn(move || run_task(max_redirects, stack, lint, task));
        }
    });
}

/// Execute one fetch task on a worker: follow redirects through the
/// stack, recording per-hop resilience outcomes for deferred settling,
/// and fire the hedge if the token allows and the primary attempt came
/// back transiently failed *and* slow.
fn run_task<F: Fetcher>(
    max_redirects: usize,
    stack: &FetchStack<F>,
    lint: Option<&LintConfig>,
    task: &mut FetchTask,
) {
    let token = task.token;
    let mut hops: Vec<(String, HopRecord)> = Vec::new();
    let mut cost_us = 0u64;
    let mut bad = false;
    let mut fired = false;
    let mut won = false;
    let (outcome, redirects) = follow_redirects(max_redirects, &task.url, |current| {
        if !stack.frozen_allows(&current.host) {
            hops.push((current.host.clone(), HopRecord::Shed));
            bad = true;
            return (Status::ServerError, String::new(), String::new());
        }
        let (result, cost) = stack.attempt_get(current);
        cost_us += cost.virtual_us();
        let failed = transient(&result.0);
        if failed || cost.retries > 0 {
            bad = true;
        }
        if failed && token.granted && !fired && cost.virtual_us() >= token.threshold_us {
            // The primary is both failed and slow: spend the hedge — one
            // speculative attempt below the retry layer — and take its
            // answer if it is definitive.
            fired = true;
            cost_us += VIRTUAL_RTT_US;
            let hedge = stack.raw_get(current);
            if !transient(&hedge.0) {
                won = true;
                hops.push((
                    current.host.clone(),
                    HopRecord::Done {
                        failed: false,
                        retries: cost.retries,
                    },
                ));
                return hedge;
            }
        }
        hops.push((
            current.host.clone(),
            HopRecord::Done {
                failed,
                retries: cost.retries,
            },
        ));
        result
    });
    let mut outcome = outcome;
    if let (
        Some(config),
        FetchOutcome::Page {
            body, diagnostics, ..
        },
    ) = (lint, &mut outcome)
    {
        // Lint on the fetch worker, overlapping the rest of the batch:
        // the settle loop then just copies the result into the report.
        let mut session = LintSession::with_config(config.clone());
        let mut diags: Vec<Diagnostic> = Vec::new();
        for chunk in body.as_bytes().chunks(FETCH_CHUNK) {
            diags.extend(session.feed(chunk));
        }
        diags.extend(session.finish());
        *diagnostics = Some(diags);
    }
    task.outcome = Some((outcome, redirects));
    task.hops = hops;
    task.cost_us = cost_us;
    task.bad = bad;
    task.hedge_fired = fired;
    task.hedge_won = won;
}

/// HEAD transport used during link validation: the bare fetcher for the
/// sequential crawl, or the stack — guarded drive plus a pacing
/// observation — for the adaptive one.
trait HeadProbe {
    fn probe(&self, url: &Url) -> (Status, String);
}

struct FetcherProbe<'a>(&'a dyn Fetcher);

impl HeadProbe for FetcherProbe<'_> {
    fn probe(&self, url: &Url) -> (Status, String) {
        self.0.head(url)
    }
}

struct StackProbe<'a, F: Fetcher>(&'a FetchStack<F>);

impl<F: Fetcher> HeadProbe for StackProbe<'_, F> {
    fn probe(&self, url: &Url) -> (Status, String) {
        let (result, cost) = self.0.head_cost(url);
        let bad = cost.shed || cost.retries > 0 || transient(&result.0);
        self.0.pacer().observe(
            &url.host,
            Observation {
                clean: !bad,
                bad,
                latency_us: cost.virtual_us(),
            },
        );
        result
    }
}

impl Default for Robot {
    fn default() -> Robot {
        Robot::new(RobotOptions::default())
    }
}

/// Why a URL could not be checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The URL did not parse.
    BadUrl(String),
    /// 404.
    NotFound(String),
    /// 5xx.
    ServerError(String),
    /// Content type is not HTML.
    NotHtml(String),
    /// Redirect chain exceeded the hop limit.
    TooManyRedirects(String),
    /// The host timed out or reset the connection (transient transport
    /// failure, possibly after retries).
    Unreachable(String),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::BadUrl(u) => write!(f, "cannot parse URL {u}"),
            FetchError::NotFound(u) => write!(f, "{u}: 404 Not Found"),
            FetchError::ServerError(u) => write!(f, "{u}: server error"),
            FetchError::NotHtml(u) => write!(f, "{u} is not an HTML page"),
            FetchError::TooManyRedirects(u) => write!(f, "{u}: too many redirects"),
            FetchError::Unreachable(u) => write!(f, "{u}: host unreachable"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Fetch one URL (following up to five redirects) and lint it — the
/// paper's `check_url` method (§5.4): "The latter requires the LWP
/// modules… If you don't have LWP installed, you can still use weblint,
/// but the check_url method won't be available." Here the transport is a
/// [`Fetcher`] rather than LWP.
///
/// # Examples
///
/// ```
/// use weblint_site::{check_url, SimulatedWeb, WebFetcher};
/// use weblint_core::LintConfig;
///
/// let mut web = SimulatedWeb::new();
/// web.add_page("http://h/p.html", "<H1>x</H2>");
/// let diags = check_url(
///     &WebFetcher::new(&web),
///     "http://h/p.html",
///     &LintConfig::default(),
/// ).unwrap();
/// assert!(diags.iter().any(|d| d.id == "heading-mismatch"));
/// ```
pub fn check_url(
    fetcher: &dyn Fetcher,
    url: &str,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, FetchError> {
    let parsed = Url::parse(url).ok_or_else(|| FetchError::BadUrl(url.to_string()))?;
    let mut current = parsed;
    // Lint while the body arrives: each hop's bytes stream into the
    // session as the transport delivers them, so the final hop's
    // diagnostics are ready the moment the fetch completes.
    let mut session = LintSession::with_config(config.clone());
    for _ in 0..=5 {
        let mut diags: Vec<Diagnostic> = Vec::new();
        let (status, ct) =
            fetcher.get_streamed(&current, &mut |chunk| diags.extend(session.feed(chunk)));
        match status {
            Status::Ok if ct.starts_with("text/html") => {
                diags.extend(session.finish());
                return Ok(diags);
            }
            Status::Ok => return Err(FetchError::NotHtml(current.to_string())),
            Status::Redirect(location) => {
                session.abort();
                current = current.join(&location);
            }
            Status::NotFound => return Err(FetchError::NotFound(current.to_string())),
            Status::ServerError => return Err(FetchError::ServerError(current.to_string())),
            Status::TimedOut | Status::Reset => {
                return Err(FetchError::Unreachable(current.to_string()))
            }
        }
    }
    Err(FetchError::TooManyRedirects(current.to_string()))
}

// ---------------------------------------------------------------------
// Sharded, checkpointed crawling
// ---------------------------------------------------------------------

/// Durability knobs for [`Robot::crawl_sharded`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding `shard{N}.{epoch}.ckpt` files and the manifest.
    pub dir: PathBuf,
    /// Write a checkpoint whenever this many new pages have been
    /// crawled since the last one (plus always on graceful stop).
    pub every_pages: usize,
    /// Opaque token folded into the checkpoint fingerprint; callers put
    /// anything schedule-relevant that the robot cannot see here (fault
    /// spec, stack configuration, lint config).
    pub config_token: String,
}

/// Chaos injection for the sharded crawl, exercised by `tests/chaos.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardChaos {
    /// Panic shard `.0` midway through wave `.1` — once; the coordinator
    /// must detect the death, respawn the shard from its pre-wave state,
    /// and finish with a byte-identical report.
    pub panic_shard: Option<(usize, usize)>,
    /// Abort the crawl (no final checkpoint flush — a simulated
    /// `SIGKILL`) right after the Nth periodic checkpoint is written.
    pub kill_after_checkpoints: Option<usize>,
}

/// Options for [`Robot::crawl_sharded`].
#[derive(Debug, Clone, Default)]
pub struct ShardedOptions {
    /// Number of shards to partition hosts across (clamped to 1..=64).
    pub shards: usize,
    /// Seed recorded in checkpoints; fold the same seed into the stacks
    /// `make_stack` builds.
    pub seed: u64,
    /// Durability: where and how often to checkpoint. `None` crawls
    /// in-memory only.
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from `checkpoint.dir` if it holds a valid checkpoint.
    pub resume: bool,
    /// Cooperative stop flag, checked between waves: when it goes true
    /// the crawl flushes a final checkpoint and returns `Paused`.
    pub stop: Option<Arc<AtomicBool>>,
    /// Fault injection for the chaos suite.
    pub chaos: ShardChaos,
}

/// How a sharded crawl ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardedOutcome {
    /// The frontier drained: every reachable page within budget and
    /// depth was crawled.
    Complete,
    /// Stopped early — page budget exhausted or the stop flag was
    /// raised — with the frontier checkpointed for resumption.
    Paused,
    /// Chaos killed the process mid-crawl (no final flush).
    Killed,
}

/// What [`Robot::crawl_sharded`] produced.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The merged report: pages sorted by `(depth, url)`, dead links by
    /// `(page, href, reason)` — a canonical order independent of shard
    /// timing.
    pub report: RobotReport,
    /// Per-shard stack telemetry, in shard order.
    pub telemetry: Vec<(usize, StackTelemetry)>,
    /// Shard count the crawl ran with.
    pub shards: usize,
    /// Waves executed (including waves replayed from a checkpoint).
    pub waves: usize,
    /// Shard threads that died and were respawned.
    pub shard_deaths: usize,
    /// The wave a resumed crawl picked up from, if it resumed.
    pub resumed_from_wave: Option<usize>,
    /// How the crawl ended.
    pub outcome: ShardedOutcome,
}

/// Coordinator-side working state for one shard.
#[derive(Default)]
struct ShardWork {
    frontier: ShardFrontier,
    probes: ShardFrontier,
    pages: Vec<CrawledPage>,
    dead_links: Vec<DeadLink>,
    redirects: u64,
    stack: StackState,
}

impl ShardWork {
    fn restore(state: ShardState) -> ShardWork {
        ShardWork {
            frontier: ShardFrontier::restore(state.visited, state.frontier),
            probes: ShardFrontier::restore(state.head_checked, state.probes),
            pages: state.pages,
            dead_links: state.dead_links,
            redirects: state.redirects,
            stack: state.stack,
        }
    }

    fn snapshot(&self, shard: usize) -> ShardState {
        ShardState {
            shard,
            visited: self.frontier.visited(),
            frontier: self.frontier.pending_candidates(),
            probes: self.probes.pending_candidates(),
            head_checked: self.probes.visited(),
            pages: self.pages.clone(),
            dead_links: self.dead_links.clone(),
            redirects: self.redirects,
            stack: self.stack.clone(),
        }
    }
}

/// One shard's work for one wave, extracted by the coordinator.
struct WaveAssignment {
    /// Crawl candidates, sorted by `(depth, url)`.
    candidates: Vec<Candidate>,
    /// Link-validation probes (HEAD only), sorted by `(depth, url)`.
    probes: Vec<Candidate>,
    /// Chaos: panic midway through this wave.
    inject_panic: bool,
}

impl WaveAssignment {
    fn is_empty(&self) -> bool {
        self.candidates.is_empty() && self.probes.is_empty()
    }
}

/// What one shard produced in one wave, sent back over the reply
/// channel and merged by the coordinator in shard order.
#[derive(Default)]
struct WaveDelta {
    pages: Vec<CrawledPage>,
    dead_links: Vec<DeadLink>,
    /// Federation links to crawl next wave (routed to their owner
    /// shard's frontier).
    discovered: Vec<Candidate>,
    /// Links to HEAD-validate but never crawl: external targets and
    /// same-site links past the depth bound.
    probe_requests: Vec<Candidate>,
    redirects: u64,
    stack: StackState,
}

/// Where a dead candidate is attributed: the page it was discovered on,
/// or itself when it is a seed.
fn attribution(candidate: &Candidate) -> (Url, String) {
    if candidate.via.is_empty() {
        (candidate.url.clone(), candidate.url.to_string())
    } else {
        (
            Url::parse(&candidate.via).unwrap_or_else(|| candidate.url.clone()),
            candidate.href.clone(),
        )
    }
}

/// The dead-link reason for a probe answer, `None` when the target is
/// alive (or redirecting — good enough for a HEAD check).
fn dead_reason(status: &Status, external: bool) -> Option<String> {
    let base = match status {
        Status::NotFound => "404 Not Found",
        Status::ServerError => "server error",
        Status::TimedOut => "timed out",
        Status::Reset => "connection reset",
        Status::Ok | Status::Redirect(_) => return None,
    };
    Some(if external {
        format!("{base} (external)")
    } else {
        base.to_string()
    })
}

/// Run one shard's wave on its own thread: HEAD-validate probes,
/// classify candidates, then GET + lint pages in bounded batches with
/// the same issue-order settling discipline as [`Robot::crawl_stack`].
/// Everything order-sensitive happens in `(depth, url)` order, so the
/// delta is a pure function of (assignment, restored stack state).
fn run_shard_wave<F: Fetcher + Sync>(
    options: &RobotOptions,
    federation: &BTreeSet<String>,
    stack: &FetchStack<F>,
    weblint: &Weblint,
    assignment: &WaveAssignment,
) -> WaveDelta {
    let mut delta = WaveDelta::default();
    let probe = StackProbe(stack);
    for request in &assignment.probes {
        let (status, _) = probe.probe(&request.url);
        let external = !federation.contains(&request.url.host);
        if let Some(reason) = dead_reason(&status, external) {
            let (page, href) = attribution(request);
            delta.dead_links.push(DeadLink { page, href, reason });
        }
    }
    // HEAD-classify candidates: pages and redirects go on to the GET
    // phase, assets are done, the dead are reported.
    let mut gets: Vec<&Candidate> = Vec::new();
    for candidate in &assignment.candidates {
        match probe.probe(&candidate.url) {
            (Status::Ok, ct) if ct.starts_with("text/html") => gets.push(candidate),
            (Status::Ok, _) => {}
            (Status::Redirect(_), _) => gets.push(candidate),
            (status, _) => {
                if let Some(reason) = dead_reason(&status, false) {
                    let (page, href) = attribution(candidate);
                    delta.dead_links.push(DeadLink { page, href, reason });
                }
            }
        }
    }
    if assignment.inject_panic && gets.is_empty() {
        panic!("injected shard death");
    }
    // GET in batches: take candidates from the front (never reorder)
    // while each host stays under its frozen AIMD limit and the batch
    // under `jobs`; settle in issue order.
    let mut index = 0usize;
    let mut first_batch = true;
    while index < gets.len() {
        let batch_start = index;
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        let mut batch: Vec<FetchTask> = Vec::new();
        while index < gets.len() && batch.len() < options.jobs {
            let host = gets[index].url.host.as_str();
            let limit = stack.pacer().limit(host).max(1);
            let seen = counts.get(host).copied().unwrap_or(0);
            if !batch.is_empty() && seen >= limit {
                break;
            }
            *counts.entry(host).or_insert(0) += 1;
            let url = gets[index].url.clone();
            let token = stack
                .pacer()
                .authorize(&url.host, stack.breaker_state(&url.host));
            batch.push(FetchTask::new(url, gets[index].depth, token));
            index += 1;
        }
        run_batch(
            options.max_redirects,
            stack,
            Some(&options.lint),
            &mut batch,
        );
        for (offset, task) in batch.into_iter().enumerate() {
            settle_sharded_task(
                options,
                federation,
                stack,
                weblint,
                gets[batch_start + offset],
                task,
                &mut delta,
            );
        }
        if assignment.inject_panic && first_batch {
            // Mid-wave: some of this wave's work is settled, the rest is
            // in flight. The coordinator must rerun the whole wave from
            // the pre-wave snapshot.
            panic!("injected shard death");
        }
        first_batch = false;
    }
    delta.stack = stack.export_state();
    delta
}

/// Settle one sharded GET in issue order: resilience + pacer feedback,
/// then lint, then route the page's links.
fn settle_sharded_task<F: Fetcher>(
    options: &RobotOptions,
    federation: &BTreeSet<String>,
    stack: &FetchStack<F>,
    weblint: &Weblint,
    candidate: &Candidate,
    task: FetchTask,
    delta: &mut WaveDelta,
) {
    for (hop_host, record) in &task.hops {
        stack.settle_hop(hop_host, record);
    }
    let host = task.url.host.as_str();
    stack
        .pacer()
        .settle_hedge(host, task.token, task.hedge_fired, task.hedge_won);
    stack.pacer().observe(
        host,
        Observation {
            clean: !task.bad,
            bad: task.bad,
            latency_us: task.cost_us,
        },
    );
    let (outcome, redirects) = task.outcome.expect("batch ran every task");
    delta.redirects += redirects as u64;
    match outcome {
        FetchOutcome::Skip => {}
        FetchOutcome::Dead { href, reason } => delta.dead_links.push(DeadLink {
            page: task.url.clone(),
            href,
            reason,
        }),
        FetchOutcome::Page {
            url: final_url,
            body,
            diagnostics,
        } => {
            let diagnostics = diagnostics.unwrap_or_else(|| weblint.check_string(&body));
            let links = extract_links(&body);
            delta.pages.push(CrawledPage {
                url: final_url.clone(),
                diagnostics,
                link_count: links.len(),
                depth: candidate.depth,
            });
            let within_depth = options
                .max_depth
                .is_none_or(|limit| candidate.depth < limit);
            for link in links {
                match link.kind {
                    LinkKind::Fragment | LinkKind::Mailto => continue,
                    LinkKind::Local | LinkKind::External => {}
                }
                let target = final_url.join(&link.href);
                let next = Candidate {
                    url: target,
                    depth: candidate.depth + 1,
                    via: final_url.to_string(),
                    href: link.href.clone(),
                };
                if federation.contains(&next.url.host) {
                    if within_depth {
                        delta.discovered.push(next);
                    } else {
                        // Past the depth bound: validated, not crawled.
                        delta.probe_requests.push(next);
                    }
                } else if options.check_external {
                    delta.probe_requests.push(next);
                }
            }
        }
    }
}

impl Robot {
    /// Crawl `starts` partitioned across `opts.shards` shard threads,
    /// each owning the hosts that hash to it ([`shard_of`]) and running
    /// its own [`FetchStack`] built by `make_stack(shard)`.
    ///
    /// The crawl proceeds in coordinator-barriered *waves* (see
    /// [`crate::ShardFrontier`]); discovered links cross shards through
    /// the coordinator, and the merged report uses a canonical
    /// `(depth, url)` order — so for a fixed seed the output is
    /// byte-identical run to run, across shard deaths, and across a
    /// kill + resume, which the chaos suite asserts.
    ///
    /// With `opts.checkpoint` set, every shard's full state (visited
    /// set, pending frontier, probe queue, pages, per-host stack state)
    /// is written to a per-shard checkpoint file every
    /// `every_pages` pages and on graceful stop; `opts.resume` picks an
    /// interrupted crawl back up from the newest intact epoch.
    pub fn crawl_sharded<F, M>(
        &self,
        starts: &[Url],
        make_stack: M,
        opts: &ShardedOptions,
    ) -> Result<ShardedReport, CheckpointError>
    where
        F: Fetcher + Sync,
        M: Fn(usize) -> FetchStack<F> + Sync,
    {
        let shards = opts.shards.clamp(1, 64);
        let federation: BTreeSet<String> = starts.iter().map(|u| u.host.clone()).collect();
        let fingerprint = {
            let mut parts: Vec<String> = vec![
                format!("shards={shards}"),
                format!("seed={}", opts.seed),
                format!("redirects={}", self.options.max_redirects),
                format!("depth={:?}", self.options.max_depth),
                format!("jobs={}", self.options.jobs),
                format!("external={}", self.options.check_external),
                opts.checkpoint
                    .as_ref()
                    .map(|c| c.config_token.clone())
                    .unwrap_or_default(),
            ];
            let mut sorted_starts: Vec<String> = starts.iter().map(|u| u.to_string()).collect();
            sorted_starts.sort();
            parts.extend(sorted_starts);
            let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
            checkpoint::fingerprint(&refs)
        };

        let mut work: Vec<ShardWork> = (0..shards).map(|_| ShardWork::default()).collect();
        let mut wave = 0usize;
        let mut resumed_from_wave = None;
        let mut resumed_complete = false;
        let mut truncated = false;
        if opts.resume {
            if let Some(cfg) = &opts.checkpoint {
                if let Some(loaded) = load_checkpoint(&cfg.dir)? {
                    if loaded.meta.fingerprint != fingerprint {
                        return Err(CheckpointError::Incompatible(format!(
                            "checkpoint in {} was written by a different crawl configuration",
                            cfg.dir.display()
                        )));
                    }
                    wave = loaded.meta.wave;
                    truncated = loaded.meta.truncated;
                    resumed_complete = loaded.meta.complete;
                    resumed_from_wave = Some(wave);
                    for state in loaded.shards {
                        let shard = state.shard;
                        work[shard] = ShardWork::restore(state);
                    }
                }
            }
        }
        if resumed_from_wave.is_none() {
            for start in starts {
                let candidate = Candidate::seed(start.clone());
                let owner = shard_of(&candidate.url.host, shards);
                work[owner].frontier.admit(candidate);
            }
        }

        let mut shard_deaths = 0usize;
        let mut checkpoints_written = 0usize;
        let mut chaos_panic = opts.chaos.panic_shard;
        let mut last_checkpoint_pages: usize = work.iter().map(|w| w.pages.len()).sum();
        let mut outcome = ShardedOutcome::Complete;
        let mut killed = false;

        loop {
            if resumed_complete {
                break;
            }
            if opts
                .stop
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::SeqCst))
            {
                outcome = ShardedOutcome::Paused;
                break;
            }
            let pages_total: usize = work.iter().map(|w| w.pages.len()).sum();
            let pending_pages: usize = work.iter().map(|w| w.frontier.pending()).sum();
            let pending_probes: usize = work.iter().map(|w| w.probes.pending()).sum();
            if pending_pages == 0 && pending_probes == 0 {
                outcome = ShardedOutcome::Complete;
                break;
            }
            let remaining = self.options.max_pages.saturating_sub(pages_total);
            if remaining == 0 && pending_probes == 0 {
                truncated = true;
                outcome = ShardedOutcome::Paused;
                break;
            }

            // Global budget cut: the first `remaining` pending
            // candidates in (depth, url) order run this wave; the rest
            // stay in their frontiers (and survive a pause).
            let mut keys: Vec<(usize, String, usize)> = Vec::new();
            for (i, w) in work.iter().enumerate() {
                for (depth, url) in w.frontier.pending_keys() {
                    keys.push((depth, url.to_string(), i));
                }
            }
            keys.sort();
            keys.truncate(remaining);
            let mut assigned: Vec<Vec<String>> = (0..shards).map(|_| Vec::new()).collect();
            for (_, url, i) in keys {
                assigned[i].push(url);
            }
            let mut assignments: Vec<WaveAssignment> = Vec::with_capacity(shards);
            for (i, w) in work.iter_mut().enumerate() {
                let candidates = w.frontier.extract(&assigned[i]);
                let probe_urls: Vec<String> = w
                    .probes
                    .pending_candidates()
                    .iter()
                    .map(|c| c.url.to_string())
                    .collect();
                let probes = w.probes.extract(&probe_urls);
                assignments.push(WaveAssignment {
                    candidates,
                    probes,
                    inject_panic: chaos_panic == Some((i, wave)),
                });
            }

            // Run the wave: one scoped thread per shard with work,
            // deltas returning over a bounded reply channel. A shard
            // that panics is respawned from its pre-wave state (which
            // the coordinator still owns) until the wave completes.
            let mut deltas: Vec<Option<WaveDelta>> = (0..shards).map(|_| None).collect();
            let mut to_run: Vec<usize> = (0..shards)
                .filter(|&i| !assignments[i].is_empty())
                .collect();
            while !to_run.is_empty() {
                let (tx, rx) = mpsc::sync_channel::<(usize, WaveDelta)>(to_run.len());
                let options = &self.options;
                let federation_ref = &federation;
                let make_stack_ref = &make_stack;
                let work_ref = &work;
                let assignments_ref = &assignments;
                let panicked: Vec<usize> = std::thread::scope(|scope| {
                    let handles: Vec<(usize, std::thread::ScopedJoinHandle<'_, ()>)> = to_run
                        .iter()
                        .map(|&i| {
                            let tx = tx.clone();
                            let handle = scope.spawn(move || {
                                let stack = make_stack_ref(i);
                                stack.restore_state(&work_ref[i].stack);
                                let weblint = Weblint::with_config(options.lint.clone());
                                let delta = run_shard_wave(
                                    options,
                                    federation_ref,
                                    &stack,
                                    &weblint,
                                    &assignments_ref[i],
                                );
                                let _ = tx.send((i, delta));
                            });
                            (i, handle)
                        })
                        .collect();
                    handles
                        .into_iter()
                        .filter_map(|(i, handle)| handle.join().is_err().then_some(i))
                        .collect()
                });
                drop(tx);
                for (i, delta) in rx.try_iter() {
                    deltas[i] = Some(delta);
                }
                shard_deaths += panicked.len();
                for &i in &panicked {
                    // Respawn without the injected fault: the retry is
                    // the recovery, and it must reproduce the wave.
                    assignments[i].inject_panic = false;
                    if chaos_panic.is_some_and(|(shard, w)| shard == i && w == wave) {
                        chaos_panic = None;
                    }
                }
                to_run = panicked;
            }

            // Merge in shard order; route discoveries to their owners.
            let mut discovered_all: Vec<Candidate> = Vec::new();
            let mut probes_all: Vec<Candidate> = Vec::new();
            for (i, slot) in deltas.iter_mut().enumerate() {
                let Some(delta) = slot.take() else { continue };
                let w = &mut work[i];
                w.pages.extend(delta.pages);
                w.dead_links.extend(delta.dead_links);
                w.redirects += delta.redirects;
                w.stack = delta.stack;
                discovered_all.extend(delta.discovered);
                probes_all.extend(delta.probe_requests);
            }
            for candidate in discovered_all {
                let owner = shard_of(&candidate.url.host, shards);
                // A URL queued as a probe that turns out crawlable is
                // promoted to a full candidate.
                work[owner]
                    .probes
                    .remove_pending(&candidate.url.to_string());
                work[owner].frontier.admit(candidate);
            }
            for candidate in probes_all {
                let owner = shard_of(&candidate.url.host, shards);
                if work[owner].frontier.has_seen(&candidate.url.to_string()) {
                    continue;
                }
                work[owner].probes.admit(candidate);
            }
            wave += 1;

            if let Some(cfg) = &opts.checkpoint {
                let pages_now: usize = work.iter().map(|w| w.pages.len()).sum();
                if pages_now.saturating_sub(last_checkpoint_pages) >= cfg.every_pages.max(1) {
                    self.save_sharded(
                        cfg,
                        &work,
                        shards,
                        wave,
                        opts.seed,
                        fingerprint,
                        false,
                        false,
                    )?;
                    last_checkpoint_pages = pages_now;
                    checkpoints_written += 1;
                    if opts
                        .chaos
                        .kill_after_checkpoints
                        .is_some_and(|n| checkpoints_written >= n)
                    {
                        outcome = ShardedOutcome::Killed;
                        killed = true;
                        break;
                    }
                }
            }
        }

        if let Some(cfg) = &opts.checkpoint {
            if !killed {
                let complete = outcome == ShardedOutcome::Complete;
                self.save_sharded(
                    cfg,
                    &work,
                    shards,
                    wave,
                    opts.seed,
                    fingerprint,
                    truncated,
                    complete,
                )?;
            }
        }

        // Canonical merge: sorted, so the report is independent of
        // shard count and thread timing.
        let mut report = RobotReport {
            truncated,
            ..RobotReport::default()
        };
        let mut telemetry = Vec::with_capacity(shards);
        for (i, w) in work.iter().enumerate() {
            report.pages.extend(w.pages.iter().cloned());
            report.dead_links.extend(w.dead_links.iter().cloned());
            report.redirects_followed += w.redirects as usize;
            let stack = make_stack(i);
            stack.restore_state(&w.stack);
            telemetry.push((i, stack.telemetry()));
        }
        report.pages.sort_by_key(|a| (a.depth, a.url.to_string()));
        report.dead_links.sort_by(|a, b| {
            (a.page.to_string(), &a.href, &a.reason).cmp(&(b.page.to_string(), &b.href, &b.reason))
        });
        Ok(ShardedReport {
            report,
            telemetry,
            shards,
            waves: wave,
            shard_deaths,
            resumed_from_wave,
            outcome,
        })
    }

    /// Snapshot every shard and publish one checkpoint epoch.
    #[allow(clippy::too_many_arguments)]
    fn save_sharded(
        &self,
        cfg: &CheckpointConfig,
        work: &[ShardWork],
        shards: usize,
        wave: usize,
        seed: u64,
        fingerprint: u64,
        truncated: bool,
        complete: bool,
    ) -> Result<(), CheckpointError> {
        let pages_total: usize = work.iter().map(|w| w.pages.len()).sum();
        let meta = CheckpointMeta {
            shards,
            wave,
            seed,
            fingerprint,
            pages_total: pages_total as u64,
            truncated,
            complete,
        };
        let states: Vec<ShardState> = work
            .iter()
            .enumerate()
            .map(|(i, w)| w.snapshot(i))
            .collect();
        save_checkpoint(&cfg.dir, &meta, &states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(body: &str) -> String {
        format!(
            "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n\
             <HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>{body}</BODY></HTML>\n"
        )
    }

    fn start() -> Url {
        Url::parse("http://site/index.html").unwrap()
    }

    #[test]
    fn crawls_reachable_pages() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"a.html\">a</A> <A HREF=\"d/b.html\">b</A></P>"),
        );
        web.add_page("http://site/a.html", page("<P>leaf</P>"));
        web.add_page(
            "http://site/d/b.html",
            page("<P><A HREF=\"../a.html\">back</A></P>"),
        );
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 3);
        assert!(report.dead_links.is_empty());
        assert!(!report.truncated);
    }

    #[test]
    fn reports_dead_links_via_head() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"gone.html\">x</A></P>"),
        );
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.dead_links.len(), 1);
        assert_eq!(report.dead_links[0].href, "gone.html");
        assert!(report.dead_links[0].reason.contains("404"));
    }

    #[test]
    fn follows_redirects() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"moved.html\">x</A></P>"),
        );
        web.add_redirect("http://site/moved.html", "http://site/new.html");
        web.add_page("http://site/new.html", page("<P>landed</P>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 2);
        assert_eq!(report.redirects_followed, 1);
        assert!(report.dead_links.is_empty());
    }

    #[test]
    fn redirect_loops_bounded() {
        let mut web = SimulatedWeb::new();
        web.add_redirect("http://site/index.html", "http://site/index.html");
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert!(report
            .dead_links
            .iter()
            .any(|d| d.reason.contains("too many redirects")));
    }

    #[test]
    fn stays_on_site_but_head_checks_external() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page(
                "<P><A HREF=\"http://other/ok.html\">a</A>\
                  <A HREF=\"http://other/gone.html\">b</A></P>",
            ),
        );
        web.add_page("http://other/ok.html", page("<P>elsewhere</P>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        // Only the start page is fetched; the external 404 is reported.
        assert_eq!(report.pages.len(), 1);
        assert_eq!(report.dead_links.len(), 1);
        assert!(report.dead_links[0].reason.contains("external"));
    }

    #[test]
    fn external_checking_can_be_disabled() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"http://other/gone.html\">b</A></P>"),
        );
        let robot = Robot::new(RobotOptions {
            check_external: false,
            ..RobotOptions::default()
        });
        let report = robot.crawl(&WebFetcher::new(&web), &start());
        assert!(report.dead_links.is_empty());
    }

    #[test]
    fn max_pages_truncates() {
        let mut web = SimulatedWeb::new();
        // A chain of pages, each linking to the next.
        for i in 0..10 {
            let body = page(&format!("<P><A HREF=\"p{}.html\">next</A></P>", i + 1));
            let path = if i == 0 {
                "http://site/index.html".to_string()
            } else {
                format!("http://site/p{i}.html")
            };
            web.add_page(&path, body);
        }
        let robot = Robot::new(RobotOptions {
            max_pages: 3,
            ..RobotOptions::default()
        });
        let report = robot.crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 3);
        assert!(report.truncated);
    }

    #[test]
    fn lints_every_fetched_page() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"bad.html\">x</A></P>"),
        );
        web.add_page("http://site/bad.html", page("<H1>oops</H2>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.total_diagnostics(), 1);
        let bad = report
            .pages
            .iter()
            .find(|p| p.url.path == "/bad.html")
            .unwrap();
        assert_eq!(bad.diagnostics[0].id, "heading-mismatch");
    }

    #[test]
    fn crawl_with_service_matches_sequential() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"a.html\">a</A> <A HREF=\"gone.html\">x</A></P>"),
        );
        web.add_page("http://site/a.html", page("<H1>oops</H2>"));
        let robot = Robot::default();
        let sequential = robot.crawl(&WebFetcher::new(&web), &start());
        let service = LintService::with_config(LintConfig::default());
        let fanned = robot.crawl_with(&WebFetcher::new(&web), &start(), &service);
        assert_eq!(fanned.pages.len(), sequential.pages.len());
        for (a, b) in fanned.pages.iter().zip(&sequential.pages) {
            assert_eq!(a.url, b.url);
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!((a.link_count, a.depth), (b.link_count, b.depth));
        }
        assert_eq!(fanned.dead_links.len(), sequential.dead_links.len());
        assert_eq!(service.metrics().jobs_completed, 2);
    }

    #[test]
    fn depth_tracks_click_distance() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"a.html\">a</A> <A HREF=\"b.html\">b</A></P>"),
        );
        web.add_page(
            "http://site/a.html",
            page("<P><A HREF=\"deep.html\">x</A></P>"),
        );
        web.add_page("http://site/b.html", page("<P>leaf</P>"));
        web.add_page("http://site/deep.html", page("<P>deep</P>"));
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.max_depth(), 2);
        assert_eq!(report.depth_histogram(), vec![1, 2, 1]);
        let deep = report
            .pages
            .iter()
            .find(|p| p.url.path == "/deep.html")
            .unwrap();
        assert_eq!(deep.depth, 2);
    }

    #[test]
    fn empty_crawl_has_empty_histogram() {
        let web = SimulatedWeb::new();
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert!(report.depth_histogram().is_empty());
        assert_eq!(report.max_depth(), 0);
    }

    #[test]
    fn store_fetcher_serves_a_memstore() {
        use crate::store::MemStore;
        let mut store = MemStore::new();
        store.insert("index.html", page("<P><A HREF=\"sub/a.html\">a</A></P>"));
        store.insert(
            "sub/a.html",
            page(
                "<P><IMG SRC=\"pic.gif\" ALT=\"p\" \
                                         WIDTH=\"1\" HEIGHT=\"1\"></P>",
            ),
        );
        store.insert("sub/pic.gif", "GIF89a");
        let fetcher = StoreFetcher::new(&store, "local");
        let report = Robot::default().crawl(&fetcher, &fetcher.start_url());
        assert_eq!(report.pages.len(), 2);
        assert!(report.dead_links.is_empty());
        // Content types derived from extension:
        let (status, ct) = fetcher.head(&Url::parse("http://local/sub/pic.gif").unwrap());
        assert_eq!(status, Status::Ok);
        assert_eq!(ct, "image/gif");
        // Other hosts 404:
        let (status, _) = fetcher.head(&Url::parse("http://elsewhere/x.html").unwrap());
        assert_eq!(status, Status::NotFound);
    }

    #[test]
    fn check_url_follows_redirects_and_errors() {
        let mut web = SimulatedWeb::new();
        web.add_redirect("http://h/old.html", "/new.html");
        web.add_page("http://h/new.html", page("<H2>wrong</H3>"));
        web.add("http://h/pic.gif", crate::web::Resource::asset("image/gif"));
        let f = WebFetcher::new(&web);
        let config = LintConfig::default();
        let diags = check_url(&f, "http://h/old.html", &config).unwrap();
        assert!(diags.iter().any(|d| d.id == "heading-mismatch"));
        assert!(matches!(
            check_url(&f, "http://h/gone.html", &config),
            Err(FetchError::NotFound(_))
        ));
        assert!(matches!(
            check_url(&f, "http://h/pic.gif", &config),
            Err(FetchError::NotHtml(_))
        ));
        assert!(matches!(
            check_url(&f, "::", &config),
            Err(FetchError::BadUrl(_))
        ));
    }

    #[test]
    fn check_url_streams_across_chunk_boundaries() {
        // A body several FETCH_CHUNK windows wide, with findings in the
        // middle and at the end, so tags straddle feed boundaries. The
        // streamed result must be byte-identical to the one-shot check.
        let mut body = String::from("<H1>top</H2>");
        for i in 0..600 {
            body.push_str(&format!("<P>paragraph number {i} for padding</P>\n"));
        }
        body.push_str("<IMG SRC=\"x.gif\"><B>tail");
        assert!(body.len() > 2 * FETCH_CHUNK, "body must span chunks");
        let mut web = SimulatedWeb::new();
        web.add_page("http://h/big.html", body.clone());
        let config = LintConfig::default();
        let streamed = check_url(&WebFetcher::new(&web), "http://h/big.html", &config).unwrap();
        let one_shot = Weblint::with_config(config).check_string(&body);
        assert_eq!(streamed, one_shot);
        assert!(streamed.iter().any(|d| d.id == "img-alt"));
    }

    #[test]
    fn crawl_lints_during_fetch_and_matches_one_shot() {
        // The sequential crawl lints pages as their bytes stream in; the
        // report must match linting each page after the fact.
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<H1>x</H2><P><A HREF=\"a.html\">a</A></P>"),
        );
        web.add_redirect("http://site/a.html", "http://site/b.html");
        web.add_page("http://site/b.html", page("<IMG SRC=\"p.gif\">"));
        let robot = Robot::default();
        let report = robot.crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 2);
        let weblint = Weblint::with_config(RobotOptions::default().lint.clone());
        for crawled in &report.pages {
            let (_, _, body) = WebFetcher::new(&web).get(&crawled.url);
            assert_eq!(crawled.diagnostics, weblint.check_string(&body));
        }
        assert!(report.pages[0]
            .diagnostics
            .iter()
            .any(|d| d.id == "heading-mismatch"));
    }

    #[test]
    fn builder_validates_every_knob() {
        let options = RobotOptions::builder()
            .max_pages(0)
            .max_redirects(1_000)
            .max_depth(2)
            .jobs(0)
            .check_external(false)
            .build();
        assert_eq!(options.max_pages, 1, "zero pages clamps to one");
        assert_eq!(options.max_redirects, 64, "hop limit is capped");
        assert_eq!(options.max_depth, Some(2));
        assert_eq!(options.jobs, 1, "zero jobs clamps to one");
        assert!(!options.check_external);
        let wide = RobotOptions::builder().jobs(10_000).build();
        assert_eq!(wide.jobs, 64, "jobs are capped");
        let default = RobotOptions::default();
        assert_eq!(default.jobs, 1);
        assert_eq!(default.max_depth, None);
    }

    #[test]
    fn max_depth_bounds_the_crawl_but_still_validates_links() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><A HREF=\"a.html\">a</A></P>"),
        );
        web.add_page(
            "http://site/a.html",
            page("<P><A HREF=\"b.html\">b</A> <A HREF=\"gone.html\">x</A></P>"),
        );
        web.add_page("http://site/b.html", page("<P>leaf</P>"));
        let robot = Robot::new(RobotOptions::builder().max_depth(1).build());
        let report = robot.crawl(&WebFetcher::new(&web), &start());
        // Depth 0 and 1 are crawled; b.html (depth 2) is not — but the
        // dead link on the depth-1 page is still reported.
        assert_eq!(report.pages.len(), 2);
        assert_eq!(report.max_depth(), 1);
        assert_eq!(report.dead_links.len(), 1);
        assert!(!report.truncated);
    }

    fn shared_site() -> crate::web::SharedWeb {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page(
                "<P><A HREF=\"a.html\">a</A> <A HREF=\"b.html\">b</A> \
                 <A HREF=\"gone.html\">x</A></P>",
            ),
        );
        web.add_page(
            "http://site/a.html",
            page("<H1>oops</H2><P><A HREF=\"c.html\">c</A></P>"),
        );
        web.add_page("http://site/b.html", page("<P>leaf</P>"));
        web.add_page("http://site/c.html", page("<P>deep</P>"));
        crate::web::SharedWeb::new(web)
    }

    #[test]
    fn crawl_stack_matches_sequential_crawl() {
        let robot = Robot::new(RobotOptions::builder().jobs(4).build());
        let sequential = {
            let web = shared_site();
            robot.crawl(&web, &start())
        };
        let stack = FetchStack::new(shared_site()).adaptive_defaults().build();
        let adaptive = robot.crawl_stack(&stack, &start());
        assert_eq!(adaptive.pages.len(), sequential.pages.len());
        for (a, b) in adaptive.pages.iter().zip(&sequential.pages) {
            assert_eq!(a.url, b.url, "page order must match BFS");
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!((a.link_count, a.depth), (b.link_count, b.depth));
        }
        assert_eq!(adaptive.dead_links.len(), sequential.dead_links.len());
        assert_eq!(adaptive.redirects_followed, sequential.redirects_followed);
        // The pacer saw the crawl: every GET was authorized and observed.
        let pacing = stack.pacer().stats();
        let (host, site) = &pacing.hosts[0];
        assert_eq!(host, "site");
        assert_eq!(site.authorized, 4, "index + a + b + c");
        assert_eq!(site.clean + site.bad, 4 + 4, "4 GETs + 4 link HEADs");
    }

    #[test]
    fn crawl_stack_with_service_matches_and_truncates() {
        let robot = Robot::new(RobotOptions::builder().jobs(3).max_pages(2).build());
        let stack = FetchStack::new(shared_site()).adaptive_defaults().build();
        let service = LintService::with_config(LintConfig::default());
        let report = robot.crawl_stack_with(&stack, &start(), &service);
        assert_eq!(report.pages.len(), 2, "page budget holds under batching");
        assert!(report.truncated);
        assert!(report.pages.iter().all(|p| p.url.host == "site"));
        // The service really linted: a.html's heading mismatch surfaced.
        assert_eq!(report.total_diagnostics(), 1);
    }

    #[test]
    fn non_html_targets_head_only() {
        let mut web = SimulatedWeb::new();
        web.add_page(
            "http://site/index.html",
            page("<P><IMG SRC=\"logo.gif\" ALT=\"l\" WIDTH=\"1\" HEIGHT=\"1\"></P>"),
        );
        web.add(
            "http://site/logo.gif",
            crate::web::Resource::asset("image/gif"),
        );
        let report = Robot::default().crawl(&WebFetcher::new(&web), &start());
        assert_eq!(report.pages.len(), 1);
        assert!(report.dead_links.is_empty());
        assert_eq!(web.stats().heads, 1);
    }
}
