//! Site-level checking: weblint's `-R` mode and the *poacher* robot.
//!
//! "The `-R` switch instructs weblint to recurse in all directories in the
//! local filesystem, so that a set of pages or entire site can be checked
//! with one command. The switch also enables additional warnings, checking
//! whether directories have index files, and reporting orphan pages" (§4.5).
//! "A robot can be used to invoke weblint on all accessible pages on a
//! site … I have written one, called poacher … Poacher also performs basic
//! link validation."
//!
//! This crate provides:
//!
//! * [`SiteChecker`] — the `-R` mode: lint every page in a [`PageStore`],
//!   check local hyperlinks, find orphan pages and index-less directories.
//! * [`SimulatedWeb`] — an in-memory HTTP-like fabric (hosts, redirects,
//!   404s, latency model) standing in for the live web + LWP (see
//!   DESIGN.md, substitutions).
//! * [`Robot`] — the poacher analog: breadth-first traversal over a
//!   [`Fetcher`], linting every page it can reach and HEAD-validating the
//!   links it cannot follow.
//!
//! # Examples
//!
//! ```
//! use weblint_site::{MemStore, SiteChecker};
//! use weblint_core::LintConfig;
//!
//! let mut store = MemStore::new();
//! store.insert("index.html", "<P><A HREF=\"gone.html\">x</A></P>");
//! let checker = SiteChecker::new(LintConfig::default());
//! let report = checker.check(&store);
//! assert!(report
//!     .site_diagnostics
//!     .iter()
//!     .any(|(_, d)| d.id == "bad-link"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod checkpoint;
mod fault;
mod frontier;
mod links;
mod pacing;
mod robot;
mod stack;
mod store;
mod url;
mod web;
mod weight;

pub use checker::{SiteChecker, SiteReport};
pub use checkpoint::{
    decode_shard, encode_shard, load_checkpoint, save_checkpoint, CheckpointError, CheckpointMeta,
    LoadedCheckpoint, ShardState,
};
pub use fault::{
    BreakerPolicy, BreakerSnapshot, BreakerState, FaultKind, FaultLayerState, FaultSpec,
    FaultStats, FaultyWeb, HostFaults, HostResilience, RequestCost, ResilienceHostState,
    ResilienceLayerState, ResilienceStats, ResilientFetcher, RetryPolicy, VIRTUAL_RTT_US,
};
pub use frontier::{shard_of, Candidate, ShardFrontier};
pub use links::{extract_links, resolve_local, Link, LinkKind};
pub use pacing::{
    AimdPolicy, HedgePolicy, HedgeToken, HostPacing, Observation, Pacer, PacerHostState,
    PacingLayerState, PacingStats,
};
pub use robot::{
    check_url, CheckpointConfig, CrawledPage, DeadLink, FetchError, Fetcher, FnFetcher, Robot,
    RobotOptions, RobotOptionsBuilder, RobotReport, ShardChaos, ShardedOptions, ShardedOutcome,
    ShardedReport, StoreFetcher, WebFetcher,
};
pub use stack::{FetchStack, FetchStackBuilder, StackState, StackTelemetry};
pub use store::{DirStore, MemStore, PageStore};
pub use url::Url;
pub use web::{Resource, SharedWeb, SimulatedWeb, Status, WebStats};
pub use weight::{weigh_html, weigh_page, PageWeight, MODEM_SPEEDS};
