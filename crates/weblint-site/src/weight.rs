//! Page-weight analysis.
//!
//! §3.6: the WebTechs meta service "can also generate a weight for your
//! web page, including estimated download times for different modem
//! speeds", and §2 asks "How usable is your site by people accessing it
//! via a modem?". This module computes the weight of a page — HTML plus
//! the assets it pulls in — and the period-correct modem estimates.

use crate::links::{extract_links, resolve_local};
use crate::store::PageStore;

/// The modem speeds a 1998 audience cared about, as (label, bits/second).
pub const MODEM_SPEEDS: &[(&str, u64)] = &[
    ("14.4k", 14_400),
    ("28.8k", 28_800),
    ("33.6k", 33_600),
    ("56k", 56_000),
    ("ISDN 128k", 128_000),
];

/// The weight of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageWeight {
    /// Bytes of HTML.
    pub html_bytes: usize,
    /// Bytes of referenced same-site assets that exist in the store
    /// (images, stylesheets); each asset is counted once.
    pub asset_bytes: usize,
    /// Number of distinct assets counted.
    pub asset_count: usize,
}

impl PageWeight {
    /// Total payload a first-time visitor downloads.
    pub fn total_bytes(&self) -> usize {
        self.html_bytes + self.asset_bytes
    }

    /// Estimated seconds to download at `bits_per_second`, assuming the
    /// usual 10 bits on the wire per payload byte (8 data + overhead).
    pub fn seconds_at(&self, bits_per_second: u64) -> f64 {
        (self.total_bytes() as f64 * 10.0) / bits_per_second as f64
    }

    /// The full modem table, as (label, seconds) rows.
    pub fn modem_table(&self) -> Vec<(&'static str, f64)> {
        MODEM_SPEEDS
            .iter()
            .map(|&(label, bps)| (label, self.seconds_at(bps)))
            .collect()
    }
}

/// Weigh a page held in a store: its HTML plus every distinct same-site
/// asset it references (by `IMG SRC`, `BODY BACKGROUND`, …).
pub fn weigh_page(store: &dyn PageStore, path: &str, html: &str) -> PageWeight {
    let mut seen = std::collections::HashSet::new();
    let mut asset_bytes = 0usize;
    for link in extract_links(html) {
        if link.kind != crate::links::LinkKind::Local {
            continue;
        }
        // Only embedded resources add to the page weight, not hyperlinks.
        if !matches!(
            link.source,
            "IMG SRC" | "BODY BACKGROUND" | "SCRIPT SRC" | "EMBED SRC"
        ) {
            continue;
        }
        if let Some(target) = resolve_local(path, &link.href) {
            if seen.insert(target.clone()) {
                if let Some(content) = store.read(&target) {
                    asset_bytes += content.len();
                }
            }
        }
    }
    PageWeight {
        html_bytes: html.len(),
        asset_bytes,
        asset_count: seen.len(),
    }
}

/// Weigh bare HTML with no asset store (assets count zero bytes but are
/// still tallied) — what a gateway checking pasted text can do.
pub fn weigh_html(html: &str) -> PageWeight {
    struct Empty;
    impl PageStore for Empty {
        fn pages(&self) -> Vec<String> {
            Vec::new()
        }
        fn read(&self, _: &str) -> Option<String> {
            None
        }
        fn exists(&self, _: &str) -> bool {
            false
        }
    }
    weigh_page(&Empty, "page.html", html)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn html_only_weight() {
        let w = weigh_html("<P>hello</P>");
        assert_eq!(w.html_bytes, 12);
        assert_eq!(w.asset_bytes, 0);
        assert_eq!(w.total_bytes(), 12);
    }

    #[test]
    fn assets_counted_once() {
        let mut store = MemStore::new();
        let html = "<P><IMG SRC=\"logo.gif\" ALT=\"l\">\
                    <IMG SRC=\"logo.gif\" ALT=\"l\">\
                    <IMG SRC=\"photo.gif\" ALT=\"p\"></P>";
        store.insert("index.html", html);
        store.insert("logo.gif", "x".repeat(1000));
        store.insert("photo.gif", "y".repeat(500));
        let w = weigh_page(&store, "index.html", html);
        assert_eq!(w.asset_count, 2);
        assert_eq!(w.asset_bytes, 1500);
    }

    #[test]
    fn hyperlinks_do_not_weigh() {
        let mut store = MemStore::new();
        store.insert("big.html", "z".repeat(100_000));
        let html = "<P><A HREF=\"big.html\">big</A></P>";
        let w = weigh_page(&store, "index.html", html);
        assert_eq!(w.asset_bytes, 0);
    }

    #[test]
    fn modem_math() {
        let w = PageWeight {
            html_bytes: 14_400,
            asset_bytes: 0,
            asset_count: 0,
        };
        // 14,400 bytes * 10 bits / 14,400 bps = 10 seconds.
        assert!((w.seconds_at(14_400) - 10.0).abs() < 1e-9);
        let table = w.modem_table();
        assert_eq!(table.len(), MODEM_SPEEDS.len());
        assert!(
            table[0].1 > table.last().unwrap().1,
            "faster modem, less time"
        );
    }

    #[test]
    fn relative_asset_paths_resolve() {
        let mut store = MemStore::new();
        store.insert("img/pic.gif", "g".repeat(64));
        let html = "<P><IMG SRC=\"../img/pic.gif\" ALT=\"p\"></P>";
        let w = weigh_page(&store, "docs/page.html", html);
        assert_eq!(w.asset_bytes, 64);
    }
}
