//! Fault injection and resilience over any [`Fetcher`].
//!
//! The paper's poacher and `-R` mode exist because the real web fails:
//! hosts stall, connections drop, pages arrive truncated (§3.5 wants
//! robots that "handle redirects" and survive dead links). The simulated
//! web is a perfect oracle, so this module makes it imperfect on demand —
//! and teaches the crawl to cope:
//!
//! * [`FaultyWeb`] — a decorator that injects *deterministic, seeded*
//!   faults into any transport: added latency, timeouts, transient 5xx,
//!   connection resets, and truncated bodies. Same seed, same spec, same
//!   request sequence → byte-identical fault schedule.
//! * [`ResilientFetcher`] — bounded retries with exponential backoff and
//!   deterministic jitter, plus a per-host circuit breaker
//!   (closed → open → half-open) so a dying host degrades to fast
//!   failures instead of hammering it on every link.
//!
//! Both keep per-host statistics so every injected fault is accounted
//! for: a transient fault either burns a retry or becomes a final
//! failure, and the chaos suite asserts exactly that balance.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Mutex;

use weblint_service::fnv1a;

use crate::robot::Fetcher;
use crate::url::Url;
use crate::web::Status;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The request succeeds but the (simulated) wire is slow.
    Latency,
    /// The request times out: [`Status::TimedOut`].
    Timeout,
    /// The host answers a transient 5xx: [`Status::ServerError`].
    ServerError,
    /// The connection is reset mid-request: [`Status::Reset`].
    Reset,
    /// A GET succeeds but the body arrives cut off halfway.
    Truncate,
}

impl FaultKind {
    /// Every kind, in spec order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Latency,
        FaultKind::Timeout,
        FaultKind::ServerError,
        FaultKind::Reset,
        FaultKind::Truncate,
    ];

    /// The spec-string name (`latency`, `timeout`, `5xx`, `reset`,
    /// `truncate`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Latency => "latency",
            FaultKind::Timeout => "timeout",
            FaultKind::ServerError => "5xx",
            FaultKind::Reset => "reset",
            FaultKind::Truncate => "truncate",
        }
    }
}

/// What to inject and how often.
///
/// Parsed from the CLI's `-faults` spec: `RATE%` or
/// `RATE%:KIND+KIND+…`, e.g. `20%` (every kind at 20%) or
/// `5%:timeout+5xx`. A trailing `@HOST` confines injection to one host
/// (`50%@flaky`, `50%:timeout@flaky`) so a multi-host workload can have
/// exactly one struggling host.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Percent of requests that receive a fault (0–100).
    pub rate_percent: u8,
    /// Kinds to draw from when a request is faulted.
    pub kinds: Vec<FaultKind>,
    /// Simulated microseconds a [`FaultKind::Latency`] fault adds.
    pub added_latency_us: u64,
    /// Only fault requests to this host (every host when `None`).
    pub host: Option<String>,
}

impl FaultSpec {
    /// Every fault kind at the given rate.
    pub fn all(rate_percent: u8) -> FaultSpec {
        FaultSpec {
            rate_percent: rate_percent.min(100),
            kinds: FaultKind::ALL.to_vec(),
            added_latency_us: 250_000,
            host: None,
        }
    }

    /// [`FaultSpec::all`], confined to one host.
    pub fn all_at(rate_percent: u8, host: &str) -> FaultSpec {
        FaultSpec {
            host: Some(host.to_ascii_lowercase()),
            ..FaultSpec::all(rate_percent)
        }
    }

    /// Parse a CLI spec: `20%`, `20`, `20%:timeout+reset`, or any of
    /// those with a trailing `@HOST`.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let (spec, host) = match spec.rsplit_once('@') {
            Some((s, h)) if !h.trim().is_empty() => (s, Some(h.trim().to_ascii_lowercase())),
            Some(_) => return Err("fault spec names an empty @host".to_string()),
            None => (spec, None),
        };
        let (rate_part, kinds_part) = match spec.split_once(':') {
            Some((r, k)) => (r, Some(k)),
            None => (spec, None),
        };
        let rate = rate_part.trim().trim_end_matches('%');
        let rate_percent: u8 = rate
            .parse()
            .ok()
            .filter(|&r| r <= 100)
            .ok_or_else(|| format!("bad fault rate `{rate_part}' (want 0-100, e.g. 20%)"))?;
        let mut out = FaultSpec::all(rate_percent);
        if let Some(kinds_part) = kinds_part {
            let mut kinds = Vec::new();
            for name in kinds_part.split('+') {
                let kind = FaultKind::ALL
                    .into_iter()
                    .find(|k| k.name() == name.trim())
                    .ok_or_else(|| {
                        format!(
                            "unknown fault kind `{}' (want {})",
                            name.trim(),
                            FaultKind::ALL.map(FaultKind::name).join(", ")
                        )
                    })?;
                if !kinds.contains(&kind) {
                    kinds.push(kind);
                }
            }
            if kinds.is_empty() {
                return Err("fault spec names no kinds".to_string());
            }
            out.kinds = kinds;
        }
        out.host = host;
        Ok(out)
    }

    /// [`FaultSpec::parse`] for the CLIs: unknown fault-kind tokens
    /// degrade to warnings (matching the unknown-check-id convention)
    /// instead of aborting the whole invocation. Structural errors — a
    /// bad rate, an empty `@host` — still fail. If *every* named kind is
    /// unknown the spec falls back to all kinds, with a warning saying
    /// so.
    pub fn parse_lenient(spec: &str) -> Result<(FaultSpec, Vec<String>), String> {
        if let Ok(parsed) = FaultSpec::parse(spec) {
            return Ok((parsed, Vec::new()));
        }
        let (body, host) = match spec.rsplit_once('@') {
            Some((s, h)) if !h.trim().is_empty() => (s, Some(h.trim().to_ascii_lowercase())),
            Some(_) => return Err("fault spec names an empty @host".to_string()),
            None => (spec, None),
        };
        let (rate_part, kinds_part) = match body.split_once(':') {
            Some((r, k)) => (r, Some(k)),
            None => (body, None),
        };
        let rate = rate_part.trim().trim_end_matches('%');
        let rate_percent: u8 = rate
            .parse()
            .ok()
            .filter(|&r| r <= 100)
            .ok_or_else(|| format!("bad fault rate `{rate_part}' (want 0-100, e.g. 20%)"))?;
        let valid = FaultKind::ALL.map(FaultKind::name).join(", ");
        let mut out = FaultSpec::all(rate_percent);
        let mut warnings = Vec::new();
        if let Some(kinds_part) = kinds_part {
            let mut kinds = Vec::new();
            for name in kinds_part.split('+') {
                let name = name.trim();
                match FaultKind::ALL.into_iter().find(|k| k.name() == name) {
                    Some(kind) => {
                        if !kinds.contains(&kind) {
                            kinds.push(kind);
                        }
                    }
                    None => warnings.push(format!(
                        "ignoring unknown fault kind `{name}' (valid kinds: {valid})"
                    )),
                }
            }
            if kinds.is_empty() {
                warnings.push(format!(
                    "no valid fault kinds in `{kinds_part}'; injecting every kind ({valid})"
                ));
            } else {
                out.kinds = kinds;
            }
        }
        out.host = host;
        Ok((out, warnings))
    }
}

/// Simulated round-trip cost of one transport attempt, in microseconds.
/// Matches the simulated web's wire model so virtual latencies estimated
/// by the resilience layer line up with [`crate::WebStats::simulated_us`].
pub const VIRTUAL_RTT_US: u64 = 20_000;

/// SplitMix64: the fault schedule's deterministic hash-to-random step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-host injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostFaults {
    /// Requests (GET + HEAD) that reached this host through the decorator.
    pub requests: u64,
    /// Latency faults injected.
    pub latency: u64,
    /// Timeouts injected.
    pub timeouts: u64,
    /// Transient 5xx injected.
    pub server_errors: u64,
    /// Connection resets injected.
    pub resets: u64,
    /// Bodies truncated.
    pub truncated: u64,
    /// Simulated microseconds of added latency.
    pub added_latency_us: u64,
}

impl HostFaults {
    /// Faults of every kind injected at this host.
    pub fn injected(&self) -> u64 {
        self.latency + self.timeouts + self.server_errors + self.resets + self.truncated
    }

    /// Injected faults that present as request failures (a success-path
    /// fault — latency, truncation — is not one).
    pub fn transient_failures(&self) -> u64 {
        self.timeouts + self.server_errors + self.resets
    }
}

/// Per-host fault accounting, sorted by host for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// `(host, counters)` pairs in host order.
    pub hosts: Vec<(String, HostFaults)>,
}

impl FaultStats {
    /// Total faults injected across all hosts.
    pub fn injected_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.injected()).sum()
    }

    /// Total requests seen across all hosts.
    pub fn requests_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.requests).sum()
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault injection: {} fault(s) over {} request(s)",
            self.injected_total(),
            self.requests_total()
        )?;
        for (host, h) in &self.hosts {
            write!(
                f,
                "\n  {host}: {} of {} request(s) faulted \
                 ({} latency, {} timeout, {} 5xx, {} reset, {} truncated)",
                h.injected(),
                h.requests,
                h.latency,
                h.timeouts,
                h.server_errors,
                h.resets,
                h.truncated
            )?;
        }
        Ok(())
    }
}

struct FaultState {
    /// Per-URL request counter: the "attempt" axis of the schedule, so a
    /// retry of the same URL rolls fresh dice while the overall schedule
    /// stays independent of cross-URL ordering.
    attempts: HashMap<String, u64>,
    /// Per-host counters, kept ordered so a stats snapshot is already
    /// sorted and never needs a per-call sort.
    hosts: BTreeMap<String, HostFaults>,
}

/// A [`Fetcher`] decorator that injects deterministic, seeded faults.
///
/// The fault decision for a request is a pure function of
/// `(seed, url, per-url attempt number)` — it does not depend on the
/// order in which *other* URLs are fetched, so a crawl's fault schedule
/// is reproducible even when fetch order changes elsewhere.
///
/// # Examples
///
/// ```
/// use weblint_site::{FaultSpec, FaultyWeb, Fetcher, SimulatedWeb, Url, WebFetcher};
///
/// let mut web = SimulatedWeb::new();
/// web.add_page("http://h/p.html", "<P>hi</P>");
/// let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(100), 7);
/// let (status, _, _) = faulty.get(&Url::parse("http://h/p.html").unwrap());
/// // Every request is faulted at 100%; the kind depends on the seed.
/// assert_eq!(faulty.stats().injected_total(), 1);
/// # let _ = status;
/// ```
pub struct FaultyWeb<F> {
    inner: F,
    spec: FaultSpec,
    seed: u64,
    state: Mutex<FaultState>,
}

impl<F> FaultyWeb<F> {
    /// Decorate `inner` with the given spec and seed.
    pub fn new(inner: F, spec: FaultSpec, seed: u64) -> FaultyWeb<F> {
        FaultyWeb {
            inner,
            spec,
            seed,
            state: Mutex::new(FaultState {
                attempts: HashMap::new(),
                hosts: BTreeMap::new(),
            }),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Per-host injection counters so far: a pre-sorted snapshot (the
    /// counters live in an ordered map, so no per-call sort or re-sort
    /// can drift between renders).
    pub fn stats(&self) -> FaultStats {
        let state = self.state.lock().unwrap();
        FaultStats {
            hosts: state.hosts.iter().map(|(h, c)| (h.clone(), *c)).collect(),
        }
    }

    /// Roll the dice for one request. Counts the request; counts the
    /// fault too unless it is [`FaultKind::Truncate`], which only counts
    /// once actually applied to a non-empty GET body (see `get`).
    fn decide(&self, url: &Url, head: bool) -> Option<FaultKind> {
        let mut state = self.state.lock().unwrap();
        let key = url.to_string();
        let attempt = {
            let n = state.attempts.entry(key.clone()).or_insert(0);
            *n += 1;
            *n
        };
        let host = state.hosts.entry(url.host.clone()).or_default();
        host.requests += 1;
        if self.spec.rate_percent == 0 || self.spec.kinds.is_empty() {
            return None;
        }
        if let Some(only) = &self.spec.host {
            if *only != url.host {
                return None;
            }
        }
        let roll = splitmix64(
            self.seed ^ fnv1a(key.as_bytes()) ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        if roll % 100 >= u64::from(self.spec.rate_percent) {
            return None;
        }
        let kind = self.spec.kinds[((roll >> 32) as usize) % self.spec.kinds.len()];
        match kind {
            // Truncation cannot apply to a HEAD; the request passes clean.
            FaultKind::Truncate if head => return None,
            FaultKind::Truncate => {}
            FaultKind::Latency => {
                host.latency += 1;
                host.added_latency_us += self.spec.added_latency_us;
            }
            FaultKind::Timeout => host.timeouts += 1,
            FaultKind::ServerError => host.server_errors += 1,
            FaultKind::Reset => host.resets += 1,
        }
        Some(kind)
    }

    fn count_truncated(&self, host: &str) {
        let mut state = self.state.lock().unwrap();
        state.hosts.entry(host.to_string()).or_default().truncated += 1;
    }

    /// Snapshot the layer's mutable state — per-URL attempt counters and
    /// per-host fault counters — for checkpointing. Restoring this into a
    /// fresh layer with the same spec and seed resumes the exact fault
    /// schedule, because every decision is a pure function of
    /// `(seed, url, attempt)`.
    pub fn export_state(&self) -> FaultLayerState {
        let state = self.state.lock().unwrap();
        let mut attempts: Vec<(String, u64)> = state
            .attempts
            .iter()
            .map(|(u, n)| (u.clone(), *n))
            .collect();
        attempts.sort();
        FaultLayerState {
            attempts,
            hosts: state.hosts.iter().map(|(h, c)| (h.clone(), *c)).collect(),
        }
    }

    /// Overwrite the layer's mutable state from a checkpoint snapshot.
    pub fn restore_state(&self, snapshot: &FaultLayerState) {
        let mut state = self.state.lock().unwrap();
        state.attempts = snapshot.attempts.iter().cloned().collect();
        state.hosts = snapshot.hosts.iter().cloned().collect();
    }
}

/// Checkpointable state of a [`FaultyWeb`] layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLayerState {
    /// Per-URL request counters, sorted by URL.
    pub attempts: Vec<(String, u64)>,
    /// Per-host fault counters, sorted by host.
    pub hosts: Vec<(String, HostFaults)>,
}

/// Cut `body` roughly in half on a character boundary.
fn truncate_body(body: &str) -> String {
    let mut cut = body.len() / 2;
    while !body.is_char_boundary(cut) {
        cut -= 1;
    }
    body[..cut].to_string()
}

impl<F: Fetcher> Fetcher for FaultyWeb<F> {
    fn head(&self, url: &Url) -> (Status, String) {
        match self.decide(url, true) {
            Some(FaultKind::Timeout) => (Status::TimedOut, String::new()),
            Some(FaultKind::Reset) => (Status::Reset, String::new()),
            Some(FaultKind::ServerError) => (Status::ServerError, String::new()),
            // Latency only slows the wire; the answer is the real one.
            Some(FaultKind::Latency) | Some(FaultKind::Truncate) | None => self.inner.head(url),
        }
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        match self.decide(url, false) {
            Some(FaultKind::Timeout) => (Status::TimedOut, String::new(), String::new()),
            Some(FaultKind::Reset) => (Status::Reset, String::new(), String::new()),
            Some(FaultKind::ServerError) => (Status::ServerError, String::new(), String::new()),
            Some(FaultKind::Truncate) => {
                let (status, ct, body) = self.inner.get(url);
                if status == Status::Ok && !body.is_empty() {
                    self.count_truncated(&url.host);
                    (status, ct, truncate_body(&body))
                } else {
                    (status, ct, body)
                }
            }
            Some(FaultKind::Latency) | None => self.inner.get(url),
        }
    }
}

/// Retry knobs for [`ResilientFetcher`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts).
    pub max_retries: u32,
    /// First backoff, in simulated microseconds; doubles per retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_us: 10_000,
            max_backoff_us: 160_000,
        }
    }
}

/// Circuit-breaker knobs for [`ResilientFetcher`].
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive request failures (retries exhausted) that open the
    /// breaker for a host.
    pub failure_threshold: u32,
    /// Requests failed fast while open before one probe is let through
    /// (the request-count analog of a cooldown timer — the simulated web
    /// has no wall clock).
    pub cooldown_requests: u32,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown_requests: 8,
        }
    }
}

/// Breaker state machine, per host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed { failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

/// The externally visible circuit-breaker state of a host, for layers
/// that modulate their behaviour on it (the pacing module suppresses
/// hedges entirely unless a host's breaker is closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Requests flow normally (also the state of a never-seen host).
    #[default]
    Closed,
    /// Requests are being shed without touching the transport.
    Open,
    /// The next request is (or just was) a recovery probe.
    HalfOpen,
}

/// What one driven request cost the resilience layer: how many retries
/// it burned and how much virtual backoff it accumulated. The pacing
/// layer turns this into a latency observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestCost {
    /// Retries performed after the first attempt.
    pub retries: u32,
    /// Virtual microseconds spent backing off between attempts.
    pub backoff_us: u64,
    /// The request never reached the transport (breaker open).
    pub shed: bool,
}

impl RequestCost {
    /// The request's total virtual latency: one RTT per attempt plus all
    /// backoff — the feedback signal for per-host latency estimation.
    pub fn virtual_us(&self) -> u64 {
        if self.shed {
            return 0;
        }
        self.backoff_us + u64::from(self.retries + 1) * VIRTUAL_RTT_US
    }
}

/// Per-host resilience counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostResilience {
    /// Requests attempted against this host (fast failures included).
    pub requests: u64,
    /// Requests that ended in a definitive answer (2xx/3xx/404).
    pub successes: u64,
    /// Requests that stayed transiently failed after every retry.
    pub failures: u64,
    /// Individual retries performed.
    pub retries: u64,
    /// Simulated microseconds spent backing off (with jitter).
    pub backoff_us: u64,
    /// Times the breaker tripped open.
    pub breaker_opens: u64,
    /// Requests failed fast while the breaker was open.
    pub fast_failures: u64,
    /// Half-open probe requests let through.
    pub probes: u64,
}

/// Per-host resilience accounting, sorted by host.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResilienceStats {
    /// `(host, counters)` pairs in host order.
    pub hosts: Vec<(String, HostResilience)>,
}

impl ResilienceStats {
    /// Total retries across all hosts.
    pub fn retries_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.retries).sum()
    }

    /// Total requests that failed after every retry.
    pub fn failures_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.failures).sum()
    }
}

impl fmt::Display for ResilienceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resilience: {} retrie(s), {} request(s) failed after retries",
            self.retries_total(),
            self.failures_total()
        )?;
        for (host, h) in &self.hosts {
            write!(
                f,
                "\n  {host}: {} ok / {} failed of {} request(s), {} retrie(s) \
                 ({:.1}ms backoff), breaker opened {} time(s) \
                 ({} fast-fail(s), {} probe(s))",
                h.successes,
                h.failures,
                h.requests,
                h.retries,
                h.backoff_us as f64 / 1000.0,
                h.breaker_opens,
                h.fast_failures,
                h.probes
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct HostState {
    breaker: Option<Breaker>,
    stats: HostResilience,
}

/// A host's breaker position, flattened for checkpointing (the internal
/// state machine carries its counters along).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerSnapshot {
    /// The host has never been driven (no breaker allocated yet).
    #[default]
    Unset,
    /// Closed, with the current consecutive-failure count.
    Closed {
        /// Consecutive request failures so far.
        failures: u32,
    },
    /// Open, shedding requests.
    Open {
        /// Requests left to shed before the half-open probe.
        remaining: u32,
    },
    /// Waiting on (or just admitted) the recovery probe.
    HalfOpen,
}

/// Checkpointable state of a [`ResilientFetcher`] layer: one entry per
/// host, sorted by host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceLayerState {
    /// Per-host counters and breaker positions.
    pub hosts: Vec<ResilienceHostState>,
}

/// One host's checkpointed resilience state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceHostState {
    /// The host — stored alongside the counters so the vector is
    /// self-contained.
    pub host: String,
    /// The host's counters.
    pub stats: HostResilience,
    /// The host's breaker position.
    pub breaker: BreakerSnapshot,
}

/// Whether a status is worth retrying: the host itself misbehaved, as
/// opposed to answering definitively (2xx/3xx/404 are answers).
pub(crate) fn transient(status: &Status) -> bool {
    matches!(
        status,
        Status::ServerError | Status::TimedOut | Status::Reset
    )
}

/// A [`Fetcher`] wrapper adding bounded retries (exponential backoff with
/// deterministic jitter) and a per-host circuit breaker.
///
/// Backoff is *virtual*: the simulated web has no wall clock, so waits
/// accumulate into [`HostResilience::backoff_us`] instead of sleeping,
/// keeping crawls fast and byte-deterministic.
///
/// While a host's breaker is open, requests fail fast with
/// [`Status::ServerError`] (no transport call) until
/// [`BreakerPolicy::cooldown_requests`] have been shed; the next request
/// is a half-open probe — success closes the breaker, failure reopens it.
///
/// # Examples
///
/// ```
/// use weblint_site::{Fetcher, ResilientFetcher, SimulatedWeb, Url, WebFetcher};
///
/// let mut web = SimulatedWeb::new();
/// web.add_page("http://h/p.html", "<P>hi</P>");
/// let fetcher = ResilientFetcher::with_defaults(WebFetcher::new(&web), 7);
/// let (status, _, body) = fetcher.get(&Url::parse("http://h/p.html").unwrap());
/// assert_eq!(status, weblint_site::Status::Ok);
/// assert!(body.contains("hi"));
/// ```
pub struct ResilientFetcher<F> {
    inner: F,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    seed: u64,
    hosts: Mutex<BTreeMap<String, HostState>>,
}

impl<F> ResilientFetcher<F> {
    /// Wrap `inner` with explicit policies.
    pub fn new(inner: F, retry: RetryPolicy, breaker: BreakerPolicy, seed: u64) -> Self {
        ResilientFetcher {
            inner,
            retry,
            breaker,
            seed,
            hosts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Wrap `inner` with default retry and breaker policies.
    pub fn with_defaults(inner: F, seed: u64) -> Self {
        ResilientFetcher::new(
            inner,
            RetryPolicy::default(),
            BreakerPolicy::default(),
            seed,
        )
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Per-host resilience counters so far: a pre-sorted snapshot (the
    /// counters live in an ordered map, so every render — `-stats`,
    /// `/metrics` — sees the same host order without re-sorting).
    pub fn stats(&self) -> ResilienceStats {
        let hosts = self.hosts.lock().unwrap();
        ResilienceStats {
            hosts: hosts.iter().map(|(h, s)| (h.clone(), s.stats)).collect(),
        }
    }

    /// The current breaker state of `host` (a never-seen host is closed).
    pub fn breaker_state(&self, host: &str) -> BreakerState {
        let hosts = self.hosts.lock().unwrap();
        match hosts.get(host).and_then(|s| s.breaker) {
            None | Some(Breaker::Closed { .. }) => BreakerState::Closed,
            // An open breaker whose cooldown has drained will admit the
            // next request as a probe: report it half-open so hedging
            // treats the probe window as fragile, not as capacity.
            Some(Breaker::Open { remaining: 0 }) | Some(Breaker::HalfOpen) => {
                BreakerState::HalfOpen
            }
            Some(Breaker::Open { .. }) => BreakerState::Open,
        }
    }

    /// Snapshot every host's counters and breaker position for
    /// checkpointing.
    pub fn export_state(&self) -> ResilienceLayerState {
        let hosts = self.hosts.lock().unwrap();
        ResilienceLayerState {
            hosts: hosts
                .iter()
                .map(|(h, s)| ResilienceHostState {
                    host: h.clone(),
                    stats: s.stats,
                    breaker: match s.breaker {
                        None => BreakerSnapshot::Unset,
                        Some(Breaker::Closed { failures }) => BreakerSnapshot::Closed { failures },
                        Some(Breaker::Open { remaining }) => BreakerSnapshot::Open { remaining },
                        Some(Breaker::HalfOpen) => BreakerSnapshot::HalfOpen,
                    },
                })
                .collect(),
        }
    }

    /// Overwrite every host's counters and breaker position from a
    /// checkpoint snapshot.
    pub fn restore_state(&self, snapshot: &ResilienceLayerState) {
        let mut hosts = self.hosts.lock().unwrap();
        hosts.clear();
        for h in &snapshot.hosts {
            hosts.insert(
                h.host.clone(),
                HostState {
                    stats: h.stats,
                    breaker: match h.breaker {
                        BreakerSnapshot::Unset => None,
                        BreakerSnapshot::Closed { failures } => Some(Breaker::Closed { failures }),
                        BreakerSnapshot::Open { remaining } => Some(Breaker::Open { remaining }),
                        BreakerSnapshot::HalfOpen => Some(Breaker::HalfOpen),
                    },
                },
            );
        }
    }

    /// Admission check: count the request and, if the breaker is open,
    /// shed it. Returns `true` when the request may proceed.
    fn admit(&self, host: &str) -> bool {
        let mut hosts = self.hosts.lock().unwrap();
        let state = hosts.entry(host.to_string()).or_default();
        state.stats.requests += 1;
        match state.breaker.get_or_insert(Breaker::Closed { failures: 0 }) {
            Breaker::Closed { .. } | Breaker::HalfOpen => true,
            Breaker::Open { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    state.stats.fast_failures += 1;
                    false
                } else {
                    state.breaker = Some(Breaker::HalfOpen);
                    state.stats.probes += 1;
                    true
                }
            }
        }
    }

    fn record_success(&self, host: &str, retries_used: u32) {
        let mut hosts = self.hosts.lock().unwrap();
        let state = hosts.entry(host.to_string()).or_default();
        state.stats.successes += 1;
        state.stats.retries += u64::from(retries_used);
        state.breaker = Some(Breaker::Closed { failures: 0 });
    }

    fn record_failure(&self, host: &str, retries_used: u32) {
        let mut hosts = self.hosts.lock().unwrap();
        let state = hosts.entry(host.to_string()).or_default();
        state.stats.failures += 1;
        state.stats.retries += u64::from(retries_used);
        let next = match state.breaker.unwrap_or(Breaker::Closed { failures: 0 }) {
            Breaker::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.breaker.failure_threshold {
                    state.stats.breaker_opens += 1;
                    Breaker::Open {
                        remaining: self.breaker.cooldown_requests,
                    }
                } else {
                    Breaker::Closed { failures }
                }
            }
            // A failed probe reopens the breaker for another cooldown.
            Breaker::HalfOpen | Breaker::Open { .. } => {
                state.stats.breaker_opens += 1;
                Breaker::Open {
                    remaining: self.breaker.cooldown_requests,
                }
            }
        };
        state.breaker = Some(next);
    }

    /// Virtual backoff before retry `attempt` (0-based), with jitter
    /// derived from the seed so the schedule is reproducible.
    fn backoff(&self, host: &str, attempt: u32) -> u64 {
        let base = self
            .retry
            .base_backoff_us
            .saturating_mul(1 << attempt.min(16))
            .min(self.retry.max_backoff_us);
        let jitter = splitmix64(
            self.seed ^ fnv1a(host.as_bytes()) ^ u64::from(attempt).wrapping_mul(0x6A09_E667),
        ) % (base / 2 + 1);
        base + jitter
    }

    fn add_backoff(&self, host: &str, us: u64) {
        let mut hosts = self.hosts.lock().unwrap();
        hosts.entry(host.to_string()).or_default().stats.backoff_us += us;
    }

    /// Drive one request through admission, retries, and bookkeeping.
    /// `op` performs an attempt, `failed` inspects its result. Returns
    /// the result plus what the request cost this layer.
    fn drive<R>(
        &self,
        url: &Url,
        shed: impl FnOnce() -> R,
        op: impl Fn(&F, &Url) -> R,
        failed: impl Fn(&R) -> bool,
    ) -> (R, RequestCost) {
        let host = url.host.clone();
        if !self.admit(&host) {
            return (
                shed(),
                RequestCost {
                    shed: true,
                    ..RequestCost::default()
                },
            );
        }
        let mut cost = RequestCost::default();
        let mut attempt = 0u32;
        loop {
            let result = op(&self.inner, url);
            if !failed(&result) {
                self.record_success(&host, attempt);
                cost.retries = attempt;
                return (result, cost);
            }
            if attempt >= self.retry.max_retries {
                self.record_failure(&host, attempt);
                cost.retries = attempt;
                return (result, cost);
            }
            let wait = self.backoff(&host, attempt);
            self.add_backoff(&host, wait);
            cost.backoff_us += wait;
            attempt += 1;
        }
    }
}

/// What one scheduler-issued hop did to the resilience layer, recorded
/// by a fetch worker and *settled* later by the crawl scheduler in issue
/// order. Splitting the bookkeeping this way keeps parallel crawls
/// deterministic: workers only read a frozen breaker snapshot and run
/// retries (whose schedule depends solely on `(seed, url, attempt)`),
/// while every order-sensitive breaker transition happens sequentially
/// at settle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HopRecord {
    /// The frozen breaker snapshot said open: the hop was shed without
    /// touching the transport.
    Shed,
    /// The hop ran its retry loop to a conclusion.
    Done {
        /// The final status was still transient after every retry.
        failed: bool,
        /// Retries burned after the first attempt.
        retries: u32,
    },
}

impl<F: Fetcher> ResilientFetcher<F> {
    /// Worker half of a scheduler-issued GET: the retry loop alone, with
    /// no admission check and no breaker transition. Backoff is still
    /// accounted (a commutative add, safe from any thread); the
    /// order-sensitive bookkeeping is deferred to [`Self::settle_hop`].
    pub(crate) fn attempt_get(&self, url: &Url) -> ((Status, String, String), RequestCost) {
        let host = url.host.as_str();
        let mut cost = RequestCost::default();
        let mut attempt = 0u32;
        loop {
            let result = self.inner.get(url);
            if !transient(&result.0) || attempt >= self.retry.max_retries {
                cost.retries = attempt;
                return (result, cost);
            }
            let wait = self.backoff(host, attempt);
            self.add_backoff(host, wait);
            cost.backoff_us += wait;
            attempt += 1;
        }
    }

    /// Scheduler half of a scheduler-issued GET: replay the admission
    /// and outcome bookkeeping that [`Self::drive`] would have done,
    /// strictly in issue order so breaker transitions are deterministic
    /// no matter how the parallel workers interleaved.
    pub(crate) fn settle_hop(&self, host: &str, record: &HopRecord) {
        match record {
            HopRecord::Shed => {
                let mut hosts = self.hosts.lock().unwrap();
                let state = hosts.entry(host.to_string()).or_default();
                state.stats.requests += 1;
                state.stats.fast_failures += 1;
                if let Some(Breaker::Open { remaining }) = &mut state.breaker {
                    *remaining = remaining.saturating_sub(1);
                }
            }
            HopRecord::Done { failed, retries } => {
                {
                    let mut hosts = self.hosts.lock().unwrap();
                    let state = hosts.entry(host.to_string()).or_default();
                    state.stats.requests += 1;
                    // A drained cooldown means this settled request was
                    // the recovery probe.
                    if state.breaker == Some(Breaker::Open { remaining: 0 }) {
                        state.breaker = Some(Breaker::HalfOpen);
                        state.stats.probes += 1;
                    }
                }
                if *failed {
                    self.record_failure(host, *retries);
                } else {
                    self.record_success(host, *retries);
                }
            }
        }
    }

    /// [`Fetcher::head`], also reporting what the request cost.
    pub fn head_cost(&self, url: &Url) -> ((Status, String), RequestCost) {
        self.drive(
            url,
            || (Status::ServerError, String::new()),
            |inner, url| inner.head(url),
            |(status, _)| transient(status),
        )
    }

    /// [`Fetcher::get`], also reporting what the request cost.
    pub fn get_cost(&self, url: &Url) -> ((Status, String, String), RequestCost) {
        self.drive(
            url,
            || (Status::ServerError, String::new(), String::new()),
            |inner, url| inner.get(url),
            |(status, _, _)| transient(status),
        )
    }
}

impl<F: Fetcher> Fetcher for ResilientFetcher<F> {
    fn head(&self, url: &Url) -> (Status, String) {
        self.head_cost(url).0
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        self.get_cost(url).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::{Resource, SimulatedWeb};
    use crate::WebFetcher;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn page_web() -> SimulatedWeb {
        let mut web = SimulatedWeb::new();
        for i in 0..20 {
            web.add_page(&format!("http://h/p{i}.html"), format!("<P>page {i}</P>"));
        }
        web
    }

    #[test]
    fn spec_parses() {
        assert_eq!(FaultSpec::parse("20%").unwrap(), FaultSpec::all(20));
        assert_eq!(FaultSpec::parse("20").unwrap(), FaultSpec::all(20));
        let spec = FaultSpec::parse("5%:timeout+5xx").unwrap();
        assert_eq!(spec.rate_percent, 5);
        assert_eq!(spec.kinds, vec![FaultKind::Timeout, FaultKind::ServerError]);
        assert_eq!(FaultSpec::parse("0%").unwrap().rate_percent, 0);
        for bad in ["pony", "101%", "20%:gremlins", "20%:", "20%@", "20%@ "] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn host_filter_parses_and_confines_faults() {
        let spec = FaultSpec::parse("100%@Flaky").unwrap();
        assert_eq!(spec.host.as_deref(), Some("flaky"));
        assert_eq!(spec.rate_percent, 100);
        let spec = FaultSpec::parse("50%:timeout@flaky").unwrap();
        assert_eq!(spec.kinds, vec![FaultKind::Timeout]);
        assert_eq!(spec.host.as_deref(), Some("flaky"));

        let mut web = SimulatedWeb::new();
        web.add_page("http://good/p.html", "<P>ok</P>");
        web.add_page("http://flaky/p.html", "<P>ok</P>");
        let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all_at(100, "flaky"), 3);
        for _ in 0..10 {
            let (status, _, _) = faulty.get(&url("http://good/p.html"));
            assert_eq!(status, Status::Ok, "filtered host must stay clean");
            let _ = faulty.get(&url("http://flaky/p.html"));
        }
        let stats = faulty.stats();
        let good = &stats.hosts.iter().find(|(h, _)| h == "good").unwrap().1;
        let flaky = &stats.hosts.iter().find(|(h, _)| h == "flaky").unwrap().1;
        assert_eq!(good.injected(), 0, "{good:?}");
        assert_eq!(good.requests, 10);
        assert_eq!(flaky.injected(), 10, "{flaky:?}");
    }

    #[test]
    fn request_cost_reports_retries_and_backoff() {
        let web = page_web();
        let spec = FaultSpec {
            kinds: vec![FaultKind::Timeout],
            ..FaultSpec::all(50)
        };
        let fetcher =
            ResilientFetcher::with_defaults(FaultyWeb::new(WebFetcher::new(&web), spec, 5), 5);
        let mut total_retries = 0u64;
        let mut total_backoff = 0u64;
        for i in 0..20 {
            let ((status, _, _), cost) = fetcher.get_cost(&url(&format!("http://h/p{i}.html")));
            assert_eq!(status, Status::Ok);
            assert!(!cost.shed);
            assert!(
                cost.virtual_us() >= u64::from(cost.retries + 1) * VIRTUAL_RTT_US,
                "{cost:?}"
            );
            assert_eq!(cost.backoff_us == 0, cost.retries == 0, "{cost:?}");
            total_retries += u64::from(cost.retries);
            total_backoff += cost.backoff_us;
        }
        let stats = fetcher.stats();
        assert_eq!(total_retries, stats.retries_total(), "costs reconcile");
        assert_eq!(total_backoff, stats.hosts[0].1.backoff_us);
        assert!(total_retries > 0, "50% timeouts must cost retries");
    }

    #[test]
    fn breaker_state_is_visible_per_host() {
        let mut web = SimulatedWeb::new();
        web.add(
            "http://down/x.html",
            Resource {
                status: Status::ServerError,
                content_type: "text/html".to_string(),
                body: String::new(),
            },
        );
        let fetcher = ResilientFetcher::new(
            WebFetcher::new(&web),
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            BreakerPolicy {
                failure_threshold: 2,
                cooldown_requests: 2,
            },
            1,
        );
        let target = url("http://down/x.html");
        assert_eq!(fetcher.breaker_state("down"), BreakerState::Closed);
        assert_eq!(fetcher.breaker_state("never-seen"), BreakerState::Closed);
        for _ in 0..2 {
            let _ = fetcher.head(&target); // two failures open it
        }
        assert_eq!(fetcher.breaker_state("down"), BreakerState::Open);
        for _ in 0..2 {
            let ((status, _), cost) = fetcher.head_cost(&target); // shed
            assert_eq!(status, Status::ServerError);
            assert!(cost.shed);
        }
        // Cooldown drained: the next request will be the half-open probe.
        assert_eq!(fetcher.breaker_state("down"), BreakerState::HalfOpen);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let web = page_web();
        let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(0), 1);
        for i in 0..20 {
            let (status, _, _) = faulty.get(&url(&format!("http://h/p{i}.html")));
            assert_eq!(status, Status::Ok);
        }
        let stats = faulty.stats();
        assert_eq!(stats.injected_total(), 0);
        assert_eq!(stats.requests_total(), 20);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<(Status, usize)> {
            let web = page_web();
            let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(40), seed);
            (0..20)
                .map(|i| {
                    let (status, _, body) = faulty.get(&url(&format!("http://h/p{i}.html")));
                    (status, body.len())
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed must replay the same faults");
        assert_ne!(run(7), run(8), "different seeds should differ at 40%");
    }

    #[test]
    fn schedule_is_per_url_not_per_order() {
        // Fetching URLs in a different order must not change which URLs
        // fault: the roll depends on (seed, url, attempt), not sequence.
        let collect = |order: &[usize]| -> Vec<(String, Status)> {
            let web = page_web();
            let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(40), 3);
            let mut out: Vec<(String, Status)> = order
                .iter()
                .map(|i| {
                    let u = format!("http://h/p{i}.html");
                    let (status, _, _) = faulty.get(&url(&u));
                    (u, status)
                })
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        };
        let forward: Vec<usize> = (0..20).collect();
        let backward: Vec<usize> = (0..20).rev().collect();
        assert_eq!(collect(&forward), collect(&backward));
    }

    #[test]
    fn every_kind_eventually_fires_at_full_rate() {
        let web = page_web();
        let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(100), 11);
        for round in 0..10 {
            for i in 0..20 {
                let _ = faulty.get(&url(&format!("http://h/p{i}.html")));
                let _ = round;
            }
        }
        let stats = faulty.stats();
        let (_, h) = &stats.hosts[0];
        assert!(h.latency > 0, "{h:?}");
        assert!(h.timeouts > 0, "{h:?}");
        assert!(h.server_errors > 0, "{h:?}");
        assert!(h.resets > 0, "{h:?}");
        assert!(h.truncated > 0, "{h:?}");
        assert_eq!(h.injected(), h.requests, "100% rate faults every GET");
    }

    #[test]
    fn truncation_halves_the_body() {
        let mut web = SimulatedWeb::new();
        web.add_page("http://h/p.html", "<P>0123456789</P>");
        let spec = FaultSpec {
            kinds: vec![FaultKind::Truncate],
            ..FaultSpec::all(100)
        };
        let faulty = FaultyWeb::new(WebFetcher::new(&web), spec, 1);
        let (status, _, body) = faulty.get(&url("http://h/p.html"));
        assert_eq!(status, Status::Ok);
        assert_eq!(body.len(), "<P>0123456789</P>".len() / 2);
        assert_eq!(faulty.stats().hosts[0].1.truncated, 1);
        // A HEAD cannot be truncated: it passes clean and counts nothing.
        let (status, _) = faulty.head(&url("http://h/p.html"));
        assert_eq!(status, Status::Ok);
        assert_eq!(faulty.stats().injected_total(), 1);
    }

    #[test]
    fn resilient_fetcher_retries_through_transient_faults() {
        // Timeout-only faults at 50%: with 3 retries the chance all four
        // attempts fault is 6.25% per request; seed 5 is checked below to
        // recover every one of the 20 pages.
        let web = page_web();
        let spec = FaultSpec {
            kinds: vec![FaultKind::Timeout],
            ..FaultSpec::all(50)
        };
        let faulty = FaultyWeb::new(WebFetcher::new(&web), spec, 5);
        let fetcher = ResilientFetcher::with_defaults(faulty, 5);
        for i in 0..20 {
            let (status, _, _) = fetcher.get(&url(&format!("http://h/p{i}.html")));
            assert_eq!(status, Status::Ok, "p{i} not recovered");
        }
        let res = fetcher.stats();
        let faults = fetcher.inner().stats();
        assert!(res.retries_total() > 0, "50% faults must cost retries");
        assert_eq!(res.failures_total(), 0);
        // Accounting closes: every transient fault burned exactly one
        // retry (none were final failures here).
        assert_eq!(
            faults.hosts[0].1.transient_failures(),
            res.retries_total(),
            "{faults} / {res}"
        );
    }

    #[test]
    fn breaker_opens_fast_fails_and_recovers_via_probe() {
        let mut web = SimulatedWeb::new();
        web.add(
            "http://down/x.html",
            Resource {
                status: Status::ServerError,
                content_type: "text/html".to_string(),
                body: String::new(),
            },
        );
        let fetcher = ResilientFetcher::new(
            WebFetcher::new(&web),
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            BreakerPolicy {
                failure_threshold: 3,
                cooldown_requests: 4,
            },
            1,
        );
        let target = url("http://down/x.html");
        // 3 real failures open the breaker; 4 shed; then a probe fails
        // and reopens it.
        for _ in 0..8 {
            let (status, _) = fetcher.head(&target);
            assert_eq!(status, Status::ServerError);
        }
        let stats = fetcher.stats();
        let h = &stats.hosts[0].1;
        assert_eq!(h.failures, 4, "{h:?}"); // 3 initial + 1 failed probe
        assert_eq!(h.fast_failures, 4, "{h:?}");
        assert_eq!(h.breaker_opens, 2, "{h:?}");
        assert_eq!(h.probes, 1, "{h:?}");

        // Host comes back: shed through the new cooldown, then the next
        // probe succeeds and closes the breaker for good.
        drop(stats);
        let mut healthy = SimulatedWeb::new();
        healthy.add_page("http://down/x.html", "<P>back</P>");
        let fetcher2 = ResilientFetcher::new(
            WebFetcher::new(&healthy),
            RetryPolicy::default(),
            BreakerPolicy {
                failure_threshold: 1,
                cooldown_requests: 1,
            },
            1,
        );
        // Prime a failure by asking for a missing... ServerError needed;
        // instead verify closed-path success resets the failure streak.
        for _ in 0..3 {
            let (status, _, _) = fetcher2.get(&url("http://down/x.html"));
            assert_eq!(status, Status::Ok);
        }
        assert_eq!(fetcher2.stats().hosts[0].1.successes, 3);
    }

    #[test]
    fn probe_success_closes_the_breaker() {
        // A host that fails exactly long enough to open the breaker, then
        // recovers: the half-open probe must close it and stop shedding.
        let web = SimulatedWeb::new(); // empty: every URL 404s (definitive)
        let mut down = SimulatedWeb::new();
        down.add(
            "http://flaky/x.html",
            Resource {
                status: Status::ServerError,
                content_type: "text/html".to_string(),
                body: String::new(),
            },
        );
        let _ = web;
        let shared = crate::web::SharedWeb::new(down);
        let fetcher = ResilientFetcher::new(
            shared.clone(),
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            BreakerPolicy {
                failure_threshold: 2,
                cooldown_requests: 2,
            },
            9,
        );
        let target = url("http://flaky/x.html");
        for _ in 0..2 {
            assert_eq!(fetcher.head(&target).0, Status::ServerError); // opens
        }
        for _ in 0..2 {
            assert_eq!(fetcher.head(&target).0, Status::ServerError); // shed
        }
        // Host recovers before the probe.
        shared.with(|w| w.add_page("http://flaky/x.html", "<P>ok</P>"));
        assert_eq!(fetcher.head(&target).0, Status::Ok); // probe closes it
        assert_eq!(fetcher.head(&target).0, Status::Ok); // normal again
        let stats = fetcher.stats();
        let h = &stats.hosts[0].1;
        assert_eq!(h.breaker_opens, 1, "{h:?}");
        assert_eq!(h.fast_failures, 2, "{h:?}");
        assert_eq!(h.probes, 1, "{h:?}");
        assert_eq!(h.successes, 2, "{h:?}");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let web = SimulatedWeb::new();
        let fetcher = ResilientFetcher::with_defaults(WebFetcher::new(&web), 3);
        let a: Vec<u64> = (0..6).map(|i| fetcher.backoff("h", i)).collect();
        let b: Vec<u64> = (0..6).map(|i| fetcher.backoff("h", i)).collect();
        assert_eq!(a, b);
        for (i, &us) in a.iter().enumerate() {
            let cap = RetryPolicy::default().max_backoff_us;
            assert!(us <= cap + cap / 2, "attempt {i} backoff {us} over cap");
        }
        // Exponential shape: attempt 1's floor is above attempt 0's base.
        assert!(a[1] >= 20_000, "{a:?}");
    }

    #[test]
    fn stats_render_per_host() {
        let web = page_web();
        let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(100), 2);
        let fetcher = ResilientFetcher::with_defaults(faulty, 2);
        for i in 0..5 {
            let _ = fetcher.get(&url(&format!("http://h/p{i}.html")));
        }
        let faults = fetcher.inner().stats().to_string();
        assert!(faults.contains("fault injection:"), "{faults}");
        assert!(faults.contains("  h: "), "{faults}");
        let res = fetcher.stats().to_string();
        assert!(res.contains("resilience:"), "{res}");
        assert!(res.contains("breaker opened"), "{res}");
    }
}
