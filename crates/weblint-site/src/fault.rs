//! Fault injection and resilience over any [`Fetcher`].
//!
//! The paper's poacher and `-R` mode exist because the real web fails:
//! hosts stall, connections drop, pages arrive truncated (§3.5 wants
//! robots that "handle redirects" and survive dead links). The simulated
//! web is a perfect oracle, so this module makes it imperfect on demand —
//! and teaches the crawl to cope:
//!
//! * [`FaultyWeb`] — a decorator that injects *deterministic, seeded*
//!   faults into any transport: added latency, timeouts, transient 5xx,
//!   connection resets, and truncated bodies. Same seed, same spec, same
//!   request sequence → byte-identical fault schedule.
//! * [`ResilientFetcher`] — bounded retries with exponential backoff and
//!   deterministic jitter, plus a per-host circuit breaker
//!   (closed → open → half-open) so a dying host degrades to fast
//!   failures instead of hammering it on every link.
//!
//! Both keep per-host statistics so every injected fault is accounted
//! for: a transient fault either burns a retry or becomes a final
//! failure, and the chaos suite asserts exactly that balance.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use weblint_service::fnv1a;

use crate::robot::Fetcher;
use crate::url::Url;
use crate::web::Status;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The request succeeds but the (simulated) wire is slow.
    Latency,
    /// The request times out: [`Status::TimedOut`].
    Timeout,
    /// The host answers a transient 5xx: [`Status::ServerError`].
    ServerError,
    /// The connection is reset mid-request: [`Status::Reset`].
    Reset,
    /// A GET succeeds but the body arrives cut off halfway.
    Truncate,
}

impl FaultKind {
    /// Every kind, in spec order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Latency,
        FaultKind::Timeout,
        FaultKind::ServerError,
        FaultKind::Reset,
        FaultKind::Truncate,
    ];

    /// The spec-string name (`latency`, `timeout`, `5xx`, `reset`,
    /// `truncate`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Latency => "latency",
            FaultKind::Timeout => "timeout",
            FaultKind::ServerError => "5xx",
            FaultKind::Reset => "reset",
            FaultKind::Truncate => "truncate",
        }
    }
}

/// What to inject and how often.
///
/// Parsed from the CLI's `-faults` spec: `RATE%` or
/// `RATE%:KIND+KIND+…`, e.g. `20%` (every kind at 20%) or
/// `5%:timeout+5xx`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Percent of requests that receive a fault (0–100).
    pub rate_percent: u8,
    /// Kinds to draw from when a request is faulted.
    pub kinds: Vec<FaultKind>,
    /// Simulated microseconds a [`FaultKind::Latency`] fault adds.
    pub added_latency_us: u64,
}

impl FaultSpec {
    /// Every fault kind at the given rate.
    pub fn all(rate_percent: u8) -> FaultSpec {
        FaultSpec {
            rate_percent: rate_percent.min(100),
            kinds: FaultKind::ALL.to_vec(),
            added_latency_us: 250_000,
        }
    }

    /// Parse a CLI spec: `20%`, `20`, or `20%:timeout+reset`.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let (rate_part, kinds_part) = match spec.split_once(':') {
            Some((r, k)) => (r, Some(k)),
            None => (spec, None),
        };
        let rate = rate_part.trim().trim_end_matches('%');
        let rate_percent: u8 = rate
            .parse()
            .ok()
            .filter(|&r| r <= 100)
            .ok_or_else(|| format!("bad fault rate `{rate_part}' (want 0-100, e.g. 20%)"))?;
        let mut out = FaultSpec::all(rate_percent);
        if let Some(kinds_part) = kinds_part {
            let mut kinds = Vec::new();
            for name in kinds_part.split('+') {
                let kind = FaultKind::ALL
                    .into_iter()
                    .find(|k| k.name() == name.trim())
                    .ok_or_else(|| {
                        format!(
                            "unknown fault kind `{}' (want {})",
                            name.trim(),
                            FaultKind::ALL.map(FaultKind::name).join(", ")
                        )
                    })?;
                if !kinds.contains(&kind) {
                    kinds.push(kind);
                }
            }
            if kinds.is_empty() {
                return Err("fault spec names no kinds".to_string());
            }
            out.kinds = kinds;
        }
        Ok(out)
    }
}

/// SplitMix64: the fault schedule's deterministic hash-to-random step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-host injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostFaults {
    /// Requests (GET + HEAD) that reached this host through the decorator.
    pub requests: u64,
    /// Latency faults injected.
    pub latency: u64,
    /// Timeouts injected.
    pub timeouts: u64,
    /// Transient 5xx injected.
    pub server_errors: u64,
    /// Connection resets injected.
    pub resets: u64,
    /// Bodies truncated.
    pub truncated: u64,
    /// Simulated microseconds of added latency.
    pub added_latency_us: u64,
}

impl HostFaults {
    /// Faults of every kind injected at this host.
    pub fn injected(&self) -> u64 {
        self.latency + self.timeouts + self.server_errors + self.resets + self.truncated
    }

    /// Injected faults that present as request failures (a success-path
    /// fault — latency, truncation — is not one).
    pub fn transient_failures(&self) -> u64 {
        self.timeouts + self.server_errors + self.resets
    }
}

/// Per-host fault accounting, sorted by host for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// `(host, counters)` pairs in host order.
    pub hosts: Vec<(String, HostFaults)>,
}

impl FaultStats {
    /// Total faults injected across all hosts.
    pub fn injected_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.injected()).sum()
    }

    /// Total requests seen across all hosts.
    pub fn requests_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.requests).sum()
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault injection: {} fault(s) over {} request(s)",
            self.injected_total(),
            self.requests_total()
        )?;
        for (host, h) in &self.hosts {
            write!(
                f,
                "\n  {host}: {} of {} request(s) faulted \
                 ({} latency, {} timeout, {} 5xx, {} reset, {} truncated)",
                h.injected(),
                h.requests,
                h.latency,
                h.timeouts,
                h.server_errors,
                h.resets,
                h.truncated
            )?;
        }
        Ok(())
    }
}

struct FaultState {
    /// Per-URL request counter: the "attempt" axis of the schedule, so a
    /// retry of the same URL rolls fresh dice while the overall schedule
    /// stays independent of cross-URL ordering.
    attempts: HashMap<String, u64>,
    hosts: HashMap<String, HostFaults>,
}

/// A [`Fetcher`] decorator that injects deterministic, seeded faults.
///
/// The fault decision for a request is a pure function of
/// `(seed, url, per-url attempt number)` — it does not depend on the
/// order in which *other* URLs are fetched, so a crawl's fault schedule
/// is reproducible even when fetch order changes elsewhere.
///
/// # Examples
///
/// ```
/// use weblint_site::{FaultSpec, FaultyWeb, Fetcher, SimulatedWeb, Url, WebFetcher};
///
/// let mut web = SimulatedWeb::new();
/// web.add_page("http://h/p.html", "<P>hi</P>");
/// let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(100), 7);
/// let (status, _, _) = faulty.get(&Url::parse("http://h/p.html").unwrap());
/// // Every request is faulted at 100%; the kind depends on the seed.
/// assert_eq!(faulty.stats().injected_total(), 1);
/// # let _ = status;
/// ```
pub struct FaultyWeb<F> {
    inner: F,
    spec: FaultSpec,
    seed: u64,
    state: Mutex<FaultState>,
}

impl<F> FaultyWeb<F> {
    /// Decorate `inner` with the given spec and seed.
    pub fn new(inner: F, spec: FaultSpec, seed: u64) -> FaultyWeb<F> {
        FaultyWeb {
            inner,
            spec,
            seed,
            state: Mutex::new(FaultState {
                attempts: HashMap::new(),
                hosts: HashMap::new(),
            }),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Per-host injection counters so far.
    pub fn stats(&self) -> FaultStats {
        let state = self.state.lock().unwrap();
        let mut hosts: Vec<(String, HostFaults)> =
            state.hosts.iter().map(|(h, c)| (h.clone(), *c)).collect();
        hosts.sort_by(|a, b| a.0.cmp(&b.0));
        FaultStats { hosts }
    }

    /// Roll the dice for one request. Counts the request; counts the
    /// fault too unless it is [`FaultKind::Truncate`], which only counts
    /// once actually applied to a non-empty GET body (see `get`).
    fn decide(&self, url: &Url, head: bool) -> Option<FaultKind> {
        let mut state = self.state.lock().unwrap();
        let key = url.to_string();
        let attempt = {
            let n = state.attempts.entry(key.clone()).or_insert(0);
            *n += 1;
            *n
        };
        let host = state.hosts.entry(url.host.clone()).or_default();
        host.requests += 1;
        if self.spec.rate_percent == 0 || self.spec.kinds.is_empty() {
            return None;
        }
        let roll = splitmix64(
            self.seed ^ fnv1a(key.as_bytes()) ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        if roll % 100 >= u64::from(self.spec.rate_percent) {
            return None;
        }
        let kind = self.spec.kinds[((roll >> 32) as usize) % self.spec.kinds.len()];
        match kind {
            // Truncation cannot apply to a HEAD; the request passes clean.
            FaultKind::Truncate if head => return None,
            FaultKind::Truncate => {}
            FaultKind::Latency => {
                host.latency += 1;
                host.added_latency_us += self.spec.added_latency_us;
            }
            FaultKind::Timeout => host.timeouts += 1,
            FaultKind::ServerError => host.server_errors += 1,
            FaultKind::Reset => host.resets += 1,
        }
        Some(kind)
    }

    fn count_truncated(&self, host: &str) {
        let mut state = self.state.lock().unwrap();
        state.hosts.entry(host.to_string()).or_default().truncated += 1;
    }
}

/// Cut `body` roughly in half on a character boundary.
fn truncate_body(body: &str) -> String {
    let mut cut = body.len() / 2;
    while !body.is_char_boundary(cut) {
        cut -= 1;
    }
    body[..cut].to_string()
}

impl<F: Fetcher> Fetcher for FaultyWeb<F> {
    fn head(&self, url: &Url) -> (Status, String) {
        match self.decide(url, true) {
            Some(FaultKind::Timeout) => (Status::TimedOut, String::new()),
            Some(FaultKind::Reset) => (Status::Reset, String::new()),
            Some(FaultKind::ServerError) => (Status::ServerError, String::new()),
            // Latency only slows the wire; the answer is the real one.
            Some(FaultKind::Latency) | Some(FaultKind::Truncate) | None => self.inner.head(url),
        }
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        match self.decide(url, false) {
            Some(FaultKind::Timeout) => (Status::TimedOut, String::new(), String::new()),
            Some(FaultKind::Reset) => (Status::Reset, String::new(), String::new()),
            Some(FaultKind::ServerError) => (Status::ServerError, String::new(), String::new()),
            Some(FaultKind::Truncate) => {
                let (status, ct, body) = self.inner.get(url);
                if status == Status::Ok && !body.is_empty() {
                    self.count_truncated(&url.host);
                    (status, ct, truncate_body(&body))
                } else {
                    (status, ct, body)
                }
            }
            Some(FaultKind::Latency) | None => self.inner.get(url),
        }
    }
}

/// Retry knobs for [`ResilientFetcher`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts).
    pub max_retries: u32,
    /// First backoff, in simulated microseconds; doubles per retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_us: 10_000,
            max_backoff_us: 160_000,
        }
    }
}

/// Circuit-breaker knobs for [`ResilientFetcher`].
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive request failures (retries exhausted) that open the
    /// breaker for a host.
    pub failure_threshold: u32,
    /// Requests failed fast while open before one probe is let through
    /// (the request-count analog of a cooldown timer — the simulated web
    /// has no wall clock).
    pub cooldown_requests: u32,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown_requests: 8,
        }
    }
}

/// Breaker state machine, per host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed { failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

/// Per-host resilience counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostResilience {
    /// Requests attempted against this host (fast failures included).
    pub requests: u64,
    /// Requests that ended in a definitive answer (2xx/3xx/404).
    pub successes: u64,
    /// Requests that stayed transiently failed after every retry.
    pub failures: u64,
    /// Individual retries performed.
    pub retries: u64,
    /// Simulated microseconds spent backing off (with jitter).
    pub backoff_us: u64,
    /// Times the breaker tripped open.
    pub breaker_opens: u64,
    /// Requests failed fast while the breaker was open.
    pub fast_failures: u64,
    /// Half-open probe requests let through.
    pub probes: u64,
}

/// Per-host resilience accounting, sorted by host.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResilienceStats {
    /// `(host, counters)` pairs in host order.
    pub hosts: Vec<(String, HostResilience)>,
}

impl ResilienceStats {
    /// Total retries across all hosts.
    pub fn retries_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.retries).sum()
    }

    /// Total requests that failed after every retry.
    pub fn failures_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.failures).sum()
    }
}

impl fmt::Display for ResilienceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resilience: {} retrie(s), {} request(s) failed after retries",
            self.retries_total(),
            self.failures_total()
        )?;
        for (host, h) in &self.hosts {
            write!(
                f,
                "\n  {host}: {} ok / {} failed of {} request(s), {} retrie(s) \
                 ({:.1}ms backoff), breaker opened {} time(s) \
                 ({} fast-fail(s), {} probe(s))",
                h.successes,
                h.failures,
                h.requests,
                h.retries,
                h.backoff_us as f64 / 1000.0,
                h.breaker_opens,
                h.fast_failures,
                h.probes
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct HostState {
    breaker: Option<Breaker>,
    stats: HostResilience,
}

/// Whether a status is worth retrying: the host itself misbehaved, as
/// opposed to answering definitively (2xx/3xx/404 are answers).
fn transient(status: &Status) -> bool {
    matches!(
        status,
        Status::ServerError | Status::TimedOut | Status::Reset
    )
}

/// A [`Fetcher`] wrapper adding bounded retries (exponential backoff with
/// deterministic jitter) and a per-host circuit breaker.
///
/// Backoff is *virtual*: the simulated web has no wall clock, so waits
/// accumulate into [`HostResilience::backoff_us`] instead of sleeping,
/// keeping crawls fast and byte-deterministic.
///
/// While a host's breaker is open, requests fail fast with
/// [`Status::ServerError`] (no transport call) until
/// [`BreakerPolicy::cooldown_requests`] have been shed; the next request
/// is a half-open probe — success closes the breaker, failure reopens it.
///
/// # Examples
///
/// ```
/// use weblint_site::{Fetcher, ResilientFetcher, SimulatedWeb, Url, WebFetcher};
///
/// let mut web = SimulatedWeb::new();
/// web.add_page("http://h/p.html", "<P>hi</P>");
/// let fetcher = ResilientFetcher::with_defaults(WebFetcher::new(&web), 7);
/// let (status, _, body) = fetcher.get(&Url::parse("http://h/p.html").unwrap());
/// assert_eq!(status, weblint_site::Status::Ok);
/// assert!(body.contains("hi"));
/// ```
pub struct ResilientFetcher<F> {
    inner: F,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    seed: u64,
    hosts: Mutex<HashMap<String, HostState>>,
}

impl<F> ResilientFetcher<F> {
    /// Wrap `inner` with explicit policies.
    pub fn new(inner: F, retry: RetryPolicy, breaker: BreakerPolicy, seed: u64) -> Self {
        ResilientFetcher {
            inner,
            retry,
            breaker,
            seed,
            hosts: Mutex::new(HashMap::new()),
        }
    }

    /// Wrap `inner` with default retry and breaker policies.
    pub fn with_defaults(inner: F, seed: u64) -> Self {
        ResilientFetcher::new(
            inner,
            RetryPolicy::default(),
            BreakerPolicy::default(),
            seed,
        )
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Per-host resilience counters so far.
    pub fn stats(&self) -> ResilienceStats {
        let hosts = self.hosts.lock().unwrap();
        let mut out: Vec<(String, HostResilience)> =
            hosts.iter().map(|(h, s)| (h.clone(), s.stats)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        ResilienceStats { hosts: out }
    }

    /// Admission check: count the request and, if the breaker is open,
    /// shed it. Returns `true` when the request may proceed.
    fn admit(&self, host: &str) -> bool {
        let mut hosts = self.hosts.lock().unwrap();
        let state = hosts.entry(host.to_string()).or_default();
        state.stats.requests += 1;
        match state.breaker.get_or_insert(Breaker::Closed { failures: 0 }) {
            Breaker::Closed { .. } | Breaker::HalfOpen => true,
            Breaker::Open { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    state.stats.fast_failures += 1;
                    false
                } else {
                    state.breaker = Some(Breaker::HalfOpen);
                    state.stats.probes += 1;
                    true
                }
            }
        }
    }

    fn record_success(&self, host: &str, retries_used: u32) {
        let mut hosts = self.hosts.lock().unwrap();
        let state = hosts.entry(host.to_string()).or_default();
        state.stats.successes += 1;
        state.stats.retries += u64::from(retries_used);
        state.breaker = Some(Breaker::Closed { failures: 0 });
    }

    fn record_failure(&self, host: &str, retries_used: u32) {
        let mut hosts = self.hosts.lock().unwrap();
        let state = hosts.entry(host.to_string()).or_default();
        state.stats.failures += 1;
        state.stats.retries += u64::from(retries_used);
        let next = match state.breaker.unwrap_or(Breaker::Closed { failures: 0 }) {
            Breaker::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.breaker.failure_threshold {
                    state.stats.breaker_opens += 1;
                    Breaker::Open {
                        remaining: self.breaker.cooldown_requests,
                    }
                } else {
                    Breaker::Closed { failures }
                }
            }
            // A failed probe reopens the breaker for another cooldown.
            Breaker::HalfOpen | Breaker::Open { .. } => {
                state.stats.breaker_opens += 1;
                Breaker::Open {
                    remaining: self.breaker.cooldown_requests,
                }
            }
        };
        state.breaker = Some(next);
    }

    /// Virtual backoff before retry `attempt` (0-based), with jitter
    /// derived from the seed so the schedule is reproducible.
    fn backoff(&self, host: &str, attempt: u32) -> u64 {
        let base = self
            .retry
            .base_backoff_us
            .saturating_mul(1 << attempt.min(16))
            .min(self.retry.max_backoff_us);
        let jitter = splitmix64(
            self.seed ^ fnv1a(host.as_bytes()) ^ u64::from(attempt).wrapping_mul(0x6A09_E667),
        ) % (base / 2 + 1);
        base + jitter
    }

    fn add_backoff(&self, host: &str, us: u64) {
        let mut hosts = self.hosts.lock().unwrap();
        hosts.entry(host.to_string()).or_default().stats.backoff_us += us;
    }

    /// Drive one request through admission, retries, and bookkeeping.
    /// `op` performs an attempt, `failed` inspects its result.
    fn drive<R>(
        &self,
        url: &Url,
        shed: impl FnOnce() -> R,
        op: impl Fn(&F, &Url) -> R,
        failed: impl Fn(&R) -> bool,
    ) -> R {
        let host = url.host.clone();
        if !self.admit(&host) {
            return shed();
        }
        let mut attempt = 0u32;
        loop {
            let result = op(&self.inner, url);
            if !failed(&result) {
                self.record_success(&host, attempt);
                return result;
            }
            if attempt >= self.retry.max_retries {
                self.record_failure(&host, attempt);
                return result;
            }
            self.add_backoff(&host, self.backoff(&host, attempt));
            attempt += 1;
        }
    }
}

impl<F: Fetcher> Fetcher for ResilientFetcher<F> {
    fn head(&self, url: &Url) -> (Status, String) {
        self.drive(
            url,
            || (Status::ServerError, String::new()),
            |inner, url| inner.head(url),
            |(status, _)| transient(status),
        )
    }

    fn get(&self, url: &Url) -> (Status, String, String) {
        self.drive(
            url,
            || (Status::ServerError, String::new(), String::new()),
            |inner, url| inner.get(url),
            |(status, _, _)| transient(status),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::{Resource, SimulatedWeb};
    use crate::WebFetcher;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn page_web() -> SimulatedWeb {
        let mut web = SimulatedWeb::new();
        for i in 0..20 {
            web.add_page(&format!("http://h/p{i}.html"), format!("<P>page {i}</P>"));
        }
        web
    }

    #[test]
    fn spec_parses() {
        assert_eq!(FaultSpec::parse("20%").unwrap(), FaultSpec::all(20));
        assert_eq!(FaultSpec::parse("20").unwrap(), FaultSpec::all(20));
        let spec = FaultSpec::parse("5%:timeout+5xx").unwrap();
        assert_eq!(spec.rate_percent, 5);
        assert_eq!(spec.kinds, vec![FaultKind::Timeout, FaultKind::ServerError]);
        assert_eq!(FaultSpec::parse("0%").unwrap().rate_percent, 0);
        for bad in ["pony", "101%", "20%:gremlins", "20%:"] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let web = page_web();
        let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(0), 1);
        for i in 0..20 {
            let (status, _, _) = faulty.get(&url(&format!("http://h/p{i}.html")));
            assert_eq!(status, Status::Ok);
        }
        let stats = faulty.stats();
        assert_eq!(stats.injected_total(), 0);
        assert_eq!(stats.requests_total(), 20);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<(Status, usize)> {
            let web = page_web();
            let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(40), seed);
            (0..20)
                .map(|i| {
                    let (status, _, body) = faulty.get(&url(&format!("http://h/p{i}.html")));
                    (status, body.len())
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed must replay the same faults");
        assert_ne!(run(7), run(8), "different seeds should differ at 40%");
    }

    #[test]
    fn schedule_is_per_url_not_per_order() {
        // Fetching URLs in a different order must not change which URLs
        // fault: the roll depends on (seed, url, attempt), not sequence.
        let collect = |order: &[usize]| -> Vec<(String, Status)> {
            let web = page_web();
            let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(40), 3);
            let mut out: Vec<(String, Status)> = order
                .iter()
                .map(|i| {
                    let u = format!("http://h/p{i}.html");
                    let (status, _, _) = faulty.get(&url(&u));
                    (u, status)
                })
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        };
        let forward: Vec<usize> = (0..20).collect();
        let backward: Vec<usize> = (0..20).rev().collect();
        assert_eq!(collect(&forward), collect(&backward));
    }

    #[test]
    fn every_kind_eventually_fires_at_full_rate() {
        let web = page_web();
        let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(100), 11);
        for round in 0..10 {
            for i in 0..20 {
                let _ = faulty.get(&url(&format!("http://h/p{i}.html")));
                let _ = round;
            }
        }
        let stats = faulty.stats();
        let (_, h) = &stats.hosts[0];
        assert!(h.latency > 0, "{h:?}");
        assert!(h.timeouts > 0, "{h:?}");
        assert!(h.server_errors > 0, "{h:?}");
        assert!(h.resets > 0, "{h:?}");
        assert!(h.truncated > 0, "{h:?}");
        assert_eq!(h.injected(), h.requests, "100% rate faults every GET");
    }

    #[test]
    fn truncation_halves_the_body() {
        let mut web = SimulatedWeb::new();
        web.add_page("http://h/p.html", "<P>0123456789</P>");
        let spec = FaultSpec {
            kinds: vec![FaultKind::Truncate],
            ..FaultSpec::all(100)
        };
        let faulty = FaultyWeb::new(WebFetcher::new(&web), spec, 1);
        let (status, _, body) = faulty.get(&url("http://h/p.html"));
        assert_eq!(status, Status::Ok);
        assert_eq!(body.len(), "<P>0123456789</P>".len() / 2);
        assert_eq!(faulty.stats().hosts[0].1.truncated, 1);
        // A HEAD cannot be truncated: it passes clean and counts nothing.
        let (status, _) = faulty.head(&url("http://h/p.html"));
        assert_eq!(status, Status::Ok);
        assert_eq!(faulty.stats().injected_total(), 1);
    }

    #[test]
    fn resilient_fetcher_retries_through_transient_faults() {
        // Timeout-only faults at 50%: with 3 retries the chance all four
        // attempts fault is 6.25% per request; seed 5 is checked below to
        // recover every one of the 20 pages.
        let web = page_web();
        let spec = FaultSpec {
            kinds: vec![FaultKind::Timeout],
            ..FaultSpec::all(50)
        };
        let faulty = FaultyWeb::new(WebFetcher::new(&web), spec, 5);
        let fetcher = ResilientFetcher::with_defaults(faulty, 5);
        for i in 0..20 {
            let (status, _, _) = fetcher.get(&url(&format!("http://h/p{i}.html")));
            assert_eq!(status, Status::Ok, "p{i} not recovered");
        }
        let res = fetcher.stats();
        let faults = fetcher.inner().stats();
        assert!(res.retries_total() > 0, "50% faults must cost retries");
        assert_eq!(res.failures_total(), 0);
        // Accounting closes: every transient fault burned exactly one
        // retry (none were final failures here).
        assert_eq!(
            faults.hosts[0].1.transient_failures(),
            res.retries_total(),
            "{faults} / {res}"
        );
    }

    #[test]
    fn breaker_opens_fast_fails_and_recovers_via_probe() {
        let mut web = SimulatedWeb::new();
        web.add(
            "http://down/x.html",
            Resource {
                status: Status::ServerError,
                content_type: "text/html".to_string(),
                body: String::new(),
            },
        );
        let fetcher = ResilientFetcher::new(
            WebFetcher::new(&web),
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            BreakerPolicy {
                failure_threshold: 3,
                cooldown_requests: 4,
            },
            1,
        );
        let target = url("http://down/x.html");
        // 3 real failures open the breaker; 4 shed; then a probe fails
        // and reopens it.
        for _ in 0..8 {
            let (status, _) = fetcher.head(&target);
            assert_eq!(status, Status::ServerError);
        }
        let stats = fetcher.stats();
        let h = &stats.hosts[0].1;
        assert_eq!(h.failures, 4, "{h:?}"); // 3 initial + 1 failed probe
        assert_eq!(h.fast_failures, 4, "{h:?}");
        assert_eq!(h.breaker_opens, 2, "{h:?}");
        assert_eq!(h.probes, 1, "{h:?}");

        // Host comes back: shed through the new cooldown, then the next
        // probe succeeds and closes the breaker for good.
        drop(stats);
        let mut healthy = SimulatedWeb::new();
        healthy.add_page("http://down/x.html", "<P>back</P>");
        let fetcher2 = ResilientFetcher::new(
            WebFetcher::new(&healthy),
            RetryPolicy::default(),
            BreakerPolicy {
                failure_threshold: 1,
                cooldown_requests: 1,
            },
            1,
        );
        // Prime a failure by asking for a missing... ServerError needed;
        // instead verify closed-path success resets the failure streak.
        for _ in 0..3 {
            let (status, _, _) = fetcher2.get(&url("http://down/x.html"));
            assert_eq!(status, Status::Ok);
        }
        assert_eq!(fetcher2.stats().hosts[0].1.successes, 3);
    }

    #[test]
    fn probe_success_closes_the_breaker() {
        // A host that fails exactly long enough to open the breaker, then
        // recovers: the half-open probe must close it and stop shedding.
        let web = SimulatedWeb::new(); // empty: every URL 404s (definitive)
        let mut down = SimulatedWeb::new();
        down.add(
            "http://flaky/x.html",
            Resource {
                status: Status::ServerError,
                content_type: "text/html".to_string(),
                body: String::new(),
            },
        );
        let _ = web;
        let shared = crate::web::SharedWeb::new(down);
        let fetcher = ResilientFetcher::new(
            shared.clone(),
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            BreakerPolicy {
                failure_threshold: 2,
                cooldown_requests: 2,
            },
            9,
        );
        let target = url("http://flaky/x.html");
        for _ in 0..2 {
            assert_eq!(fetcher.head(&target).0, Status::ServerError); // opens
        }
        for _ in 0..2 {
            assert_eq!(fetcher.head(&target).0, Status::ServerError); // shed
        }
        // Host recovers before the probe.
        shared.with(|w| w.add_page("http://flaky/x.html", "<P>ok</P>"));
        assert_eq!(fetcher.head(&target).0, Status::Ok); // probe closes it
        assert_eq!(fetcher.head(&target).0, Status::Ok); // normal again
        let stats = fetcher.stats();
        let h = &stats.hosts[0].1;
        assert_eq!(h.breaker_opens, 1, "{h:?}");
        assert_eq!(h.fast_failures, 2, "{h:?}");
        assert_eq!(h.probes, 1, "{h:?}");
        assert_eq!(h.successes, 2, "{h:?}");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let web = SimulatedWeb::new();
        let fetcher = ResilientFetcher::with_defaults(WebFetcher::new(&web), 3);
        let a: Vec<u64> = (0..6).map(|i| fetcher.backoff("h", i)).collect();
        let b: Vec<u64> = (0..6).map(|i| fetcher.backoff("h", i)).collect();
        assert_eq!(a, b);
        for (i, &us) in a.iter().enumerate() {
            let cap = RetryPolicy::default().max_backoff_us;
            assert!(us <= cap + cap / 2, "attempt {i} backoff {us} over cap");
        }
        // Exponential shape: attempt 1's floor is above attempt 0's base.
        assert!(a[1] >= 20_000, "{a:?}");
    }

    #[test]
    fn stats_render_per_host() {
        let web = page_web();
        let faulty = FaultyWeb::new(WebFetcher::new(&web), FaultSpec::all(100), 2);
        let fetcher = ResilientFetcher::with_defaults(faulty, 2);
        for i in 0..5 {
            let _ = fetcher.get(&url(&format!("http://h/p{i}.html")));
        }
        let faults = fetcher.inner().stats().to_string();
        assert!(faults.contains("fault injection:"), "{faults}");
        assert!(faults.contains("  h: "), "{faults}");
        let res = fetcher.stats().to_string();
        assert!(res.contains("resilience:"), "{res}");
        assert!(res.contains("breaker opened"), "{res}");
    }
}
