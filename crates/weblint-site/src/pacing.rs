//! Adaptive per-host pacing: AIMD in-flight limits and hedged-request
//! policy for the crawl scheduler.
//!
//! The paper's poacher "walks a site, applying weblint to each page"
//! with a fixed request pattern; this module gives the walk a control
//! loop. Two classic algorithms, both driven by the resilience layer's
//! per-host feedback ([`crate::HostResilience`]):
//!
//! * **AIMD in-flight limits** (TCP congestion control transplanted to
//!   a crawler): each host has an in-flight limit that grows by one
//!   after a streak of clean completions (additive increase) and halves
//!   on any retry, timeout, or 5xx (multiplicative decrease), floored
//!   at 1 — so a struggling host is throttled *before* its circuit
//!   breaker ever opens, and a healthy host is probed up to the ceiling.
//! * **Hedged requests** (Dean & Barroso, "The Tail at Scale"): when an
//!   attempt's virtual latency exceeds the host's slow threshold — an
//!   RTO-style estimate `srtt + 4·dev` fed from per-request
//!   backoff/attempt costs — one speculative retry may be issued and
//!   the first definite answer taken. Hedges are *budgeted* (never more
//!   than ~[`HedgePolicy::budget_percent`] of a host's requests) and
//!   suppressed entirely while the host's breaker is anything but
//!   closed, so hedging can never double load on a host that is already
//!   in recovery.
//!
//! Everything here is deterministic: decisions are pure functions of
//! the authorization order and the observed virtual costs, never of
//! wall-clock time, so a crawl with a fixed seed replays byte-for-byte.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::fault::BreakerState;

/// AIMD knobs for per-host in-flight limits.
#[derive(Debug, Clone)]
pub struct AimdPolicy {
    /// Limit granted to a host never seen before.
    pub initial_limit: u32,
    /// Ceiling the additive increase may reach.
    pub max_limit: u32,
    /// Clean completions in a row needed for a +1 increase.
    pub increase_per: u32,
}

impl Default for AimdPolicy {
    fn default() -> AimdPolicy {
        AimdPolicy {
            initial_limit: 4,
            max_limit: 16,
            increase_per: 4,
        }
    }
}

/// Hedged-request knobs.
#[derive(Debug, Clone)]
pub struct HedgePolicy {
    /// Hedges may never exceed this percentage of a host's authorized
    /// requests (Dean & Barroso use ~5%).
    pub budget_percent: u8,
    /// Floor for the slow threshold, in virtual microseconds, so a host
    /// with a short history is not hedged on noise.
    pub min_threshold_us: u64,
    /// Deviation multiplier in the RTO-style threshold
    /// (`srtt + factor · dev`).
    pub deviation_factor: u32,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy {
            budget_percent: 5,
            // Three virtual RTTs: a first retry (2 attempts + backoff)
            // always clears it, a clean single attempt never does.
            min_threshold_us: 60_000,
            deviation_factor: 4,
        }
    }
}

/// Permission to hedge one request, issued at schedule time so the
/// decision is deterministic regardless of worker interleaving. The
/// token snapshots the host's slow threshold; the fetch worker fires the
/// hedge only if the token grants it *and* the primary attempt actually
/// exceeded the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeToken {
    /// Whether a hedge may be fired at all.
    pub granted: bool,
    /// The host's slow threshold at authorization time, in virtual
    /// microseconds.
    pub threshold_us: u64,
}

impl HedgeToken {
    /// A token that never hedges (plain transports, hedging disabled).
    pub fn denied() -> HedgeToken {
        HedgeToken {
            granted: false,
            threshold_us: u64::MAX,
        }
    }
}

/// One completed request's feedback to the pacer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The request ended in a definitive answer without any retries.
    pub clean: bool,
    /// The request burned retries or stayed transiently failed — the
    /// multiplicative-decrease signal.
    pub bad: bool,
    /// Virtual latency of the request (attempts + backoff), for the
    /// slow-threshold estimator; `0` is ignored (shed requests).
    pub latency_us: u64,
}

/// RTO-style latency estimator (integer EWMA of value and deviation,
/// exactly the TCP smoothed-RTT recurrence), kept per host.
#[derive(Debug, Clone, Copy, Default)]
struct SlowEstimator {
    srtt_us: i64,
    dev_us: i64,
    samples: u64,
}

impl SlowEstimator {
    fn observe(&mut self, latency_us: u64) {
        let x = latency_us as i64;
        if self.samples == 0 {
            self.srtt_us = x;
            self.dev_us = x / 2;
        } else {
            let err = x - self.srtt_us;
            self.srtt_us += err / 8;
            self.dev_us += (err.abs() - self.dev_us) / 4;
        }
        self.samples += 1;
    }

    fn threshold_us(&self, policy: &HedgePolicy) -> u64 {
        let estimate = self.srtt_us + i64::from(policy.deviation_factor) * self.dev_us;
        (estimate.max(0) as u64).max(policy.min_threshold_us)
    }
}

/// Per-host pacing state.
#[derive(Debug, Clone, Default)]
struct HostState {
    limit: u32,
    clean_streak: u32,
    estimator: SlowEstimator,
    stats: HostPacing,
}

/// Per-host pacing counters, snapshot into [`PacingStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostPacing {
    /// Current in-flight limit.
    pub limit: u32,
    /// Requests authorized through the pacer.
    pub authorized: u64,
    /// Clean completions observed.
    pub clean: u64,
    /// Bad completions (retries/timeouts/5xx) observed.
    pub bad: u64,
    /// Multiplicative decreases actually applied (the limit shrank).
    pub decreases: u64,
    /// Additive increases applied.
    pub increases: u64,
    /// Hedges fired (a speculative retry actually went out).
    pub hedges_fired: u64,
    /// Fired hedges whose answer was used (the hedge "won").
    pub hedges_won: u64,
    /// Hedge authorizations denied because the host's breaker was not
    /// closed.
    pub suppressed_breaker: u64,
    /// Hedge authorizations denied by the budget.
    pub suppressed_budget: u64,
    /// The host's current slow threshold, in virtual microseconds.
    pub threshold_us: u64,
}

/// Per-host pacing accounting, pre-sorted by host.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PacingStats {
    /// `(host, counters)` pairs in host order.
    pub hosts: Vec<(String, HostPacing)>,
}

impl PacingStats {
    /// Total hedges fired across all hosts.
    pub fn hedges_fired_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.hedges_fired).sum()
    }

    /// Total hedges won across all hosts.
    pub fn hedges_won_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.hedges_won).sum()
    }

    /// Total hedge authorizations suppressed (breaker + budget).
    pub fn suppressed_total(&self) -> u64 {
        self.hosts
            .iter()
            .map(|(_, h)| h.suppressed_breaker + h.suppressed_budget)
            .sum()
    }

    /// Total multiplicative decreases across all hosts.
    pub fn decreases_total(&self) -> u64 {
        self.hosts.iter().map(|(_, h)| h.decreases).sum()
    }
}

impl fmt::Display for PacingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pacing: {} host(s) paced, {} hedge(s) fired ({} won, {} suppressed), \
             {} limit decrease(s)",
            self.hosts.len(),
            self.hedges_fired_total(),
            self.hedges_won_total(),
            self.suppressed_total(),
            self.decreases_total()
        )?;
        for (host, h) in &self.hosts {
            write!(
                f,
                "\n  {host}: limit {}, {} clean / {} bad of {} authorized \
                 ({} decrease(s), {} increase(s)), hedges {} fired / {} won \
                 ({} breaker-suppressed, {} budget-suppressed), \
                 slow over {:.1}ms",
                h.limit,
                h.clean,
                h.bad,
                h.authorized,
                h.decreases,
                h.increases,
                h.hedges_fired,
                h.hedges_won,
                h.suppressed_breaker,
                h.suppressed_budget,
                h.threshold_us as f64 / 1000.0
            )?;
        }
        Ok(())
    }
}

/// The adaptive pacer: per-host AIMD limits plus the hedge budget.
///
/// All methods are `&self` behind one mutex so the pacer can be shared
/// by a scheduler thread and stats renderers. Decisions happen at
/// *authorization* time (single-threaded in the crawl scheduler), so
/// parallel fetch workers cannot race the budget into nondeterminism.
#[derive(Debug)]
pub struct Pacer {
    aimd: Option<AimdPolicy>,
    hedge: Option<HedgePolicy>,
    hosts: Mutex<BTreeMap<String, HostState>>,
}

impl Pacer {
    /// A pacer with the given policies; `None` disables that half.
    pub fn new(aimd: Option<AimdPolicy>, hedge: Option<HedgePolicy>) -> Pacer {
        Pacer {
            aimd,
            hedge,
            hosts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether adaptive limits are active.
    pub fn adaptive(&self) -> bool {
        self.aimd.is_some()
    }

    /// Whether hedging is active.
    pub fn hedging(&self) -> bool {
        self.hedge.is_some()
    }

    fn entry<'a>(
        &self,
        hosts: &'a mut BTreeMap<String, HostState>,
        host: &str,
    ) -> &'a mut HostState {
        if !hosts.contains_key(host) {
            let limit = self
                .aimd
                .as_ref()
                .map(|p| p.initial_limit.max(1))
                .unwrap_or(u32::MAX);
            hosts.insert(
                host.to_string(),
                HostState {
                    limit,
                    stats: HostPacing {
                        limit,
                        threshold_us: self
                            .hedge
                            .as_ref()
                            .map(|p| p.min_threshold_us)
                            .unwrap_or(u64::MAX),
                        ..HostPacing::default()
                    },
                    ..HostState::default()
                },
            );
        }
        hosts.get_mut(host).expect("just inserted")
    }

    /// The host's current in-flight limit (`usize::MAX` when adaptive
    /// limits are disabled).
    pub fn limit(&self, host: &str) -> usize {
        if self.aimd.is_none() {
            return usize::MAX;
        }
        let hosts = self.hosts.lock().unwrap();
        hosts
            .get(host)
            .map(|s| s.limit as usize)
            .unwrap_or_else(|| {
                self.aimd
                    .as_ref()
                    .map(|p| p.initial_limit.max(1) as usize)
                    .unwrap_or(usize::MAX)
            })
    }

    /// Authorize one request against `host`, deciding up front whether it
    /// may hedge. Called in schedule order — the budget arithmetic is
    /// exact because authorization is never concurrent with itself.
    pub fn authorize(&self, host: &str, breaker: BreakerState) -> HedgeToken {
        let mut hosts = self.hosts.lock().unwrap();
        let state = self.entry(&mut hosts, host);
        state.stats.authorized += 1;
        let Some(hedge) = &self.hedge else {
            return HedgeToken::denied();
        };
        let threshold_us = state.estimator.threshold_us(hedge);
        state.stats.threshold_us = threshold_us;
        // Never hedge a host whose breaker is open or probing: the hedge
        // would either be shed (wasted) or double load on the one probe
        // the breaker is using to decide recovery.
        if breaker != BreakerState::Closed {
            state.stats.suppressed_breaker += 1;
            return HedgeToken::denied();
        }
        // Budget: counting this grant, fired hedges must stay within
        // budget_percent of everything authorized so far. Unfired grants
        // are refunded in `settle_hedge`, so the budget is spent on real
        // hedges, yet can never be exceeded even transiently.
        let outstanding = state.stats.hedges_fired + 1;
        if outstanding * 100 > u64::from(hedge.budget_percent) * state.stats.authorized {
            state.stats.suppressed_budget += 1;
            return HedgeToken::denied();
        }
        // Reserve the budget slot by pre-counting the hedge as fired;
        // refunded if the worker never fires it.
        state.stats.hedges_fired += 1;
        HedgeToken {
            granted: true,
            threshold_us,
        }
    }

    /// Report what became of a granted token: refund the reserved budget
    /// slot if the hedge never fired, count the win if its answer was
    /// used. No-op for denied tokens.
    pub fn settle_hedge(&self, host: &str, token: HedgeToken, fired: bool, won: bool) {
        if !token.granted {
            return;
        }
        let mut hosts = self.hosts.lock().unwrap();
        let state = self.entry(&mut hosts, host);
        if !fired {
            state.stats.hedges_fired = state.stats.hedges_fired.saturating_sub(1);
        } else if won {
            state.stats.hedges_won += 1;
        }
    }

    /// Feed one completed request's outcome into the AIMD loop and the
    /// latency estimator. Called in schedule order.
    pub fn observe(&self, host: &str, obs: Observation) {
        let mut hosts = self.hosts.lock().unwrap();
        let state = self.entry(&mut hosts, host);
        if obs.latency_us > 0 {
            state.estimator.observe(obs.latency_us);
            if let Some(hedge) = &self.hedge {
                state.stats.threshold_us = state.estimator.threshold_us(hedge);
            }
        }
        let Some(aimd) = &self.aimd else {
            if obs.bad {
                state.stats.bad += 1;
            } else if obs.clean {
                state.stats.clean += 1;
            }
            return;
        };
        if obs.bad {
            state.stats.bad += 1;
            state.clean_streak = 0;
            let halved = (state.limit / 2).max(1);
            if halved < state.limit {
                state.limit = halved;
                state.stats.decreases += 1;
            }
        } else if obs.clean {
            state.stats.clean += 1;
            state.clean_streak += 1;
            if state.clean_streak >= aimd.increase_per.max(1) && state.limit < aimd.max_limit {
                state.limit += 1;
                state.stats.increases += 1;
                state.clean_streak = 0;
            }
        }
        state.stats.limit = state.limit;
    }

    /// Pre-sorted per-host snapshot.
    pub fn stats(&self) -> PacingStats {
        let hosts = self.hosts.lock().unwrap();
        PacingStats {
            hosts: hosts.iter().map(|(h, s)| (h.clone(), s.stats)).collect(),
        }
    }

    /// Snapshot every host's AIMD position, latency estimator, and
    /// counters for checkpointing.
    pub fn export_state(&self) -> PacingLayerState {
        let hosts = self.hosts.lock().unwrap();
        PacingLayerState {
            hosts: hosts
                .iter()
                .map(|(h, s)| PacerHostState {
                    host: h.clone(),
                    limit: s.limit,
                    clean_streak: s.clean_streak,
                    srtt_us: s.estimator.srtt_us,
                    dev_us: s.estimator.dev_us,
                    samples: s.estimator.samples,
                    stats: s.stats,
                })
                .collect(),
        }
    }

    /// Overwrite every host's state from a checkpoint snapshot.
    pub fn restore_state(&self, snapshot: &PacingLayerState) {
        let mut hosts = self.hosts.lock().unwrap();
        hosts.clear();
        for h in &snapshot.hosts {
            hosts.insert(
                h.host.clone(),
                HostState {
                    limit: h.limit,
                    clean_streak: h.clean_streak,
                    estimator: SlowEstimator {
                        srtt_us: h.srtt_us,
                        dev_us: h.dev_us,
                        samples: h.samples,
                    },
                    stats: h.stats,
                },
            );
        }
    }
}

/// Checkpointable state of a [`Pacer`]: one entry per host, sorted by
/// host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacingLayerState {
    /// Per-host pacing state.
    pub hosts: Vec<PacerHostState>,
}

/// One host's checkpointed pacing state: the AIMD limit and streak, the
/// RTO estimator, and the visible counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacerHostState {
    /// The host.
    pub host: String,
    /// Current in-flight limit.
    pub limit: u32,
    /// Clean completions since the last limit change.
    pub clean_streak: u32,
    /// Smoothed virtual latency (integer EWMA).
    pub srtt_us: i64,
    /// Smoothed latency deviation.
    pub dev_us: i64,
    /// Samples fed to the estimator.
    pub samples: u64,
    /// The host's visible counters.
    pub stats: HostPacing,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(latency_us: u64) -> Observation {
        Observation {
            clean: true,
            bad: false,
            latency_us,
        }
    }

    fn bad(latency_us: u64) -> Observation {
        Observation {
            clean: false,
            bad: true,
            latency_us,
        }
    }

    #[test]
    fn aimd_decreases_multiplicatively_and_floors_at_one() {
        let pacer = Pacer::new(Some(AimdPolicy::default()), None);
        assert_eq!(pacer.limit("h"), 4);
        pacer.observe("h", bad(100_000));
        assert_eq!(pacer.limit("h"), 2);
        pacer.observe("h", bad(100_000));
        assert_eq!(pacer.limit("h"), 1);
        pacer.observe("h", bad(100_000));
        assert_eq!(pacer.limit("h"), 1, "floor is 1, never 0");
        let stats = pacer.stats();
        let h = &stats.hosts[0].1;
        assert_eq!(h.decreases, 2, "a decrease at the floor is not counted");
        assert_eq!(h.bad, 3);
    }

    #[test]
    fn aimd_recovers_additively_after_a_clean_streak() {
        let pacer = Pacer::new(Some(AimdPolicy::default()), None);
        for _ in 0..4 {
            pacer.observe("h", bad(100_000));
        }
        assert_eq!(pacer.limit("h"), 1);
        // Four cleans per +1: 12 cleans climb 1 → 4.
        for _ in 0..12 {
            pacer.observe("h", clean(20_000));
        }
        assert_eq!(pacer.limit("h"), 4);
        // The ceiling holds no matter how long the streak runs.
        for _ in 0..200 {
            pacer.observe("h", clean(20_000));
        }
        assert_eq!(pacer.limit("h"), AimdPolicy::default().max_limit as usize);
    }

    #[test]
    fn hosts_are_paced_independently() {
        let pacer = Pacer::new(Some(AimdPolicy::default()), None);
        for _ in 0..3 {
            pacer.observe("sick", bad(200_000));
            pacer.observe("well", clean(20_000));
        }
        assert_eq!(pacer.limit("sick"), 1);
        assert_eq!(pacer.limit("well"), 4, "healthy host keeps its limit");
        assert_eq!(pacer.limit("unseen"), 4, "new host starts at initial");
    }

    #[test]
    fn hedge_budget_is_enforced_and_refunds_unfired_grants() {
        let pacer = Pacer::new(None, Some(HedgePolicy::default()));
        let mut granted = 0;
        for _ in 0..100 {
            let token = pacer.authorize("h", BreakerState::Closed);
            if token.granted {
                granted += 1;
                pacer.settle_hedge("h", token, true, false);
            }
        }
        // 5% of 100 authorized = at most 5 grants, and the first cannot
        // come before the 20th request.
        assert_eq!(granted, 5);
        let stats = pacer.stats();
        let h = &stats.hosts[0].1;
        assert_eq!(h.hedges_fired, 5);
        assert!(h.suppressed_budget >= 90, "{h:?}");
        assert!(
            h.hedges_fired * 100 <= 5 * h.authorized,
            "budget invariant: {h:?}"
        );

        // Refunded grants free budget for later hedges.
        let pacer = Pacer::new(None, Some(HedgePolicy::default()));
        let mut fired = 0;
        for i in 0..200 {
            let token = pacer.authorize("h", BreakerState::Closed);
            if token.granted {
                // Fire only every other grant; the rest refund.
                let fire = i % 2 == 0;
                if fire {
                    fired += 1;
                }
                pacer.settle_hedge("h", token, fire, false);
            }
        }
        let h = pacer.stats().hosts[0].1;
        assert_eq!(h.hedges_fired, fired);
        assert!(
            fired > 5,
            "refunds must free budget beyond the no-refund cap: {h:?}"
        );
        assert!(h.hedges_fired * 100 <= 5 * h.authorized, "{h:?}");
    }

    #[test]
    fn hedges_suppressed_unless_breaker_closed() {
        let pacer = Pacer::new(None, Some(HedgePolicy::default()));
        // Warm the budget far past the 20-request threshold.
        for _ in 0..50 {
            let _ = pacer.authorize("h", BreakerState::Closed);
        }
        for state in [BreakerState::Open, BreakerState::HalfOpen] {
            let token = pacer.authorize("h", state);
            assert!(!token.granted, "{state:?} must suppress hedging");
        }
        assert_eq!(pacer.stats().hosts[0].1.suppressed_breaker, 2);
    }

    #[test]
    fn slow_threshold_tracks_latency_and_keeps_its_floor() {
        let pacer = Pacer::new(None, Some(HedgePolicy::default()));
        let _ = pacer.authorize("h", BreakerState::Closed);
        assert_eq!(
            pacer.stats().hosts[0].1.threshold_us,
            HedgePolicy::default().min_threshold_us,
            "no observations yet: the floor holds"
        );
        // A steady fast host keeps the floor.
        for _ in 0..50 {
            pacer.observe("h", clean(20_000));
        }
        assert_eq!(
            pacer.stats().hosts[0].1.threshold_us,
            HedgePolicy::default().min_threshold_us
        );
        // A slow host raises it above the floor.
        for _ in 0..50 {
            pacer.observe("slow", clean(400_000));
        }
        let slow = pacer
            .stats()
            .hosts
            .iter()
            .find(|(h, _)| h == "slow")
            .unwrap()
            .1;
        assert!(
            slow.threshold_us > 400_000,
            "srtt + 4·dev over a 400ms host: {slow:?}"
        );
    }

    #[test]
    fn disabled_halves_behave_inertly() {
        let pacer = Pacer::new(None, None);
        assert_eq!(pacer.limit("h"), usize::MAX);
        let token = pacer.authorize("h", BreakerState::Closed);
        assert!(!token.granted);
        pacer.observe("h", bad(1));
        assert_eq!(pacer.limit("h"), usize::MAX);
        let stats = pacer.stats();
        assert_eq!(stats.hosts[0].1.bad, 1);
    }

    #[test]
    fn stats_render_per_host_in_order() {
        let pacer = Pacer::new(Some(AimdPolicy::default()), Some(HedgePolicy::default()));
        pacer.observe("zebra", bad(100_000));
        pacer.observe("aardvark", clean(20_000));
        let stats = pacer.stats();
        assert_eq!(stats.hosts[0].0, "aardvark");
        assert_eq!(stats.hosts[1].0, "zebra");
        let text = stats.to_string();
        assert!(text.starts_with("pacing:"), "{text}");
        assert!(text.contains("  zebra: limit 2"), "{text}");
        assert!(text.contains("decrease(s)"), "{text}");
    }
}
