//! Torture tests: the kinds of mangled HTML a 1998 checker actually met.
//!
//! The tokenizer's contract: never panic, never lose bytes, always produce
//! a token stream whose spans tile the input exactly.

use weblint_tokenizer::{tokenize, Quote, TokenKind, Tokenizer};

/// Assert the token spans tile `src` with no gaps or overlap.
fn assert_covers(src: &str) {
    let mut offset = 0;
    for t in Tokenizer::new(src) {
        assert_eq!(t.span.start.offset, offset, "gap in {src:?}");
        offset = t.span.end.offset;
    }
    assert_eq!(offset, src.len(), "lost tail of {src:?}");
}

#[test]
fn empty_and_whitespace() {
    for src in ["", " ", "\n\n\n", "\t \r\n"] {
        assert_covers(src);
    }
}

#[test]
fn lone_delimiters() {
    for src in [
        "<", ">", "&", "<>", "< >", "<<<", ">>>", "&&&", "</", "<!", "<?",
    ] {
        assert_covers(src);
    }
}

#[test]
fn unterminated_everything() {
    for src in [
        "<A",
        "<A HREF",
        "<A HREF=",
        "<A HREF=\"",
        "<A HREF=\"x",
        "<A HREF='x",
        "</A",
        "<!--",
        "<!-- almost -->extra<!--",
        "<!DOCTYPE",
        "<?php",
        "<![CDATA[ never closed",
        "<SCRIPT>while(1){}",
        "<STYLE>b{",
    ] {
        assert_covers(src);
    }
}

#[test]
fn pathological_quotes() {
    for src in [
        "<A HREF=\"a.html>x</A>",
        "<A HREF='a.html>x</A>",
        "<P X=\"a\" Y=\"b>z\">",
        "<P X='\"'>",
        "<P X=\"'\">",
        "<P \"\">",
        "<P ''=''>",
        "<P X=\"a\"Y=\"b\">",
    ] {
        assert_covers(src);
    }
}

#[test]
fn interleaved_and_nested_gibberish() {
    for src in [
        "<B><I></B></I>",
        "<P <B <I>>>",
        "<TABLE><TR><TD><TABLE><TR><TD></TD></TR></TABLE>",
        "<A HREF=a<b>c</a>",
        "<!-- <!-- nested --> -->",
        "<<B>>double<<)/B>>",
    ] {
        assert_covers(src);
    }
}

#[test]
fn real_world_1998_idioms() {
    // Attribute soup from actual period tooling.
    let front_page = r#"<html><head>
<meta http-equiv=Content-Type content="text/html; charset=iso-8859-1">
<meta name=GENERATOR content="Microsoft FrontPage 3.0">
<title>Welcome !!!</title></head>
<body bgcolor=#FFFFFF text=#000000 link=#0000EE vlink=#551A8B alink=#FF0000
 topmargin="0" leftmargin="0">
<table border=0 cellpadding=0 cellspacing=0 width="100%">
<tr><td><img src="spacer.gif" width=1 height=1></td></tr>
</table>
<font face="Arial, Helvetica" size=2>Hello&nbsp;world&nbsp;&copy;1998</font>
<script language=JavaScript>
<!--
document.write("<b>generated</b>");
// -->
</script>
</body></html>"#;
    assert_covers(front_page);
    let tokens = tokenize(front_page);
    // The script content (including the comment-wrapped document.write)
    // must be a single raw text token, not parsed as markup.
    let raw: Vec<_> = tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Text(text) if text.is_raw => Some(text.raw),
            _ => None,
        })
        .collect();
    assert_eq!(raw.len(), 1);
    assert!(raw[0].contains("document.write"));
}

#[test]
fn unquoted_attribute_values_parse() {
    let tokens = tokenize("<body bgcolor=#FFFFFF text=#000000>");
    let TokenKind::StartTag(tag) = &tokens[0].kind else {
        panic!("expected start tag");
    };
    assert_eq!(tag.attr("bgcolor").unwrap().value_raw(), "#FFFFFF");
    assert_eq!(
        tag.attr("bgcolor").unwrap().value.as_ref().unwrap().quote,
        Quote::None
    );
}

#[test]
fn crlf_line_endings_count_lines_correctly() {
    let src = "line one\r\n<B>two</B>\r\n<I>three</I>\r\n";
    let tokens = tokenize(src);
    let b = tokens
        .iter()
        .find(|t| matches!(&t.kind, TokenKind::StartTag(tag) if tag.name == "B"))
        .unwrap();
    assert_eq!(b.span.start.line, 2);
    let i = tokens
        .iter()
        .find(|t| matches!(&t.kind, TokenKind::StartTag(tag) if tag.name == "I"))
        .unwrap();
    assert_eq!(i.span.start.line, 3);
    assert_covers(src);
}

#[test]
fn eight_bit_latin1_as_utf8() {
    let src = "<P>caf\u{e9} na\u{ef}ve \u{a9} 1998</P>";
    assert_covers(src);
    let tokens = tokenize(src);
    assert_eq!(tokens.len(), 3);
}

#[test]
fn huge_single_tag() {
    // A tag with 1000 attributes must not blow up or quadratically stall.
    let mut src = String::from("<P");
    for i in 0..1000 {
        src.push_str(&format!(" a{i}=\"v{i}\""));
    }
    src.push('>');
    let tokens = tokenize(&src);
    assert_eq!(tokens.len(), 1);
    let TokenKind::StartTag(tag) = &tokens[0].kind else {
        panic!("expected start tag");
    };
    assert_eq!(tag.attrs.len(), 1000);
    assert_covers(&src);
}

#[test]
fn deeply_nested_tags() {
    let mut src = String::new();
    for _ in 0..2000 {
        src.push_str("<B>");
    }
    for _ in 0..2000 {
        src.push_str("</B>");
    }
    assert_eq!(tokenize(&src).len(), 4000);
    assert_covers(&src);
}

#[test]
fn comment_like_decls() {
    for src in [
        "<!>",
        "<!->",
        "<!--->",
        "<!---->",
        "<!ENTITY % x \"y\">",
        "<!DOCTYPE HTML SYSTEM \"html.dtd\" [ <!ENTITY a \"b\"> ]>",
    ] {
        assert_covers(src);
    }
}

#[test]
fn plaintext_eats_everything_after() {
    let src = "<PLAINTEXT>all of <this> is </just> text & stuff";
    let tokens = tokenize(src);
    assert_eq!(tokens.len(), 2);
    let TokenKind::Text(text) = &tokens[1].kind else {
        panic!("expected text");
    };
    assert!(text.is_raw);
    assert!(text.raw.contains("</just>"));
}
