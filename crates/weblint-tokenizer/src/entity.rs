//! Scanner for entity references inside text and attribute values.

use crate::pos::{Pos, Span};

/// One entity reference found in a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityRef<'a> {
    /// The entity name without `&` or `;` — `amp` for `&amp;`, `#224` for
    /// `&#224;`, `#xE0` for `&#xE0;`.
    pub name: &'a str,
    /// Numeric character reference (`&#…;`).
    pub numeric: bool,
    /// Hexadecimal numeric reference (`&#x…;`).
    pub hex: bool,
    /// A closing `;` was present. HTML tolerates its absence in some places
    /// but weblint warns about it.
    pub terminated: bool,
    /// Span covering the whole reference including `&` (and `;` if present).
    pub span: Span,
}

impl EntityRef<'_> {
    /// For numeric references, the referenced code point, if it parses and
    /// is a valid `char`.
    pub fn code_point(&self) -> Option<char> {
        if !self.numeric {
            return None;
        }
        let digits = &self.name[1..]; // strip '#'
        let value = if self.hex {
            u32::from_str_radix(&digits[1..], 16).ok()?
        } else {
            digits.parse::<u32>().ok()?
        };
        char::from_u32(value)
    }
}

/// Scan `text` (which starts at `base` in the source document) for entity
/// references.
///
/// Bare ampersands that do not begin an entity reference are *not* reported
/// here — see [`crate::scan_metachars`].
///
/// # Examples
///
/// ```
/// use weblint_tokenizer::{scan_entities, Pos};
///
/// let refs = scan_entities("caf&eacute; &#224; &undefined x", Pos::START);
/// assert_eq!(refs.len(), 3);
/// assert_eq!(refs[0].name, "eacute");
/// assert!(refs[1].numeric);
/// assert!(!refs[2].terminated);
/// ```
pub fn scan_entities<'a>(text: &'a str, base: Pos) -> Vec<EntityRef<'a>> {
    let mut out = Vec::new();
    let mut pos = base;
    let bytes = text.as_bytes();
    // Jump ampersand to ampersand; the text between them only needs its
    // line/column accounting, which advance_str does byte-wise. Clean text
    // costs one memchr miss and nothing else.
    let mut i = 0;
    while let Some(j) = crate::cursor::memchr(b'&', &bytes[i..]) {
        let amp = i + j;
        pos.advance_str(&text[i..amp]);
        let start = pos;
        // Decide whether this begins an entity reference.
        let (name_len, numeric, hex) = entity_name_len(&text[amp + 1..]);
        if name_len == 0 {
            pos.advance('&');
            i = amp + 1;
            continue;
        }
        let name = &text[amp + 1..amp + 1 + name_len];
        let terminated = bytes.get(amp + 1 + name_len) == Some(&b';');
        // Advance over '&', the name, and the optional ';' (all ASCII).
        let total = 1 + name_len + usize::from(terminated);
        pos.advance_str(&text[amp..amp + total]);
        i = amp + total;
        out.push(EntityRef {
            name,
            numeric,
            hex,
            terminated,
            span: Span::new(start, pos),
        });
    }
    out
}

/// Length in bytes of the entity name beginning at the start of `rest`
/// (after the `&`), with flags for numeric and hex forms. Returns 0 when
/// `rest` does not begin an entity reference.
fn entity_name_len(rest: &str) -> (usize, bool, bool) {
    let bytes = rest.as_bytes();
    match bytes.first() {
        Some(b'#') => {
            let hex = matches!(bytes.get(1), Some(b'x') | Some(b'X'));
            let digit_start = if hex { 2 } else { 1 };
            let mut len = digit_start;
            while let Some(&b) = bytes.get(len) {
                let ok = if hex {
                    b.is_ascii_hexdigit()
                } else {
                    b.is_ascii_digit()
                };
                if !ok {
                    break;
                }
                len += 1;
            }
            if len == digit_start {
                (0, false, false) // "&#" alone is not a reference
            } else {
                (len, true, hex)
            }
        }
        Some(b) if b.is_ascii_alphabetic() => {
            let mut len = 1;
            while let Some(&b) = bytes.get(len) {
                if !b.is_ascii_alphanumeric() {
                    break;
                }
                len += 1;
            }
            (len, false, false)
        }
        _ => (0, false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entity_terminated() {
        let refs = scan_entities("&amp;", Pos::START);
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].name, "amp");
        assert!(refs[0].terminated);
        assert!(!refs[0].numeric);
        assert_eq!(refs[0].span.start.col, 1);
        assert_eq!(refs[0].span.end.col, 6);
    }

    #[test]
    fn named_entity_unterminated() {
        let refs = scan_entities("fish &chips tonight", Pos::START);
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].name, "chips");
        assert!(!refs[0].terminated);
    }

    #[test]
    fn numeric_decimal() {
        let refs = scan_entities("&#224;", Pos::START);
        assert_eq!(refs[0].name, "#224");
        assert!(refs[0].numeric);
        assert!(!refs[0].hex);
        assert_eq!(refs[0].code_point(), Some('à'));
    }

    #[test]
    fn numeric_hex() {
        let refs = scan_entities("&#xE0; and &#X41;", Pos::START);
        assert_eq!(refs[0].code_point(), Some('à'));
        assert!(refs[0].hex);
        assert_eq!(refs[1].code_point(), Some('A'));
    }

    #[test]
    fn numeric_out_of_range_has_no_code_point() {
        let refs = scan_entities("&#1114112;", Pos::START);
        assert_eq!(refs[0].code_point(), None);
    }

    #[test]
    fn bare_ampersand_is_not_a_reference() {
        assert!(scan_entities("R & D, 100% &", Pos::START).is_empty());
        assert!(scan_entities("&# alone", Pos::START).is_empty());
        // "&T," — 'T' is alphabetic so it *does* scan as an (unknown,
        // unterminated) entity. That is the behaviour weblint wants: it
        // cannot know 'T' is not an entity without the entity table.
        let refs = scan_entities("AT&T x", Pos::START);
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].name, "T");
    }

    #[test]
    fn positions_track_lines() {
        let refs = scan_entities("a\nb &amp; c", Pos::START);
        assert_eq!(refs[0].span.start.line, 2);
        assert_eq!(refs[0].span.start.col, 3);
    }

    #[test]
    fn multiple_entities() {
        let refs = scan_entities("&lt;tag&gt;", Pos::START);
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].name, "lt");
        assert_eq!(refs[1].name, "gt");
    }

    #[test]
    fn name_stops_at_non_alphanumeric() {
        let refs = scan_entities("&copy-left;", Pos::START);
        assert_eq!(refs[0].name, "copy");
        assert!(!refs[0].terminated);
    }
}
