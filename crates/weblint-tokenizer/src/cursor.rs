//! A character cursor over the source with position tracking.

use crate::pos::Pos;

/// A forward-only cursor over `src` that tracks line/column/offset.
#[derive(Debug, Clone)]
pub(crate) struct Cursor<'a> {
    src: &'a str,
    pos: Pos,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            pos: Pos::START,
        }
    }

    /// Current position.
    pub(crate) fn pos(&self) -> Pos {
        self.pos
    }

    /// Whole source string.
    pub(crate) fn src(&self) -> &'a str {
        self.src
    }

    /// Remaining unconsumed input.
    pub(crate) fn rest(&self) -> &'a str {
        &self.src[self.pos.offset..]
    }

    /// True when all input has been consumed.
    pub(crate) fn is_eof(&self) -> bool {
        self.pos.offset >= self.src.len()
    }

    /// Peek at the next character without consuming it.
    pub(crate) fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Peek at the character `n` characters ahead (0 == `peek`).
    pub(crate) fn peek_nth(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    /// Consume and return the next character.
    pub(crate) fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos.advance(ch);
        Some(ch)
    }

    /// Whether the remaining input starts with `s` (case-sensitive).
    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Whether the remaining input starts with `s`, ignoring ASCII case.
    pub(crate) fn starts_with_ci(&self, s: &str) -> bool {
        // Compare as bytes: slicing the str at `s.len()` could split a
        // multibyte character and panic.
        let rest = self.rest().as_bytes();
        let pat = s.as_bytes();
        rest.len() >= pat.len() && rest[..pat.len()].eq_ignore_ascii_case(pat)
    }

    /// Consume `n` bytes, which must fall on a character boundary.
    pub(crate) fn bump_bytes(&mut self, n: usize) {
        let taken = &self.rest()[..n];
        self.pos.advance_str(taken);
    }

    /// Consume characters while `f` holds; return the consumed slice.
    pub(crate) fn eat_while(&mut self, mut f: impl FnMut(char) -> bool) -> &'a str {
        let start = self.pos.offset;
        while let Some(ch) = self.peek() {
            if !f(ch) {
                break;
            }
            self.pos.advance(ch);
        }
        &self.src[start..self.pos.offset]
    }

    /// Consume up to (not including) the next occurrence of the ASCII byte
    /// `stop`, or to end-of-file; return the consumed slice. The byte-level
    /// fast path for long text runs: no character decoding at all.
    pub(crate) fn eat_until_byte(&mut self, stop: u8) -> &'a str {
        debug_assert!(
            stop.is_ascii(),
            "stop byte must be ASCII for boundary safety"
        );
        let rest = self.rest();
        let idx = memchr(stop, rest.as_bytes()).unwrap_or(rest.len());
        let content = &rest[..idx];
        self.pos.advance_str(content);
        content
    }

    /// Consume ASCII whitespace; return true if any was consumed.
    pub(crate) fn eat_ws(&mut self) -> bool {
        !self.eat_while(|c| c.is_ascii_whitespace()).is_empty()
    }

    /// Consume up to and including the next occurrence of `needle`;
    /// return the slice *before* the needle, or `None` (consuming nothing)
    /// if the needle does not occur.
    pub(crate) fn eat_until_and_past(&mut self, needle: &str) -> Option<&'a str> {
        let rest = self.rest();
        let idx = rest.find(needle)?;
        let content = &rest[..idx];
        self.pos.advance_str(content);
        self.pos.advance_str(needle);
        Some(content)
    }

    /// Find the next occurrence of `needle` case-insensitively in the
    /// remaining input; returns byte index relative to [`Cursor::rest`].
    pub(crate) fn find_ci(&self, needle: &str) -> Option<usize> {
        find_ci(self.rest(), needle)
    }

    /// Consume everything to end-of-file; return it.
    pub(crate) fn eat_to_eof(&mut self) -> &'a str {
        let rest = self.rest();
        self.pos.advance_str(rest);
        rest
    }
}

/// Case-insensitive substring search (ASCII case only).
pub(crate) fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    let n = needle.len();
    if haystack.len() < n {
        return None;
    }
    let hay = haystack.as_bytes();
    let pat = needle.as_bytes();
    let first = pat[0];
    // Compare as bytes throughout: a candidate index may fall inside a
    // multibyte character, and `&str` slicing there would panic. The needles
    // are always ASCII (`</script` etc.), so a byte match is also a
    // char-boundary match.
    if !first.is_ascii_alphabetic() {
        // Case-insensitivity is moot for the first byte: jump candidate to
        // candidate with memchr instead of walking every byte.
        let mut i = 0;
        while let Some(j) = memchr(first, &hay[i..]) {
            let at = i + j;
            if at > hay.len() - n {
                return None;
            }
            if hay[at..at + n].eq_ignore_ascii_case(pat) {
                return Some(at);
            }
            i = at + 1;
        }
        return None;
    }
    let first_lo = first.to_ascii_lowercase();
    for i in 0..=hay.len() - n {
        if hay[i].to_ascii_lowercase() == first_lo && hay[i..i + n].eq_ignore_ascii_case(pat) {
            return Some(i);
        }
    }
    None
}

/// Position of the first occurrence of `needle` in `hay` — a SWAR memchr.
///
/// Words are tested eight bytes at a time with the classic zero-byte trick
/// (`(x - 0x01…01) & !x & 0x80…80` is non-zero iff some byte of `x` is
/// zero); the byte loop only runs over the final partial word or the word
/// containing the hit.
pub(crate) fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
    const LANES: usize = std::mem::size_of::<usize>();
    const LO: usize = usize::from_ne_bytes([0x01; LANES]);
    const HI: usize = usize::from_ne_bytes([0x80; LANES]);
    let broadcast = usize::from_ne_bytes([needle; LANES]);
    let mut i = 0;
    while i + LANES <= hay.len() {
        let chunk = usize::from_ne_bytes(hay[i..i + LANES].try_into().unwrap());
        let x = chunk ^ broadcast;
        if x.wrapping_sub(LO) & !x & HI != 0 {
            break;
        }
        i += LANES;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_tracks_position() {
        let mut c = Cursor::new("a\nb");
        assert_eq!(c.bump(), Some('a'));
        assert_eq!(c.bump(), Some('\n'));
        assert_eq!(c.pos().line, 2);
        assert_eq!(c.bump(), Some('b'));
        assert!(c.is_eof());
        assert_eq!(c.bump(), None);
    }

    #[test]
    fn eat_while_returns_slice() {
        let mut c = Cursor::new("abc123");
        assert_eq!(c.eat_while(|ch| ch.is_ascii_alphabetic()), "abc");
        assert_eq!(c.rest(), "123");
    }

    #[test]
    fn eat_until_and_past_consumes_needle() {
        let mut c = Cursor::new("foo-->bar");
        assert_eq!(c.eat_until_and_past("-->"), Some("foo"));
        assert_eq!(c.rest(), "bar");
    }

    #[test]
    fn eat_until_missing_needle_consumes_nothing() {
        let mut c = Cursor::new("foobar");
        assert_eq!(c.eat_until_and_past("-->"), None);
        assert_eq!(c.rest(), "foobar");
    }

    #[test]
    fn starts_with_ci_matches_any_case() {
        let c = Cursor::new("DocType html");
        assert!(c.starts_with_ci("doctype"));
        assert!(!c.starts_with("doctype"));
    }

    #[test]
    fn starts_with_ci_survives_multibyte_input() {
        // Regression: the pattern length may fall inside a multibyte
        // character; byte-wise comparison must not panic.
        let c = Cursor::new("<! '-eIn\u{feff} x");
        assert!(!c.starts_with_ci("<!doctype"));
        let c = Cursor::new("é");
        assert!(!c.starts_with_ci("ab"));
    }

    #[test]
    fn find_ci_finds_mixed_case() {
        assert_eq!(find_ci("xx</ScRiPt>", "</script"), Some(2));
        assert_eq!(find_ci("nothing here", "</script"), None);
        assert_eq!(find_ci("abc", ""), Some(0));
        assert_eq!(find_ci("ab", "abc"), None);
    }

    #[test]
    fn find_ci_survives_multibyte_haystack() {
        // Regression: candidate offsets can fall inside multibyte
        // characters; the comparison must stay byte-wise.
        let hay = "鄨Q\u{202e}x</script>";
        assert_eq!(find_ci(hay, "</script"), Some("鄨Q\u{202e}x".len()));
        assert_eq!(find_ci("é鄨\u{202e}", "</script"), None);
    }

    #[test]
    fn memchr_matches_naive_search() {
        let hay = b"abcabc\x00xyz\xff\x80abc<tail<";
        for len in 0..hay.len() {
            for needle in [b'a', b'<', b'\x00', b'\xff', b'\x80', b'q'] {
                let expected = hay[..len].iter().position(|&b| b == needle);
                assert_eq!(memchr(needle, &hay[..len]), expected, "{needle} in {len}");
            }
        }
        let long = [b'x'; 100];
        assert_eq!(memchr(b'y', &long), None);
        let mut long = long;
        long[83] = b'y';
        assert_eq!(memchr(b'y', &long), Some(83));
    }

    #[test]
    fn eat_until_byte_stops_or_hits_eof() {
        let mut c = Cursor::new("abé\ncd<ef");
        assert_eq!(c.eat_until_byte(b'<'), "abé\ncd");
        assert_eq!(c.pos().line, 2);
        assert_eq!(c.pos().col, 3);
        assert_eq!(c.rest(), "<ef");
        c.bump();
        assert_eq!(c.eat_until_byte(b'<'), "ef");
        assert!(c.is_eof());
    }

    #[test]
    fn peek_nth() {
        let c = Cursor::new("xyz");
        assert_eq!(c.peek_nth(0), Some('x'));
        assert_eq!(c.peek_nth(2), Some('z'));
        assert_eq!(c.peek_nth(3), None);
    }
}
