//! A character cursor over the source with position tracking.

use crate::pos::Pos;

/// A forward-only cursor over `src` that tracks line/column/offset.
#[derive(Debug, Clone)]
pub(crate) struct Cursor<'a> {
    src: &'a str,
    pos: Pos,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            pos: Pos::START,
        }
    }

    /// Current position.
    pub(crate) fn pos(&self) -> Pos {
        self.pos
    }

    /// Whole source string.
    pub(crate) fn src(&self) -> &'a str {
        self.src
    }

    /// Remaining unconsumed input.
    pub(crate) fn rest(&self) -> &'a str {
        &self.src[self.pos.offset..]
    }

    /// True when all input has been consumed.
    pub(crate) fn is_eof(&self) -> bool {
        self.pos.offset >= self.src.len()
    }

    /// Peek at the next character without consuming it.
    pub(crate) fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Peek at the character `n` characters ahead (0 == `peek`).
    pub(crate) fn peek_nth(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    /// Consume and return the next character.
    pub(crate) fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos.advance(ch);
        Some(ch)
    }

    /// Whether the remaining input starts with `s` (case-sensitive).
    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Whether the remaining input starts with `s`, ignoring ASCII case.
    pub(crate) fn starts_with_ci(&self, s: &str) -> bool {
        // Compare as bytes: slicing the str at `s.len()` could split a
        // multibyte character and panic.
        let rest = self.rest().as_bytes();
        let pat = s.as_bytes();
        rest.len() >= pat.len() && rest[..pat.len()].eq_ignore_ascii_case(pat)
    }

    /// Consume `n` bytes, which must fall on a character boundary.
    pub(crate) fn bump_bytes(&mut self, n: usize) {
        let taken = &self.rest()[..n];
        self.pos.advance_str(taken);
    }

    /// Consume characters while `f` holds; return the consumed slice.
    pub(crate) fn eat_while(&mut self, mut f: impl FnMut(char) -> bool) -> &'a str {
        let start = self.pos.offset;
        while let Some(ch) = self.peek() {
            if !f(ch) {
                break;
            }
            self.pos.advance(ch);
        }
        &self.src[start..self.pos.offset]
    }

    /// Consume ASCII whitespace; return true if any was consumed.
    pub(crate) fn eat_ws(&mut self) -> bool {
        !self.eat_while(|c| c.is_ascii_whitespace()).is_empty()
    }

    /// Consume up to and including the next occurrence of `needle`;
    /// return the slice *before* the needle, or `None` (consuming nothing)
    /// if the needle does not occur.
    pub(crate) fn eat_until_and_past(&mut self, needle: &str) -> Option<&'a str> {
        let rest = self.rest();
        let idx = rest.find(needle)?;
        let content = &rest[..idx];
        self.pos.advance_str(content);
        self.pos.advance_str(needle);
        Some(content)
    }

    /// Find the next occurrence of `needle` case-insensitively in the
    /// remaining input; returns byte index relative to [`Cursor::rest`].
    pub(crate) fn find_ci(&self, needle: &str) -> Option<usize> {
        find_ci(self.rest(), needle)
    }

    /// Consume everything to end-of-file; return it.
    pub(crate) fn eat_to_eof(&mut self) -> &'a str {
        let rest = self.rest();
        self.pos.advance_str(rest);
        rest
    }
}

/// Case-insensitive substring search (ASCII case only).
pub(crate) fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    let n = needle.len();
    if haystack.len() < n {
        return None;
    }
    let first_lo = needle.as_bytes()[0].to_ascii_lowercase();
    let hay = haystack.as_bytes();
    let pat = needle.as_bytes();
    for i in 0..=hay.len() - n {
        // Compare as bytes: `i` may fall inside a multibyte character, and
        // `&str` slicing there would panic. The needles are always ASCII
        // (`</script` etc.), so a byte match is also a char-boundary match.
        if hay[i].to_ascii_lowercase() == first_lo && hay[i..i + n].eq_ignore_ascii_case(pat) {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_tracks_position() {
        let mut c = Cursor::new("a\nb");
        assert_eq!(c.bump(), Some('a'));
        assert_eq!(c.bump(), Some('\n'));
        assert_eq!(c.pos().line, 2);
        assert_eq!(c.bump(), Some('b'));
        assert!(c.is_eof());
        assert_eq!(c.bump(), None);
    }

    #[test]
    fn eat_while_returns_slice() {
        let mut c = Cursor::new("abc123");
        assert_eq!(c.eat_while(|ch| ch.is_ascii_alphabetic()), "abc");
        assert_eq!(c.rest(), "123");
    }

    #[test]
    fn eat_until_and_past_consumes_needle() {
        let mut c = Cursor::new("foo-->bar");
        assert_eq!(c.eat_until_and_past("-->"), Some("foo"));
        assert_eq!(c.rest(), "bar");
    }

    #[test]
    fn eat_until_missing_needle_consumes_nothing() {
        let mut c = Cursor::new("foobar");
        assert_eq!(c.eat_until_and_past("-->"), None);
        assert_eq!(c.rest(), "foobar");
    }

    #[test]
    fn starts_with_ci_matches_any_case() {
        let c = Cursor::new("DocType html");
        assert!(c.starts_with_ci("doctype"));
        assert!(!c.starts_with("doctype"));
    }

    #[test]
    fn starts_with_ci_survives_multibyte_input() {
        // Regression: the pattern length may fall inside a multibyte
        // character; byte-wise comparison must not panic.
        let c = Cursor::new("<! '-eIn\u{feff} x");
        assert!(!c.starts_with_ci("<!doctype"));
        let c = Cursor::new("é");
        assert!(!c.starts_with_ci("ab"));
    }

    #[test]
    fn find_ci_finds_mixed_case() {
        assert_eq!(find_ci("xx</ScRiPt>", "</script"), Some(2));
        assert_eq!(find_ci("nothing here", "</script"), None);
        assert_eq!(find_ci("abc", ""), Some(0));
        assert_eq!(find_ci("ab", "abc"), None);
    }

    #[test]
    fn find_ci_survives_multibyte_haystack() {
        // Regression: candidate offsets can fall inside multibyte
        // characters; the comparison must stay byte-wise.
        let hay = "鄨Q\u{202e}x</script>";
        assert_eq!(find_ci(hay, "</script"), Some("鄨Q\u{202e}x".len()));
        assert_eq!(find_ci("é鄨\u{202e}", "</script"), None);
    }

    #[test]
    fn peek_nth() {
        let c = Cursor::new("xyz");
        assert_eq!(c.peek_nth(0), Some('x'));
        assert_eq!(c.peek_nth(2), Some('z'));
        assert_eq!(c.peek_nth(3), None);
    }
}
