//! Incremental tokenization over a growing byte stream.
//!
//! [`StreamTokenizer`] is the buffer-management layer that turns the
//! pull-based [`Tokenizer`] into a push-based one: callers [`feed`] byte
//! chunks as they arrive (off a socket, a pipe, a fetch in progress) and
//! drain the tokens that are already *prefix-stable* — tokens whose extent
//! no future byte can change (see [`Tokenizer::step`]). The token stream,
//! spans included, is byte-identical to tokenizing the concatenated
//! document in one shot.
//!
//! Three pieces of state cross a feed boundary:
//!
//! 1. **The undecoded tail** — up to three bytes of an incomplete UTF-8
//!    sequence, held back so the lossy decode matches
//!    [`String::from_utf8_lossy`] of the whole input.
//! 2. **The unconsumed buffer suffix** — bytes of a token still waiting for
//!    its terminator, plus the global [`Pos`] of its first byte so resumed
//!    spans rebase onto document coordinates.
//! 3. **The tokenizer mode flags** — the pending raw-text close pattern
//!    (`</script` …) and the `PLAINTEXT` latch.
//!
//! Consumed prefixes are compacted away, so memory is bounded by the
//! largest single token, not the document.
//!
//! [`feed`]: StreamTokenizer::feed

use crate::pos::{Pos, Span};
use crate::token::{Token, TokenKind};
use crate::tokenizer::{Step, Tokenizer};

/// Compact the buffer only once this many consumed bytes have piled up (and
/// they are at least half the buffer), so steady chunked feeding does not
/// degenerate into a quadratic memmove.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// A push-based tokenizer over a document that arrives in chunks.
///
/// # Examples
///
/// ```
/// use weblint_tokenizer::StreamTokenizer;
///
/// let mut stream = StreamTokenizer::new();
/// let mut names = Vec::new();
/// for chunk in [&b"<HTML><BO"[..], b"DY>hi</BODY", b"></HTML>"] {
///     stream.feed(chunk);
///     stream.drain_tokens(|tok, _, _| names.push(tok.to_string()));
/// }
/// stream.finish();
/// stream.drain_tokens(|tok, _, _| names.push(tok.to_string()));
/// assert_eq!(
///     names,
///     ["<HTML>", "<BODY>", "text(2 bytes)", "</BODY>", "</HTML>"]
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamTokenizer {
    /// Decoded text not yet fully consumed; `buf[consumed..]` is the
    /// pending suffix the next drain resumes on.
    buf: String,
    /// Byte offset into `buf` of the first unconsumed byte.
    consumed: usize,
    /// Global document position of `buf[consumed]` — survives compaction,
    /// which only moves bytes inside `buf`.
    base: Pos,
    /// Undecoded tail: a so-far-valid prefix of one UTF-8 character cut off
    /// by the chunk boundary (at most 3 bytes).
    pending: Vec<u8>,
    /// Carried [`Tokenizer::mode`] flags.
    raw_text_until: Option<&'static str>,
    plaintext: bool,
    /// `finish` was called: the next drain treats the buffer end as EOF.
    eof: bool,
    /// Length of the unconsumed suffix's prefix already known to contain
    /// no `<`. A text run (or raw-text body) can only terminate at a `<`,
    /// so while none has arrived, a drain has nothing to do — without
    /// this watermark, every feed of a long text run would re-scan the
    /// whole carry, turning a streamed `<PRE>` dump quadratic.
    text_scan: usize,
}

impl StreamTokenizer {
    /// A stream positioned at the start of a document.
    pub fn new() -> StreamTokenizer {
        StreamTokenizer::default()
    }

    /// Append a chunk of the document's bytes.
    ///
    /// Invalid UTF-8 is replaced exactly as [`String::from_utf8_lossy`]
    /// would over the concatenated input; a multibyte character split by the
    /// chunk boundary is held back until its remaining bytes arrive.
    pub fn feed(&mut self, chunk: &[u8]) {
        debug_assert!(!self.eof, "feed after finish");
        if self.pending.is_empty() {
            self.decode(chunk);
        } else {
            let mut tail = std::mem::take(&mut self.pending);
            tail.extend_from_slice(chunk);
            self.decode(&tail);
        }
    }

    /// Declare end-of-input: any held-back partial character becomes one
    /// replacement character (as `from_utf8_lossy` of the full input would
    /// produce), and the next [`drain_tokens`](Self::drain_tokens) emits
    /// every remaining token.
    pub fn finish(&mut self) {
        if !self.pending.is_empty() {
            self.pending.clear();
            self.buf.push('\u{FFFD}');
        }
        self.eof = true;
    }

    /// Decode `bytes` onto the buffer, stashing an incomplete trailing
    /// character in `pending`.
    fn decode(&mut self, mut bytes: &[u8]) {
        loop {
            match std::str::from_utf8(bytes) {
                Ok(s) => {
                    self.buf.push_str(s);
                    return;
                }
                Err(e) => {
                    let valid = e.valid_up_to();
                    self.buf
                        .push_str(std::str::from_utf8(&bytes[..valid]).unwrap());
                    match e.error_len() {
                        // A valid-so-far sequence cut off by the chunk end.
                        None => {
                            self.pending = bytes[valid..].to_vec();
                            return;
                        }
                        // A definitely-invalid sequence of `n` bytes: one
                        // replacement character, then keep decoding.
                        Some(n) => {
                            self.buf.push('\u{FFFD}');
                            bytes = &bytes[valid + n..];
                        }
                    }
                }
            }
        }
    }

    /// Emit every token that is already stable (every remaining token, after
    /// [`finish`](Self::finish)).
    ///
    /// The callback receives the token with **global** (whole-document)
    /// spans, plus the backing text slice and the global byte offset of that
    /// slice's first byte — enough to resolve any span the token carries via
    /// `&slice[span.start.offset - slice_offset..]`.
    pub fn drain_tokens<F: FnMut(Token<'_>, &str, usize)>(&mut self, mut f: F) {
        if !self.eof {
            // `<PLAINTEXT>` swallows the rest of the document as one
            // token; nothing can stabilize until finish.
            if self.plaintext {
                return;
            }
            // Every token terminator in both remaining modes begins with
            // `<` (the next tag for text, the close pattern for raw
            // text). No `<` in the suffix means no token can complete:
            // skip the resume and remember how far we looked.
            let suffix = &self.buf.as_bytes()[self.consumed..];
            let scanned = self.text_scan.min(suffix.len());
            if !suffix[scanned..].contains(&b'<') {
                self.text_scan = suffix.len();
                return;
            }
            self.text_scan = 0;
        }
        self.compact();
        let slice = &self.buf[self.consumed..];
        let base = self.base;
        let mut tok = Tokenizer::resume(slice, self.raw_text_until, self.plaintext);
        let mut advanced = 0usize;
        let mut end = base;
        while let Step::Token(mut t) = tok.step(self.eof) {
            rebase_token(&mut t, base);
            advanced = t.span.end.offset - base.offset;
            end = t.span.end;
            f(t, slice, base.offset);
        }
        let (raw_text_until, plaintext) = tok.mode();
        self.raw_text_until = raw_text_until;
        self.plaintext = plaintext;
        self.consumed += advanced;
        self.base = end;
    }

    /// Bytes currently buffered (unconsumed suffix plus any undecoded
    /// tail) — the stream's memory footprint, bounded by the largest
    /// in-flight token.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed + self.pending.len()
    }

    /// Global position just past the last drained token.
    pub fn pos(&self) -> Pos {
        self.base
    }

    /// Drop the consumed prefix once it dominates the buffer. `consumed` is
    /// always a token boundary, hence a character boundary.
    fn compact(&mut self) {
        if self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed >= COMPACT_THRESHOLD && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

/// Map a position produced over a resumed suffix onto whole-document
/// coordinates: `base` is the document position of the suffix's first byte.
fn rebase_pos(p: Pos, base: Pos) -> Pos {
    Pos {
        line: base.line + p.line - 1,
        // Columns reset at each newline, so only positions still on the
        // suffix's first line shift by the base column.
        col: if p.line == 1 {
            base.col + p.col - 1
        } else {
            p.col
        },
        offset: base.offset + p.offset,
    }
}

fn rebase_span(span: &mut Span, base: Pos) {
    span.start = rebase_pos(span.start, base);
    span.end = rebase_pos(span.end, base);
}

/// Rewrite every span a token carries (its own, each attribute's name span,
/// each attribute value's span) onto whole-document coordinates.
fn rebase_token(token: &mut Token<'_>, base: Pos) {
    if base.offset == 0 {
        return; // the suffix is the document start; spans already global
    }
    rebase_span(&mut token.span, base);
    if let TokenKind::StartTag(tag) | TokenKind::EndTag(tag) = &mut token.kind {
        for attr in &mut tag.attrs {
            rebase_span(&mut attr.span, base);
            if let Some(value) = &mut attr.value {
                rebase_span(&mut value.span, base);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    /// Render a token to a form that captures everything the engine ever
    /// looks at: kind, span, attribute spans, text content and flags. Debug
    /// output prints slice *contents*, so streamed and one-shot tokens
    /// compare equal iff they are byte-identical.
    fn render_all(src: &[u8], chunks: &[&[u8]]) -> (Vec<String>, Vec<String>) {
        let text = String::from_utf8_lossy(src);
        let one_shot: Vec<String> = tokenize(&text).iter().map(|t| format!("{t:?}")).collect();
        let mut streamed = Vec::new();
        let mut stream = StreamTokenizer::new();
        for chunk in chunks {
            stream.feed(chunk);
            stream.drain_tokens(|t, _, _| streamed.push(format!("{t:?}")));
        }
        stream.finish();
        stream.drain_tokens(|t, _, _| streamed.push(format!("{t:?}")));
        (one_shot, streamed)
    }

    fn assert_split_equivalence(src: &[u8]) {
        for cut in 0..=src.len() {
            let (one_shot, streamed) = render_all(src, &[&src[..cut], &src[cut..]]);
            assert_eq!(
                one_shot,
                streamed,
                "split at {cut} of {:?}",
                String::from_utf8_lossy(src)
            );
        }
        // Byte-at-a-time is the adversarial extreme: every boundary at once.
        let singles: Vec<&[u8]> = src.chunks(1).collect();
        let (one_shot, streamed) = render_all(src, &singles);
        assert_eq!(
            one_shot,
            streamed,
            "byte-at-a-time of {:?}",
            String::from_utf8_lossy(src)
        );
    }

    #[test]
    fn every_split_of_every_tricky_document_matches_one_shot() {
        let docs: &[&[u8]] = &[
            b"",
            b"<HTML><BODY>hi</BODY></HTML>",
            b"<A HREF=\"a.html>here</B></A>",
            b"<IMG ALT=\"a > b\" SRC=\"x.gif\">text",
            b"<IMG ALT=\"two\nlines\">",
            b"<P <B>x",
            b"<A HREF=x",
            b"<A HREF=\"x",
            b"i < 3 and j <3",
            b"trailing lt <",
            b"<BR/>",
            b"</ HEAD>",
            b"</A HREF=x>",
            b"</>",
            b"<!-- hello -->after",
            b"<!-- runs off the end",
            b"<!-- a -- b -->",
            b"<!-- <B>bold</B> -->",
            b"<!-->",
            b"<!doctype html><HTML>",
            b"<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\"><HTML>",
            b"<!ENTITY foo \"bar\">x",
            b"<!ENTITY gt \">\" done>y",
            b"<?xml version=\"1.0\"?>x",
            b"<![CDATA[ <not-a-tag> ]]>x",
            b"<![CDATA[ never closed",
            b"<SCRIPT>if (a<b) { x(); }</SCRIPT>after",
            b"<style>b { color: red }</STYLE>",
            b"<SCRIPT>never closed",
            b"<SCRIPT></SCRIPT>x",
            b"<PLAINTEXT><B>not markup</B>",
            b"<P \"\">x",
            "caf\u{e9} \u{65e5}\u{672c}\u{8a9e} text<B>x</B>".as_bytes(),
            "<IMG ALT=\"caf\u{e9}\">".as_bytes(),
            b"<HTML>\n<HEAD>\n<TITLE>example page\n</HEAD>\n<BODY BGCOLOR=\"fffff\" TEXT=#00ff00>\n<H1>My Example</H2>\nClick <B><A HREF=\"a.html>here</B></A>\nfor more details.\n</BODY>\n</HTML>\n",
        ];
        for doc in docs {
            assert_split_equivalence(doc);
        }
    }

    #[test]
    fn invalid_utf8_matches_from_utf8_lossy_at_every_split() {
        let docs: &[&[u8]] = &[
            b"<P>\xff\xfe</P>",
            b"<P>a\xe2\x82</P>",          // truncated 3-byte sequence inside
            b"<P>tail\xe2\x82",           // truncated sequence at EOF
            b"<P>\xf0\x9f\x92\xa9ok</P>", // valid 4-byte char
            b"<P>\xf0\x9f\x92ok</P>",     // its truncation
            b"<B \xc3\x28>x</B>",         // invalid continuation inside a tag
            b"\x80\x80<I>y</I>",          // stray continuation bytes
        ];
        for doc in docs {
            assert_split_equivalence(doc);
        }
    }

    #[test]
    fn spans_are_rebased_to_document_coordinates() {
        let src = "<HTML>\n<BODY CLASS=\"x\">\ntext\n</BODY>\n</HTML>\n";
        let mut expected = Vec::new();
        for t in tokenize(src) {
            expected.push((t.span, format!("{t}")));
        }
        for cut in 0..=src.len() {
            let mut got = Vec::new();
            let mut stream = StreamTokenizer::new();
            stream.feed(&src.as_bytes()[..cut]);
            stream.drain_tokens(|t, _, _| got.push((t.span, format!("{t}"))));
            stream.feed(&src.as_bytes()[cut..]);
            stream.finish();
            stream.drain_tokens(|t, _, _| got.push((t.span, format!("{t}"))));
            assert_eq!(expected, got, "split at {cut}");
        }
    }

    #[test]
    fn callback_slice_resolves_global_spans() {
        let src = b"<HTML>\n<BODY CLASS=\"x\">\ntext\n</BODY>\n";
        let mut stream = StreamTokenizer::new();
        for chunk in src.chunks(5) {
            stream.feed(chunk);
            stream.drain_tokens(check_slice);
        }
        stream.finish();
        stream.drain_tokens(check_slice);

        fn check_slice(t: Token<'_>, slice: &str, offset: usize) {
            let local = |span: Span| &slice[span.start.offset - offset..span.end.offset - offset];
            if let TokenKind::StartTag(tag) = &t.kind {
                for attr in &tag.attrs {
                    assert_eq!(local(attr.span), attr.name);
                    if let Some(v) = &attr.value {
                        assert_eq!(local(v.span), v.raw);
                    }
                }
            }
        }
    }

    #[test]
    fn memory_stays_bounded_by_token_size_not_document_size() {
        // A long stream of small, self-contained paragraphs: the buffer
        // must keep compacting back down instead of accumulating the
        // document.
        let mut stream = StreamTokenizer::new();
        let para = b"<P CLASS=\"x\">some text content goes here</P>\n";
        let mut peak = 0usize;
        for _ in 0..10_000 {
            stream.feed(para);
            stream.drain_tokens(|_, _, _| {});
            peak = peak.max(stream.buffered());
        }
        assert!(
            peak < 2 * COMPACT_THRESHOLD + para.len(),
            "buffer grew to {peak} bytes over a 460 KB stream"
        );
        stream.finish();
        stream.drain_tokens(|_, _, _| {});
        assert_eq!(stream.buffered(), 0);
    }

    #[test]
    fn step_with_eof_matches_iterator() {
        let src = "<P>one<BR>two <!-- c --> three <B class=x>four</B><A HREF=\"x";
        let mut by_iter = Vec::new();
        for t in Tokenizer::new(src) {
            by_iter.push(format!("{t:?}"));
        }
        let mut by_step = Vec::new();
        let mut tok = Tokenizer::new(src);
        loop {
            match tok.step(true) {
                Step::Token(t) => by_step.push(format!("{t:?}")),
                Step::Done => break,
                Step::NeedMore => panic!("NeedMore is unreachable at eof"),
            }
        }
        assert_eq!(by_iter, by_step);
    }
}
