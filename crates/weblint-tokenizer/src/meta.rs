//! Scanner for literal metacharacters in text content.
//!
//! HTML text content should escape `<`, `>` and `&` as `&lt;`, `&gt;` and
//! `&amp;`. The tokenizer only produces a bare `<` inside a [`crate::Text`]
//! token when the `<` could not begin markup, so every `<` found here is by
//! construction a literal metacharacter; `>` in text is always literal; `&`
//! is literal when it does not begin an entity reference.

use crate::pos::{Pos, Span};

/// Which metacharacter appeared literally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaCharKind {
    /// A bare `<`.
    Lt,
    /// A bare `>`.
    Gt,
    /// A bare `&` that does not begin an entity reference.
    Amp,
}

impl MetaCharKind {
    /// The literal character.
    pub fn ch(self) -> char {
        match self {
            MetaCharKind::Lt => '<',
            MetaCharKind::Gt => '>',
            MetaCharKind::Amp => '&',
        }
    }

    /// The entity reference that should be used instead.
    pub fn escape(self) -> &'static str {
        match self {
            MetaCharKind::Lt => "&lt;",
            MetaCharKind::Gt => "&gt;",
            MetaCharKind::Amp => "&amp;",
        }
    }
}

/// A literal metacharacter occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaChar {
    /// Which character.
    pub kind: MetaCharKind,
    /// Where it appeared.
    pub span: Span,
}

/// Scan a text run (starting at `base` in the source) for literal `<`, `>`
/// and `&` characters.
///
/// # Examples
///
/// ```
/// use weblint_tokenizer::{scan_metachars, MetaCharKind, Pos};
///
/// let hits = scan_metachars("1 < 2 > 0 & true", Pos::START);
/// let kinds: Vec<_> = hits.iter().map(|m| m.kind).collect();
/// assert_eq!(
///     kinds,
///     [MetaCharKind::Lt, MetaCharKind::Gt, MetaCharKind::Amp]
/// );
/// ```
pub fn scan_metachars(text: &str, base: Pos) -> Vec<MetaChar> {
    let mut out = Vec::new();
    let mut pos = base;
    let bytes = text.as_bytes();
    // Jump metacharacter to metacharacter; everything between them only
    // needs line/column accounting, done byte-wise by advance_str. The
    // candidate bytes are ASCII, so a byte hit is always a real character.
    let mut i = 0;
    while let Some(j) = bytes[i..]
        .iter()
        .position(|&b| matches!(b, b'<' | b'>' | b'&'))
    {
        let hit = i + j;
        pos.advance_str(&text[i..hit]);
        let ch = bytes[hit] as char;
        let kind = match ch {
            '<' => Some(MetaCharKind::Lt),
            '>' => Some(MetaCharKind::Gt),
            _ => {
                // '&' followed by a letter or '#'+digit scans as an entity
                // reference; the entity checks own that case.
                let next = bytes.get(hit + 1).copied();
                let starts_entity = match next {
                    Some(b) if b.is_ascii_alphabetic() => true,
                    Some(b'#') => {
                        let after = bytes.get(hit + 2).copied();
                        matches!(after, Some(b) if b.is_ascii_digit())
                            || (matches!(after, Some(b'x') | Some(b'X'))
                                && matches!(bytes.get(hit + 3), Some(b) if b.is_ascii_hexdigit()))
                    }
                    _ => false,
                };
                if starts_entity {
                    None
                } else {
                    Some(MetaCharKind::Amp)
                }
            }
        };
        if let Some(kind) = kind {
            let start = pos;
            let mut end = pos;
            end.advance(ch);
            out.push(MetaChar {
                kind,
                span: Span::new(start, end),
            });
        }
        pos.advance(ch);
        i = hit + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<MetaCharKind> {
        scan_metachars(text, Pos::START)
            .iter()
            .map(|m| m.kind)
            .collect()
    }

    #[test]
    fn clean_text_has_no_hits() {
        assert!(kinds("perfectly ordinary text").is_empty());
    }

    #[test]
    fn bare_lt_and_gt() {
        assert_eq!(kinds("a < b"), [MetaCharKind::Lt]);
        assert_eq!(kinds("a > b"), [MetaCharKind::Gt]);
    }

    #[test]
    fn amp_starting_entity_is_ignored() {
        assert!(kinds("&amp; &#65; &#x41;").is_empty());
    }

    #[test]
    fn bare_amp_detected() {
        assert_eq!(kinds("R & D"), [MetaCharKind::Amp]);
        assert_eq!(kinds("trailing &"), [MetaCharKind::Amp]);
        assert_eq!(kinds("&# x"), [MetaCharKind::Amp]);
        assert_eq!(kinds("&#x zz"), [MetaCharKind::Amp]);
    }

    #[test]
    fn amp_before_letter_is_left_to_entity_checks() {
        // "&T" could be a (mistyped) entity; the entity table decides.
        assert!(kinds("AT&T").is_empty());
    }

    #[test]
    fn positions_are_exact() {
        let hits = scan_metachars("ab\nc > d", Pos::START);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].span.start.line, 2);
        assert_eq!(hits[0].span.start.col, 3);
    }

    #[test]
    fn escape_suggestions() {
        assert_eq!(MetaCharKind::Lt.escape(), "&lt;");
        assert_eq!(MetaCharKind::Gt.escape(), "&gt;");
        assert_eq!(MetaCharKind::Amp.escape(), "&amp;");
        assert_eq!(MetaCharKind::Amp.ch(), '&');
    }
}
