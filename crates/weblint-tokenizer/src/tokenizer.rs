//! The tokenizer state machine.

use crate::cursor::Cursor;
use crate::pos::Span;
use crate::token::{Attr, AttrValue, Comment, Decl, Quote, Tag, Text, Token, TokenKind};

/// Elements whose content is raw text, paired with the close pattern that
/// ends it — static, so recognizing one allocates nothing.
///
/// The paper (§5.1): "Certain elements require special processing, such as
/// comments, SCRIPT and STYLE." `XMP` and `LISTING` are the obsolete HTML 2
/// raw-text elements; `PLAINTEXT` swallows everything to end-of-file.
const RAW_TEXT_ELEMENTS: &[(&str, &str)] = &[
    ("script", "</script"),
    ("style", "</style"),
    ("xmp", "</xmp"),
    ("listing", "</listing"),
];

/// Abort the quote-aware tag scan once a single quoted value exceeds this
/// many bytes — at that point the quote is almost certainly unterminated and
/// the quote-parity fallback produces far better diagnostics.
const QUOTE_SCAN_CAP: usize = 32 * 1024;

/// One move of an incremental tokenization — what [`Tokenizer::step`]
/// returns when the source may still be growing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<'a> {
    /// A complete token whose extent can never change, no matter what bytes
    /// are appended after the current buffer.
    Token(Token<'a>),
    /// The next token's extent (or even its kind) depends on bytes that have
    /// not arrived yet. Nothing was consumed; feed more input and retry.
    NeedMore,
    /// All input has been consumed.
    Done,
}

/// A streaming HTML tokenizer.
///
/// Iterate it to receive [`Token`]s. The tokenizer never fails: any input,
/// however mangled, produces a token stream covering the whole document.
///
/// For incremental input, [`Tokenizer::step`] reports [`Step::NeedMore`]
/// instead of committing to a token that later bytes could change; the
/// [`StreamTokenizer`](crate::StreamTokenizer) wrapper carries the
/// in-between state across buffers.
///
/// # Examples
///
/// ```
/// use weblint_tokenizer::{Tokenizer, TokenKind};
///
/// let tokens: Vec<_> = Tokenizer::new("<B>x</B>").collect();
/// assert_eq!(tokens.len(), 3);
/// assert!(matches!(tokens[1].kind, TokenKind::Text(_)));
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer<'a> {
    cur: Cursor<'a>,
    /// When set, the content of a just-opened raw-text element must be
    /// consumed as text before normal tokenization resumes. Holds the close
    /// pattern (`"</script"` etc.) from [`RAW_TEXT_ELEMENTS`].
    raw_text_until: Option<&'static str>,
    /// A `PLAINTEXT` start tag was seen: the rest of the file is text.
    plaintext: bool,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `src`.
    pub fn new(src: &'a str) -> Tokenizer<'a> {
        Tokenizer {
            cur: Cursor::new(src),
            raw_text_until: None,
            plaintext: false,
        }
    }

    /// Create a tokenizer over `src` that resumes mid-document: `src` is a
    /// suffix of some larger document and the mode flags were captured (via
    /// [`Tokenizer::mode`]) from the tokenizer that consumed the prefix.
    pub fn resume(src: &'a str, raw_text_until: Option<&'static str>, plaintext: bool) -> Self {
        Tokenizer {
            cur: Cursor::new(src),
            raw_text_until,
            plaintext,
        }
    }

    /// The cross-token mode flags — everything (besides the cursor) that a
    /// resumed tokenizer needs to continue where this one stopped: the
    /// pending raw-text close pattern and the `PLAINTEXT` latch.
    pub fn mode(&self) -> (Option<&'static str>, bool) {
        (self.raw_text_until, self.plaintext)
    }

    /// The full source this tokenizer reads from.
    pub fn source(&self) -> &'a str {
        self.cur.src()
    }

    /// Produce the next token, treating the end of the buffer as the end of
    /// the document only when `eof` is true.
    ///
    /// With `eof == false`, a token is returned only when its extent is
    /// *prefix-stable*: no bytes appended after the current buffer could
    /// change it. A scan that terminates on a delimiter found *inside* the
    /// buffer (a closing `>`, a `-->`, a markup-starting `<`) is stable; a
    /// scan that ran to the end of the buffer is not, and yields
    /// [`Step::NeedMore`] without consuming anything.
    ///
    /// `step(true)` is exactly the [`Iterator`] implementation.
    pub fn step(&mut self, eof: bool) -> Step<'a> {
        if self.cur.is_eof() {
            return if eof { Step::Done } else { Step::NeedMore };
        }
        if !eof && !self.next_token_stable() {
            return Step::NeedMore;
        }
        match self.next_token() {
            Some(tok) => Step::Token(tok),
            None => Step::Done,
        }
    }

    /// Whether the next token's extent and kind are already fully determined
    /// by the bytes in the buffer (see [`Tokenizer::step`]). Read-only: a
    /// `false` answer must leave the tokenizer untouched for the retry.
    fn next_token_stable(&self) -> bool {
        let rest = self.cur.rest();
        if self.plaintext {
            // PLAINTEXT swallows everything to end-of-file.
            return false;
        }
        if let Some(close) = self.raw_text_until {
            // Raw text runs to the close pattern; finding it in the buffer
            // pins the text token (an earlier match can never appear). A
            // match at offset 0 means the end tag parses next instead.
            return match crate::cursor::find_ci(rest, close) {
                Some(0) => tag_stable(rest),
                Some(_) => true,
                None => false,
            };
        }
        let bytes = rest.as_bytes();
        match (bytes.first(), bytes.get(1)) {
            (Some(b'<'), Some(b'!')) => markup_decl_stable(rest),
            (Some(b'<'), Some(b'?')) => decl_stable(&rest[2..]),
            (Some(b'<'), Some(b'/')) => tag_stable(rest),
            (Some(b'<'), Some(c)) if c.is_ascii_alphabetic() => tag_stable(rest),
            // A `<` as the buffer's last byte: could become any markup class.
            (Some(b'<'), None) => false,
            // Bare `<` followed by a non-markup byte, or any other first
            // byte: a text run.
            (Some(_), _) => text_stable(rest),
            (None, _) => false,
        }
    }

    fn token(&self, start: crate::pos::Pos, kind: TokenKind<'a>) -> Token<'a> {
        Token {
            kind,
            span: Span::new(start, self.cur.pos()),
        }
    }

    /// Consume raw-text content up to (not including) `close` (`"</script"`
    /// etc., matched case-insensitively).
    fn scan_raw_text(&mut self, close: &str) -> Option<Token<'a>> {
        let start = self.cur.pos();
        let raw = match self.cur.find_ci(close) {
            Some(0) => return None, // no content; parse the end tag normally
            Some(idx) => {
                let raw = &self.cur.rest()[..idx];
                self.cur.bump_bytes(idx);
                raw
            }
            None => self.cur.eat_to_eof(),
        };
        Some(self.token(start, TokenKind::Text(Text { raw, is_raw: true })))
    }

    fn scan_text(&mut self) -> Token<'a> {
        let start = self.cur.pos();
        loop {
            self.cur.eat_until_byte(b'<');
            match self.cur.peek_nth(1) {
                // A '<' that begins markup ends the text run.
                Some(c) if c.is_ascii_alphabetic() || c == '!' || c == '?' || c == '/' => break,
                // A bare '<' (e.g. "i < 3") is part of the text.
                Some(_) => {
                    self.cur.bump();
                }
                None => {
                    // Trailing '<' at end-of-file, or plain end-of-file.
                    self.cur.bump();
                    break;
                }
            }
        }
        let raw = &self.cur.src()[start.offset..self.cur.pos().offset];
        self.token(start, TokenKind::Text(Text { raw, is_raw: false }))
    }

    fn scan_comment(&mut self) -> Token<'a> {
        let start = self.cur.pos();
        self.cur.bump_bytes(4); // "<!--"
        let (text, unterminated) = match self.cur.eat_until_and_past("-->") {
            Some(t) => (t, false),
            None => (self.cur.eat_to_eof(), true),
        };
        let contains_markup = looks_like_markup(text);
        let interior_dashes = text.contains("--");
        self.token(
            start,
            TokenKind::Comment(Comment {
                text,
                unterminated,
                contains_markup,
                interior_dashes,
            }),
        )
    }

    /// Scan a `<!…>` declaration or `<?…>` processing instruction.
    /// `open_len` is the length of the opening delimiter to skip.
    fn scan_decl(&mut self, open_len: usize) -> (Decl<'a>, crate::pos::Pos) {
        let start = self.cur.pos();
        self.cur.bump_bytes(open_len);
        // CDATA marked sections close with "]]>", everything else with a
        // quote-aware ">".
        if self.cur.starts_with_ci("[CDATA[") {
            self.cur.bump_bytes("[CDATA[".len());
            let (text, unterminated) = match self.cur.eat_until_and_past("]]>") {
                Some(t) => (t, false),
                None => (self.cur.eat_to_eof(), true),
            };
            return (Decl { text, unterminated }, start);
        }
        let body_start = self.cur.pos().offset;
        let mut in_quote: Option<char> = None;
        let mut terminated = false;
        while let Some(ch) = self.cur.peek() {
            match in_quote {
                None => match ch {
                    '>' => {
                        terminated = true;
                        break;
                    }
                    '"' | '\'' => in_quote = Some(ch),
                    _ => {}
                },
                Some(q) if ch == q => in_quote = None,
                Some(_) => {}
            }
            self.cur.bump();
        }
        let text = &self.cur.src()[body_start..self.cur.pos().offset];
        if terminated {
            self.cur.bump(); // '>'
        }
        (
            Decl {
                text,
                unterminated: !terminated,
            },
            start,
        )
    }

    fn scan_markup_decl(&mut self) -> Token<'a> {
        if self.cur.starts_with("<!--") {
            return self.scan_comment();
        }
        let is_doctype = self.cur.starts_with_ci("<!doctype");
        let (decl, start) = self.scan_decl(2);
        if is_doctype {
            self.token(start, TokenKind::Doctype(decl))
        } else {
            self.token(start, TokenKind::Decl(decl))
        }
    }

    fn scan_pi(&mut self) -> Token<'a> {
        let (decl, start) = self.scan_decl(2);
        self.token(start, TokenKind::Pi(decl))
    }

    fn scan_tag(&mut self, is_end: bool) -> Token<'a> {
        let start = self.cur.pos();
        self.cur.bump(); // '<'
        if is_end {
            self.cur.bump(); // '/'
        }
        let space_before_name = is_end && self.cur.eat_ws();
        let name = self.cur.eat_while(is_name_char);

        let (body_len, end_kind, odd_quotes) = scan_tag_body(self.cur.rest());
        let body_end_offset = self.cur.pos().offset + body_len;

        // An XML-style "/>" self-close: strip the trailing '/' from the body
        // so it is not parsed as a stray attribute.
        let body = &self.cur.src()[self.cur.pos().offset..body_end_offset];
        let self_closing = end_kind == BodyEnd::Gt && body.trim_end().ends_with('/');
        let attr_limit = if self_closing {
            self.cur.pos().offset + body.trim_end().len() - 1
        } else {
            body_end_offset
        };

        let attrs = self.parse_attrs(attr_limit);

        // Step over anything the attribute parser left behind (e.g. the
        // trailing '/' of a self-close), then the closing '>'.
        while self.cur.pos().offset < body_end_offset {
            self.cur.bump();
        }
        if end_kind == BodyEnd::Gt {
            self.cur.bump(); // '>'
        }

        let tag = Tag {
            name,
            attrs,
            self_closing,
            odd_quotes,
            unterminated: end_kind != BodyEnd::Gt,
            space_before_name,
        };
        let kind = if is_end {
            TokenKind::EndTag(tag)
        } else {
            TokenKind::StartTag(tag)
        };
        self.token(start, kind)
    }

    /// Parse attributes up to byte offset `limit` (exclusive).
    fn parse_attrs(&mut self, limit: usize) -> Vec<Attr<'a>> {
        let mut attrs = Vec::new();
        loop {
            self.eat_ws_bounded(limit);
            if self.cur.pos().offset >= limit {
                break;
            }
            let name_start = self.cur.pos();
            let name = self.eat_while_bounded(limit, |c| {
                !c.is_ascii_whitespace() && c != '=' && c != '"' && c != '\''
            });
            if name.is_empty() && self.cur.peek() != Some('=') {
                // Stray quote or junk: skip one character to guarantee progress.
                self.cur.bump();
                continue;
            }
            let name_span = Span::new(name_start, self.cur.pos());
            self.eat_ws_bounded(limit);
            let mut has_eq = false;
            let mut value = None;
            if self.cur.pos().offset < limit && self.cur.peek() == Some('=') {
                has_eq = true;
                self.cur.bump();
                self.eat_ws_bounded(limit);
                if self.cur.pos().offset < limit {
                    value = Some(self.parse_attr_value(limit));
                }
            }
            attrs.push(Attr {
                name,
                value,
                has_eq,
                span: name_span,
            });
        }
        attrs
    }

    fn parse_attr_value(&mut self, limit: usize) -> AttrValue<'a> {
        let first = self.cur.peek();
        match first {
            Some(q @ ('"' | '\'')) => {
                self.cur.bump();
                let vstart = self.cur.pos();
                self.eat_while_bounded(limit, |c| c != q);
                let vspan = Span::new(vstart, self.cur.pos());
                let terminated = self.cur.pos().offset < limit && self.cur.peek() == Some(q);
                if terminated {
                    self.cur.bump();
                }
                AttrValue {
                    raw: vspan.slice(self.cur.src()),
                    quote: if q == '"' {
                        Quote::Double
                    } else {
                        Quote::Single
                    },
                    terminated,
                    span: vspan,
                }
            }
            _ => {
                let vstart = self.cur.pos();
                self.eat_while_bounded(limit, |c| !c.is_ascii_whitespace());
                let vspan = Span::new(vstart, self.cur.pos());
                AttrValue {
                    raw: vspan.slice(self.cur.src()),
                    quote: Quote::None,
                    terminated: true,
                    span: vspan,
                }
            }
        }
    }

    fn eat_ws_bounded(&mut self, limit: usize) {
        while self.cur.pos().offset < limit {
            match self.cur.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.cur.bump();
                }
                _ => break,
            }
        }
    }

    fn eat_while_bounded(&mut self, limit: usize, f: impl Fn(char) -> bool) -> &'a str {
        let start = self.cur.pos().offset;
        while self.cur.pos().offset < limit {
            match self.cur.peek() {
                Some(c) if f(c) => {
                    self.cur.bump();
                }
                _ => break,
            }
        }
        &self.cur.src()[start..self.cur.pos().offset]
    }
}

impl<'a> Tokenizer<'a> {
    /// The one token-producing path, shared by [`Iterator::next`] (eof
    /// semantics) and [`Tokenizer::step`] (which gates it on stability).
    fn next_token(&mut self) -> Option<Token<'a>> {
        if self.cur.is_eof() {
            return None;
        }
        if self.plaintext {
            let start = self.cur.pos();
            let raw = self.cur.eat_to_eof();
            return Some(self.token(start, TokenKind::Text(Text { raw, is_raw: true })));
        }
        if let Some(close) = self.raw_text_until.take() {
            if let Some(tok) = self.scan_raw_text(close) {
                return Some(tok);
            }
        }
        let tok = match (self.cur.peek(), self.cur.peek_nth(1)) {
            (Some('<'), Some('!')) => self.scan_markup_decl(),
            (Some('<'), Some('?')) => self.scan_pi(),
            (Some('<'), Some('/')) => self.scan_tag(true),
            (Some('<'), Some(c)) if c.is_ascii_alphabetic() => self.scan_tag(false),
            (Some(_), _) => self.scan_text(),
            (None, _) => return None,
        };
        if let TokenKind::StartTag(tag) = &tok.kind {
            if tag.name.eq_ignore_ascii_case("plaintext") {
                self.plaintext = true;
            } else if let Some(&(_, close)) = RAW_TEXT_ELEMENTS
                .iter()
                .find(|(name, _)| tag.name.eq_ignore_ascii_case(name))
            {
                self.raw_text_until = Some(close);
            }
        }
        Some(tok)
    }
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        self.next_token()
    }
}

/// Stability of a text run: [`Tokenizer::scan_text`] ends only at a `<` that
/// begins markup, so the run is pinned once such a `<` is in the buffer. A
/// run that consumed to the buffer's end (no `<`, a trailing bare `<`, or
/// only non-markup `<`s) could still grow.
fn text_stable(rest: &str) -> bool {
    let bytes = rest.as_bytes();
    let mut i = 0;
    while let Some(k) = crate::cursor::memchr(b'<', &bytes[i..]) {
        let at = i + k;
        match bytes.get(at + 1) {
            Some(&n) if n.is_ascii_alphabetic() || n == b'!' || n == b'?' || n == b'/' => {
                return true
            }
            Some(_) => i = at + 1,
            None => return false,
        }
    }
    false
}

/// Stability of a `<!…>` markup declaration. Classification between comment,
/// DOCTYPE and other declarations is itself buffer-dependent, but every
/// ambiguous spelling (a proper prefix of `<!--` or `<!doctype`) contains no
/// terminator, so the per-class terminator checks below already refuse it.
fn markup_decl_stable(rest: &str) -> bool {
    if let Some(after_opener) = rest.strip_prefix("<!--") {
        // A comment ends at `-->`, searched past the 4-byte opener.
        return after_opener.contains("-->");
    }
    decl_stable(&rest[2..])
}

/// Stability of a declaration/PI body (`after` starts past the `<!`/`<?`
/// opener): CDATA sections are pinned by `]]>`, everything else by a
/// quote-aware `>`. A walk that ends inside the buffer — or inside an open
/// quote — is not stable; a later byte could close the quote and move the
/// real terminator.
fn decl_stable(after: &str) -> bool {
    // Byte-wise prefix compare: slicing the str at 7 could split a
    // multibyte character.
    let bytes = after.as_bytes();
    if bytes.len() >= 7 && bytes[..7].eq_ignore_ascii_case(b"[CDATA[") {
        return after[7..].contains("]]>");
    }
    let mut in_quote: Option<u8> = None;
    for &b in after.as_bytes() {
        match in_quote {
            None => match b {
                b'>' => return true,
                b'"' | b'\'' => in_quote = Some(b),
                _ => {}
            },
            Some(q) if b == q => in_quote = None,
            Some(_) => {}
        }
    }
    false
}

/// Stability of a start or end tag (`rest` starts at the `<`). The name must
/// terminate inside the buffer (a name running to the buffer's end could
/// continue), then the body must reach a stable verdict under the same
/// quote-aware rules as [`scan_tag_body`].
fn tag_stable(rest: &str) -> bool {
    let bytes = rest.as_bytes();
    let mut i = 1; // '<'
    if bytes.get(1) == Some(&b'/') {
        i = 2;
        // End tags tolerate whitespace before the name (`</ HEAD>`).
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
    }
    while i < bytes.len() && is_name_byte(bytes[i]) {
        i += 1;
    }
    if i == bytes.len() {
        return false;
    }
    tag_body_stable(&rest[i..])
}

/// Stability of a tag body, mirroring [`scan_tag_body`]: a quote-aware `>`
/// or an unquoted `<` in the buffer pins the tag. An abort (a `<` inside a
/// quote, or a quote run past [`QUOTE_SCAN_CAP`]) is itself stable and falls
/// to the quote-parity heuristic, which cuts at the first `>` anywhere — so
/// it is stable only once some `>` is in the buffer. Running off the end of
/// the buffer (in or out of a quote) is never stable.
fn tag_body_stable(rest: &str) -> bool {
    let bytes = rest.as_bytes();
    let mut in_quote: Option<u8> = None;
    let mut quote_start = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match in_quote {
            None => match b {
                b'>' | b'<' => return true,
                b'"' | b'\'' => {
                    in_quote = Some(b);
                    quote_start = i;
                }
                _ => {}
            },
            Some(q) => {
                if b == q {
                    in_quote = None;
                } else if b == b'<' || ((b & 0xC0) != 0x80 && i - quote_start > QUOTE_SCAN_CAP) {
                    return rest.contains('>');
                }
            }
        }
        i += 1;
    }
    false
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'.' | b'-' | b'_' | b':')
}

/// How a tag body scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyEnd {
    /// A closing `>` was found (not included in the body length).
    Gt,
    /// A new `<` interrupted the tag outside any quote.
    EarlyLt,
    /// End-of-file arrived first.
    Eof,
}

/// Find the extent of a tag body (everything between the element name and
/// the closing `>`).
///
/// First a quote-aware walk is attempted: quoted values may contain `>` and
/// newlines. If that walk finds a `<` *inside* a quote, runs past
/// [`QUOTE_SCAN_CAP`] inside a quote, or hits end-of-file inside a quote, the
/// quote is assumed unterminated and weblint's quote-parity fallback applies:
/// the tag is cut at the first `>` regardless of quotes, and `odd_quotes`
/// reports whether the quote count in that span is odd (the paper's §4.2
/// "odd number of quotes in element" diagnostic).
fn scan_tag_body(rest: &str) -> (usize, BodyEnd, bool) {
    // A byte walk, not a char walk: every byte that decides anything
    // (`>` `<` `"` `'`) is ASCII and can never match inside a multibyte
    // character. The cap check fires only at character starts so the abort
    // point is identical to the old per-char scan.
    let bytes = rest.as_bytes();
    let mut in_quote: Option<u8> = None;
    let mut quote_start = 0usize;
    let mut aborted = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match in_quote {
            None => match b {
                b'>' => return (i, BodyEnd::Gt, false),
                b'<' => return (i, BodyEnd::EarlyLt, false),
                b'"' | b'\'' => {
                    in_quote = Some(b);
                    quote_start = i;
                }
                _ => {}
            },
            Some(q) => {
                if b == q {
                    in_quote = None;
                } else if b == b'<' || ((b & 0xC0) != 0x80 && i - quote_start > QUOTE_SCAN_CAP) {
                    aborted = true;
                    break;
                }
            }
        }
        i += 1;
    }
    if !aborted {
        return match in_quote {
            // EOF outside a quote: tag just never closed.
            None => (rest.len(), BodyEnd::Eof, false),
            // EOF inside a quote: fall through to the parity heuristic.
            Some(_) => naive_tag_body(rest),
        };
    }
    naive_tag_body(rest)
}

/// The quote-parity fallback: cut the tag at the first `>` (quote-blind).
fn naive_tag_body(rest: &str) -> (usize, BodyEnd, bool) {
    match rest.find('>') {
        Some(i) => (i, BodyEnd::Gt, odd_quote_count(&rest[..i])),
        None => match rest.find('<') {
            Some(i) => (i, BodyEnd::EarlyLt, odd_quote_count(&rest[..i])),
            None => (rest.len(), BodyEnd::Eof, odd_quote_count(rest)),
        },
    }
}

fn odd_quote_count(s: &str) -> bool {
    let dq = s.bytes().filter(|&b| b == b'"').count();
    let sq = s.bytes().filter(|&b| b == b'\'').count();
    dq % 2 == 1 || sq % 2 == 1
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_' | ':')
}

/// Heuristic for "this comment contains markup": `<` immediately followed by
/// a letter or `/`.
fn looks_like_markup(text: &str) -> bool {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'<' {
            if let Some(&next) = bytes.get(i + 1) {
                if next.is_ascii_alphabetic() || next == b'/' {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn kinds(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .map(|t| t.kind.kind_name().to_string())
            .collect()
    }

    fn start_tag<'a>(tok: &'a Token<'a>) -> &'a Tag<'a> {
        match &tok.kind {
            TokenKind::StartTag(t) => t,
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            kinds("<HTML><BODY>hi</BODY></HTML>"),
            ["start-tag", "start-tag", "text", "end-tag", "end-tag"]
        );
    }

    #[test]
    fn tag_names_preserve_case() {
        let toks = tokenize("<BoDy>");
        assert_eq!(start_tag(&toks[0]).name, "BoDy");
        assert_eq!(start_tag(&toks[0]).name_lc(), "body");
    }

    #[test]
    fn attributes_parse_with_all_quote_styles() {
        let toks = tokenize(r#"<BODY BGCOLOR="fffff" TEXT=#00ff00 ALT='x'>"#);
        let tag = start_tag(&toks[0]);
        assert_eq!(tag.attrs.len(), 3);
        assert_eq!(tag.attrs[0].name, "BGCOLOR");
        assert_eq!(tag.attrs[0].value_raw(), "fffff");
        assert_eq!(tag.attrs[0].value.as_ref().unwrap().quote, Quote::Double);
        assert_eq!(tag.attrs[1].value_raw(), "#00ff00");
        assert_eq!(tag.attrs[1].value.as_ref().unwrap().quote, Quote::None);
        assert_eq!(tag.attrs[2].value.as_ref().unwrap().quote, Quote::Single);
    }

    #[test]
    fn valueless_attribute() {
        let toks = tokenize("<OPTION SELECTED>");
        let tag = start_tag(&toks[0]);
        assert_eq!(tag.attrs.len(), 1);
        assert_eq!(tag.attrs[0].name, "SELECTED");
        assert!(tag.attrs[0].value.is_none());
        assert!(!tag.attrs[0].has_eq);
    }

    #[test]
    fn dangling_equals() {
        let toks = tokenize("<A HREF=>");
        let tag = start_tag(&toks[0]);
        assert_eq!(tag.attrs.len(), 1);
        assert!(tag.attrs[0].has_eq);
        assert!(tag.attrs[0].value.is_none());
    }

    #[test]
    fn paper_example_odd_quotes() {
        // §4.2: <A HREF="a.html>here</B></A> — the quote never closes; the
        // tag must end at the first '>' and be flagged.
        let toks = tokenize(r#"<A HREF="a.html>here</B></A>"#);
        assert_eq!(kinds(r#"<A HREF="a.html>here</B></A>"#).len(), 4);
        let tag = start_tag(&toks[0]);
        assert!(tag.odd_quotes);
        assert!(!tag.unterminated);
        assert_eq!(tag.attrs[0].name, "HREF");
        assert_eq!(tag.attrs[0].value_raw(), "a.html");
        assert!(!tag.attrs[0].value.as_ref().unwrap().terminated);
        match &toks[1].kind {
            TokenKind::Text(t) => assert_eq!(t.raw, "here"),
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn quoted_value_may_contain_gt() {
        let toks = tokenize(r#"<IMG ALT="a > b" SRC="x.gif">text"#);
        let tag = start_tag(&toks[0]);
        assert!(!tag.odd_quotes);
        assert_eq!(tag.attr("alt").unwrap().value_raw(), "a > b");
        assert_eq!(tag.attr("src").unwrap().value_raw(), "x.gif");
    }

    #[test]
    fn quoted_value_may_span_lines() {
        let toks = tokenize("<IMG ALT=\"two\nlines\">");
        let tag = start_tag(&toks[0]);
        assert_eq!(tag.attr("alt").unwrap().value_raw(), "two\nlines");
    }

    #[test]
    fn tag_interrupted_by_new_tag() {
        let toks = tokenize("<P <B>x");
        let tag = start_tag(&toks[0]);
        assert!(tag.unterminated);
        assert_eq!(tag.name, "P");
        let b = start_tag(&toks[1]);
        assert_eq!(b.name, "B");
        assert!(!b.unterminated);
    }

    #[test]
    fn tag_at_eof_is_unterminated() {
        let toks = tokenize("<A HREF=x");
        let tag = start_tag(&toks[0]);
        assert!(tag.unterminated);
        assert_eq!(tag.attrs[0].value_raw(), "x");
    }

    #[test]
    fn unterminated_quote_at_eof_uses_parity_fallback() {
        let toks = tokenize("<A HREF=\"x");
        let tag = start_tag(&toks[0]);
        assert!(tag.unterminated);
        assert!(tag.odd_quotes);
    }

    #[test]
    fn self_closing_tag() {
        let toks = tokenize("<BR/>");
        let tag = start_tag(&toks[0]);
        assert!(tag.self_closing);
        assert!(tag.attrs.is_empty());
    }

    #[test]
    fn self_closing_with_attrs() {
        let toks = tokenize(r#"<IMG SRC="x.gif" />"#);
        let tag = start_tag(&toks[0]);
        assert!(tag.self_closing);
        assert_eq!(tag.attrs.len(), 1);
    }

    #[test]
    fn end_tag_with_space_before_name() {
        let toks = tokenize("</ HEAD>");
        match &toks[0].kind {
            TokenKind::EndTag(t) => {
                assert_eq!(t.name, "HEAD");
                assert!(t.space_before_name);
            }
            other => panic!("expected end tag, got {other:?}"),
        }
    }

    #[test]
    fn end_tag_with_attributes_is_preserved() {
        let toks = tokenize("</A HREF=x>");
        match &toks[0].kind {
            TokenKind::EndTag(t) => assert_eq!(t.attrs.len(), 1),
            other => panic!("expected end tag, got {other:?}"),
        }
    }

    #[test]
    fn bare_lt_is_text() {
        let toks = tokenize("i < 3 and j <3");
        assert_eq!(toks.len(), 1);
        match &toks[0].kind {
            TokenKind::Text(t) => assert_eq!(t.raw, "i < 3 and j <3"),
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn numeric_tag_like_h1() {
        let toks = tokenize("<H1>x</H1>");
        assert_eq!(start_tag(&toks[0]).name, "H1");
    }

    #[test]
    fn comment_basic() {
        let toks = tokenize("<!-- hello -->after");
        match &toks[0].kind {
            TokenKind::Comment(c) => {
                assert_eq!(c.text, " hello ");
                assert!(!c.unterminated);
                assert!(!c.contains_markup);
                assert!(!c.interior_dashes);
            }
            other => panic!("expected comment, got {other:?}"),
        }
        assert!(matches!(toks[1].kind, TokenKind::Text(_)));
    }

    #[test]
    fn comment_with_markup_inside() {
        let toks = tokenize("<!-- <B>bold</B> -->");
        match &toks[0].kind {
            TokenKind::Comment(c) => assert!(c.contains_markup),
            other => panic!("expected comment, got {other:?}"),
        }
    }

    #[test]
    fn comment_unterminated() {
        let toks = tokenize("<!-- runs off the end");
        match &toks[0].kind {
            TokenKind::Comment(c) => assert!(c.unterminated),
            other => panic!("expected comment, got {other:?}"),
        }
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn comment_interior_dashes() {
        let toks = tokenize("<!-- a -- b -->");
        match &toks[0].kind {
            TokenKind::Comment(c) => assert!(c.interior_dashes),
            other => panic!("expected comment, got {other:?}"),
        }
    }

    #[test]
    fn doctype_recognised_case_insensitively() {
        let toks = tokenize("<!doctype html><HTML>");
        assert!(matches!(toks[0].kind, TokenKind::Doctype(_)));
        let toks = tokenize(r#"<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0//EN"><HTML>"#);
        match &toks[0].kind {
            TokenKind::Doctype(d) => {
                assert!(d.text.contains("W3C"));
                assert!(!d.unterminated);
            }
            other => panic!("expected doctype, got {other:?}"),
        }
    }

    #[test]
    fn other_markup_decl() {
        let toks = tokenize("<!ENTITY foo \"bar\">x");
        assert!(matches!(toks[0].kind, TokenKind::Decl(_)));
    }

    #[test]
    fn processing_instruction() {
        let toks = tokenize("<?xml version=\"1.0\"?>x");
        assert!(matches!(toks[0].kind, TokenKind::Pi(_)));
        assert!(matches!(toks[1].kind, TokenKind::Text(_)));
    }

    #[test]
    fn cdata_section() {
        let toks = tokenize("<![CDATA[ <not-a-tag> ]]>x");
        match &toks[0].kind {
            TokenKind::Decl(d) => assert_eq!(d.text, " <not-a-tag> "),
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn script_content_is_raw() {
        let toks = tokenize("<SCRIPT>if (a<b) { x(); }</SCRIPT>after");
        assert_eq!(
            kinds("<SCRIPT>if (a<b) { x(); }</SCRIPT>after"),
            ["start-tag", "text", "end-tag", "text"]
        );
        match &toks[1].kind {
            TokenKind::Text(t) => {
                assert!(t.is_raw);
                assert_eq!(t.raw, "if (a<b) { x(); }");
            }
            other => panic!("expected raw text, got {other:?}"),
        }
    }

    #[test]
    fn style_close_tag_found_case_insensitively() {
        assert_eq!(
            kinds("<style>b { color: red }</STYLE>"),
            ["start-tag", "text", "end-tag"]
        );
    }

    #[test]
    fn unclosed_script_swallows_to_eof() {
        let toks = tokenize("<SCRIPT>never closed");
        assert_eq!(toks.len(), 2);
        match &toks[1].kind {
            TokenKind::Text(t) => assert!(t.is_raw),
            other => panic!("expected raw text, got {other:?}"),
        }
    }

    #[test]
    fn empty_script_element() {
        assert_eq!(
            kinds("<SCRIPT></SCRIPT>x"),
            ["start-tag", "end-tag", "text"]
        );
    }

    #[test]
    fn plaintext_swallows_rest_of_file() {
        assert_eq!(kinds("<PLAINTEXT><B>not markup</B>"), ["start-tag", "text"]);
    }

    #[test]
    fn line_numbers_match_paper_example() {
        // The §4.2 test.html: TITLE opens on line 3, </HEAD> on line 4,
        // BODY on line 5, H1 on line 6, A on line 7.
        let src = "<HTML>\n<HEAD>\n<TITLE>example page\n</HEAD>\n\
                   <BODY BGCOLOR=\"fffff\" TEXT=#00ff00>\n<H1>My Example</H2>\n\
                   Click <B><A HREF=\"a.html>here</B></A>\nfor more details.\n\
                   </BODY>\n</HTML>\n";
        let lines: Vec<(String, u32)> = tokenize(src)
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::StartTag(tag) => Some((format!("<{}>", tag.name), t.span.line())),
                TokenKind::EndTag(tag) => Some((format!("</{}>", tag.name), t.span.line())),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![
                ("<HTML>".to_string(), 1),
                ("<HEAD>".to_string(), 2),
                ("<TITLE>".to_string(), 3),
                ("</HEAD>".to_string(), 4),
                ("<BODY>".to_string(), 5),
                ("<H1>".to_string(), 6),
                ("</H2>".to_string(), 6),
                ("<B>".to_string(), 7),
                ("<A>".to_string(), 7),
                ("</B>".to_string(), 7),
                ("</A>".to_string(), 7),
                ("</BODY>".to_string(), 9),
                ("</HTML>".to_string(), 10),
            ]
        );
    }

    #[test]
    fn whole_source_is_covered() {
        let src = "<P>one<BR>two <!-- c --> three <B class=x>four</B>";
        let toks = tokenize(src);
        let mut offset = 0;
        for t in &toks {
            assert_eq!(t.span.start.offset, offset, "gap before {t}");
            offset = t.span.end.offset;
        }
        assert_eq!(offset, src.len());
    }

    #[test]
    fn stray_quote_in_tag_does_not_loop() {
        let toks = tokenize("<P \"\">x");
        assert!(!toks.is_empty());
    }

    #[test]
    fn odd_quote_parity_detects_singles() {
        assert!(odd_quote_count("a'b"));
        assert!(!odd_quote_count("a'b'c"));
        assert!(odd_quote_count("\""));
        assert!(!odd_quote_count("\"\""));
    }
}
