//! Token types produced by the tokenizer.

use crate::pos::Span;
use std::fmt;

/// How an attribute value was quoted in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quote {
    /// Bare value: `WIDTH=100`.
    None,
    /// Single quotes: `ALT='photo'`. Legal HTML, but weblint warns — "many
    /// clients and HTML processors can't handle single quotes" (§4.3).
    Single,
    /// Double quotes: `HREF="a.html"`.
    Double,
}

impl Quote {
    /// The quote character, if any.
    pub fn ch(self) -> Option<char> {
        match self {
            Quote::None => None,
            Quote::Single => Some('\''),
            Quote::Double => Some('"'),
        }
    }
}

/// An attribute value as written in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrValue<'a> {
    /// The value text with surrounding quotes stripped. Entity references
    /// are left unexpanded.
    pub raw: &'a str,
    /// The quoting style used.
    pub quote: Quote,
    /// False if the opening quote was never matched before the tag ended —
    /// the `<A HREF="a.html>` case.
    pub terminated: bool,
    /// Span of the value (excluding quotes).
    pub span: Span,
}

/// A single attribute on a tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr<'a> {
    /// Attribute name as written (case preserved).
    pub name: &'a str,
    /// The value, if one was given (`SELECTED` alone has none).
    pub value: Option<AttrValue<'a>>,
    /// Whether an `=` was present. `true` with `value: None` means a
    /// dangling `NAME=` at the end of a tag.
    pub has_eq: bool,
    /// Span of the attribute name.
    pub span: Span,
}

impl<'a> Attr<'a> {
    /// The attribute name lower-cased for table lookups.
    pub fn name_lc(&self) -> String {
        self.name.to_ascii_lowercase()
    }

    /// The raw value text, or `""` for valueless attributes.
    pub fn value_raw(&self) -> &'a str {
        self.value.as_ref().map(|v| v.raw).unwrap_or("")
    }
}

/// A start or end tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tag<'a> {
    /// Element name as written (case preserved), e.g. `H1`, `blockquote`.
    pub name: &'a str,
    /// Attributes in source order. End tags can carry attributes too — that
    /// is itself a lintable mistake, so they are preserved.
    pub attrs: Vec<Attr<'a>>,
    /// XML-style `/>` self-close marker was present.
    pub self_closing: bool,
    /// The quote-parity heuristic fired: the tag contained an odd number of
    /// `"` or `'` characters and was cut at the first `>` (§4.2, "odd number
    /// of quotes in element").
    pub odd_quotes: bool,
    /// The tag ran into end-of-file or a new `<` before any `>` was seen.
    pub unterminated: bool,
    /// There was whitespace between `</` and the name (`</ HEAD>`).
    pub space_before_name: bool,
}

impl<'a> Tag<'a> {
    /// The element name lower-cased for table lookups.
    pub fn name_lc(&self) -> String {
        self.name.to_ascii_lowercase()
    }

    /// Find an attribute by case-insensitive name.
    pub fn attr(&self, name: &str) -> Option<&Attr<'a>> {
        self.attrs
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Whether an attribute with the given case-insensitive name is present.
    pub fn has_attr(&self, name: &str) -> bool {
        self.attr(name).is_some()
    }
}

/// A run of character data between tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Text<'a> {
    /// The raw text, entities unexpanded.
    pub raw: &'a str,
    /// True when this text is the raw content of a `SCRIPT`, `STYLE`, `XMP`,
    /// `LISTING` or `PLAINTEXT` element, in which `<` and `&` are not markup.
    pub is_raw: bool,
}

/// An SGML comment, `<!-- … -->`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment<'a> {
    /// Comment content between `<!--` and `-->`.
    pub text: &'a str,
    /// No closing `-->` was found; the comment ran to end-of-file.
    pub unterminated: bool,
    /// The content looks like it contains markup (`<x` or `</x`) — legal
    /// SGML, but "can be incorrectly parsed by parsers, particularly those
    /// of the quick and dirty kind" (§4.3).
    pub contains_markup: bool,
    /// The content contains an interior `--`, which makes the comment
    /// ill-formed under strict SGML comment rules.
    pub interior_dashes: bool,
}

/// A markup declaration: `<!DOCTYPE …>`, other `<!…>` declarations, and
/// processing instructions `<?…>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl<'a> {
    /// Everything between the opening delimiter and the closing `>`.
    pub text: &'a str,
    /// No closing `>` was found before end-of-file.
    pub unterminated: bool,
}

/// The kind of a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind<'a> {
    /// `<NAME …>`.
    StartTag(Tag<'a>),
    /// `</NAME>`.
    EndTag(Tag<'a>),
    /// Character data.
    Text(Text<'a>),
    /// `<!-- … -->`.
    Comment(Comment<'a>),
    /// `<!DOCTYPE …>`.
    Doctype(Decl<'a>),
    /// Any other `<!…>` markup declaration (e.g. `<!ENTITY …>`).
    Decl(Decl<'a>),
    /// `<?…>` processing instruction.
    Pi(Decl<'a>),
}

impl<'a> TokenKind<'a> {
    /// Short kind name for diagnostics and debugging.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TokenKind::StartTag(_) => "start-tag",
            TokenKind::EndTag(_) => "end-tag",
            TokenKind::Text(_) => "text",
            TokenKind::Comment(_) => "comment",
            TokenKind::Doctype(_) => "doctype",
            TokenKind::Decl(_) => "decl",
            TokenKind::Pi(_) => "pi",
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// What was tokenized.
    pub kind: TokenKind<'a>,
    /// Where it sits in the source.
    pub span: Span,
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TokenKind::StartTag(t) => write!(f, "<{}>", t.name),
            TokenKind::EndTag(t) => write!(f, "</{}>", t.name),
            TokenKind::Text(t) => write!(f, "text({} bytes)", t.raw.len()),
            TokenKind::Comment(_) => write!(f, "<!--…-->"),
            TokenKind::Doctype(_) => write!(f, "<!DOCTYPE…>"),
            TokenKind::Decl(_) => write!(f, "<!…>"),
            TokenKind::Pi(_) => write!(f, "<?…>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::{Pos, Span};

    fn span() -> Span {
        Span::empty(Pos::START)
    }

    #[test]
    fn quote_chars() {
        assert_eq!(Quote::None.ch(), None);
        assert_eq!(Quote::Single.ch(), Some('\''));
        assert_eq!(Quote::Double.ch(), Some('"'));
    }

    #[test]
    fn tag_attr_lookup_is_case_insensitive() {
        let tag = Tag {
            name: "IMG",
            attrs: vec![Attr {
                name: "SRC",
                value: Some(AttrValue {
                    raw: "x.gif",
                    quote: Quote::Double,
                    terminated: true,
                    span: span(),
                }),
                has_eq: true,
                span: span(),
            }],
            self_closing: false,
            odd_quotes: false,
            unterminated: false,
            space_before_name: false,
        };
        assert!(tag.has_attr("src"));
        assert!(tag.has_attr("SRC"));
        assert!(!tag.has_attr("alt"));
        assert_eq!(tag.attr("Src").unwrap().value_raw(), "x.gif");
        assert_eq!(tag.name_lc(), "img");
    }

    #[test]
    fn display_forms() {
        let tok = Token {
            kind: TokenKind::Text(Text {
                raw: "abc",
                is_raw: false,
            }),
            span: span(),
        };
        assert_eq!(tok.to_string(), "text(3 bytes)");
    }
}
