//! Error-tolerant HTML tokenizer, after weblint's ad-hoc parser.
//!
//! Weblint (Bowers, USENIX 1998, §5.1) is "basically a stack machine with an
//! ad-hoc parser, which uses various heuristics to keep things together as it
//! goes along". This crate is that parser: it turns a byte-exact HTML source
//! string into a stream of [`Token`]s — start tags with attributes, end tags,
//! text, comments, DOCTYPE and other markup declarations — while *never*
//! failing. Malformed input is tokenized on a best-effort basis and the
//! malformations are recorded on the tokens themselves (odd quote counts,
//! unterminated tags and comments, whitespace after `</`, …) so that the lint
//! engine can report them with precise line numbers.
//!
//! The tokenizer deliberately differs from a spec-conformant HTML5 tokenizer:
//! reproducing weblint requires weblint's *permissive* tokenization — e.g. the
//! quote-parity heuristic that recovers from `<A HREF="a.html>` (the paper's
//! §4.2 example) by ending the tag at the first `>` and flagging the odd
//! number of quotes, rather than silently consuming the rest of the document
//! as an attribute value.
//!
//! # Examples
//!
//! ```
//! use weblint_tokenizer::{Tokenizer, TokenKind};
//!
//! let mut names = Vec::new();
//! for token in Tokenizer::new("<HTML><BODY>hi</BODY></HTML>") {
//!     if let TokenKind::StartTag(tag) = &token.kind {
//!         names.push(tag.name.to_string());
//!     }
//! }
//! assert_eq!(names, ["HTML", "BODY"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cursor;
mod entity;
mod meta;
mod pos;
mod stream;
mod token;
mod tokenizer;

pub use entity::{scan_entities, EntityRef};
pub use meta::{scan_metachars, MetaChar, MetaCharKind};
pub use pos::{Pos, Span};
pub use stream::StreamTokenizer;
pub use token::{Attr, AttrValue, Comment, Decl, Quote, Tag, Text, Token, TokenKind};
pub use tokenizer::{Step, Tokenizer};

/// Tokenize an entire document into a vector.
///
/// Convenience wrapper around [`Tokenizer::new`] for callers that want all
/// tokens at once rather than streaming.
///
/// # Examples
///
/// ```
/// let tokens = weblint_tokenizer::tokenize("<P>hello");
/// assert_eq!(tokens.len(), 2);
/// ```
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    Tokenizer::new(src).collect()
}
