//! Source positions and spans.

use std::fmt;

/// A position within a source document.
///
/// Lines and columns are 1-based, matching the line numbers weblint prints
/// (`line 4: no closing </TITLE> seen …`). `offset` is the 0-based byte
/// offset into the source string, useful for slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number, counted in characters.
    pub col: u32,
    /// 0-based byte offset into the source.
    pub offset: usize,
}

impl Pos {
    /// The start of a document: line 1, column 1, offset 0.
    pub const START: Pos = Pos {
        line: 1,
        col: 1,
        offset: 0,
    };

    /// Create a position.
    pub fn new(line: u32, col: u32, offset: usize) -> Pos {
        Pos { line, col, offset }
    }

    /// Advance this position over one character.
    ///
    /// A newline moves to column 1 of the next line; anything else advances
    /// the column by one. The byte offset always advances by the character's
    /// UTF-8 length.
    pub fn advance(&mut self, ch: char) {
        self.offset += ch.len_utf8();
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }

    /// Advance this position over every character in `s`.
    ///
    /// Equivalent to calling [`Pos::advance`] per character, but works on
    /// bytes: count newlines, then count the characters after the last one
    /// (a character per non-continuation byte). This is what makes skipping
    /// a long text run cheap — the byte loops vectorize, where the per-char
    /// decode loop cannot.
    pub fn advance_str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.offset += bytes.len();
        match bytes.iter().rposition(|&b| b == b'\n') {
            Some(last_nl) => {
                let newlines = 1 + bytes[..last_nl].iter().filter(|&&b| b == b'\n').count();
                self.line += newlines as u32;
                self.col = 1 + count_chars(&bytes[last_nl + 1..]) as u32;
            }
            None => self.col += count_chars(bytes) as u32,
        }
    }
}

/// Number of characters in a valid UTF-8 byte sequence: one per byte that
/// is not a continuation byte (`0b10xx_xxxx`).
fn count_chars(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| (b & 0xC0) != 0x80).count()
}

impl Default for Pos {
    fn default() -> Self {
        Pos::START
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open byte range in the source, with the position of its start and
/// the position just past its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Position of the first character.
    pub start: Pos,
    /// Position one past the last character.
    pub end: Pos,
}

impl Span {
    /// Create a span from two positions.
    pub fn new(start: Pos, end: Pos) -> Span {
        Span { start, end }
    }

    /// A zero-length span at `pos`.
    pub fn empty(pos: Pos) -> Span {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The 1-based line number of the span's start — what weblint reports.
    pub fn line(&self) -> u32 {
        self.start.line
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.offset - self.start.offset
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slice `src` to this span's text.
    ///
    /// Returns an empty string if the span is out of bounds for `src` (which
    /// can only happen if the span came from a different document).
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start.offset..self.end.offset).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_plain_chars() {
        let mut p = Pos::START;
        p.advance('a');
        p.advance('b');
        assert_eq!(p, Pos::new(1, 3, 2));
    }

    #[test]
    fn advance_newline_resets_column() {
        let mut p = Pos::START;
        p.advance_str("ab\nc");
        assert_eq!(p, Pos::new(2, 2, 4));
    }

    #[test]
    fn advance_multibyte_counts_chars_not_bytes() {
        let mut p = Pos::START;
        p.advance_str("é"); // 2 bytes, 1 char
        assert_eq!(p, Pos::new(1, 2, 2));
    }

    #[test]
    fn advance_str_matches_per_char_advance() {
        for s in [
            "",
            "plain ascii",
            "ends with newline\n",
            "\n\nleading",
            "mixé\nmulti—byte\n日本語 text",
            "tab\tand\rcarriage",
            "\n",
        ] {
            let mut fast = Pos::new(3, 9, 17);
            fast.advance_str(s);
            let mut slow = Pos::new(3, 9, 17);
            for ch in s.chars() {
                slow.advance(ch);
            }
            assert_eq!(fast, slow, "{s:?}");
        }
    }

    #[test]
    fn span_slice() {
        let src = "hello world";
        let mut end = Pos::START;
        end.advance_str("hello");
        let span = Span::new(Pos::START, end);
        assert_eq!(span.slice(src), "hello");
        assert_eq!(span.len(), 5);
        assert!(!span.is_empty());
    }

    #[test]
    fn span_out_of_bounds_is_empty() {
        let span = Span::new(Pos::new(1, 1, 100), Pos::new(1, 1, 105));
        assert_eq!(span.slice("short"), "");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pos::new(3, 7, 40).to_string(), "3:7");
        let span = Span::new(Pos::new(1, 1, 0), Pos::new(1, 4, 3));
        assert_eq!(span.to_string(), "1:1..1:4");
    }
}
