//! The `.weblintrc` directive language.

use std::fmt;

use weblint_core::{Category, LintConfig, PatternRule};
use weblint_core::{Extensions, HtmlVersion};

/// One parsed configuration directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `enable <id-or-category>, …`
    Enable(String),
    /// `disable <id-or-category>, …`
    Disable(String),
    /// `version <html-version>`
    Version(HtmlVersion),
    /// `extension netscape|microsoft|both|none`
    Extension(String),
    /// `fragment on|off`
    Fragment(bool),
    /// `here-anchor-text "…"` — extend the content-free anchor list.
    HereAnchorText(String),
    /// `max-title-length <n>`
    MaxTitleLength(usize),
    /// `pedantic` — enable everything except the contradictory case pair.
    Pedantic,
    /// `element NAME, …` — declare custom (tool-specific) elements that
    /// should not be reported as unknown (§4.6, §6.1).
    CustomElement(String),
    /// `attribute ELEMENT NAME` — declare a custom attribute; `*` as the
    /// element allows it everywhere.
    CustomAttribute(String, String),
    /// One line of a `[rules]` section: a custom pattern rule, already
    /// parsed and validated.
    Rule(PatternRule),
}

/// A parse or application error, with the 1-based line it came from
/// (line 0 for errors not tied to a line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Line number in the configuration text.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "config line {}: {}", self.line, self.message)
        } else {
            write!(f, "config: {}", self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

/// A non-fatal configuration problem: the directive was skipped, the rest
/// of the configuration applied. The canonical case is an unknown check
/// identifier — a stale `.weblintrc` should not stop the lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigWarning {
    /// Line number in the configuration text (0 when not tied to a line).
    pub line: u32,
    /// What was skipped and why, with a nearest-identifier suggestion
    /// where one exists.
    pub message: String,
}

impl fmt::Display for ConfigWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "config line {}: {}", self.line, self.message)
        } else {
            write!(f, "config: {}", self.message)
        }
    }
}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parse a configuration file's text into directives.
///
/// Blank lines and `#` comments (full-line or trailing) are ignored.
/// `enable`/`disable` accept multiple comma- or space-separated names and
/// expand to one directive per name. A `[rules]` section switches to the
/// custom-rule line format (see [`weblint_core::PatternRule`]); a
/// `[config]` header switches back.
pub fn parse_config(text: &str) -> Result<Vec<Directive>, ConfigError> {
    Ok(parse_numbered(text)?.into_iter().map(|(_, d)| d).collect())
}

/// [`parse_config`], keeping each directive's 1-based source line so
/// warnings raised while applying it can point back at the file.
pub fn parse_numbered(text: &str) -> Result<Vec<(u32, Directive)>, ConfigError> {
    let mut out = Vec::new();
    let mut in_rules = false;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        // Rule lines carry a quoted message that may contain `#`, so their
        // comment stripping must respect the quotes.
        let line = if in_rules {
            strip_rule_comment(raw_line).trim()
        } else {
            strip_comment(raw_line).trim()
        };
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let Some(name) = section.strip_suffix(']') else {
                return Err(err(lineno, format!("malformed section header `{line}'")));
            };
            match name.trim().to_ascii_lowercase().as_str() {
                "rules" => in_rules = true,
                "config" => in_rules = false,
                other => {
                    return Err(err(
                        lineno,
                        format!("unknown section `[{other}]' (expected [rules] or [config])"),
                    ))
                }
            }
            continue;
        }
        if in_rules {
            let rule = PatternRule::parse_line(line).map_err(|e| err(lineno, e.0))?;
            out.push((lineno, Directive::Rule(rule)));
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword.to_ascii_lowercase().as_str() {
            "enable" | "disable" => {
                if rest.is_empty() {
                    return Err(err(lineno, format!("`{keyword}' needs at least one name")));
                }
                for name in rest.split([',', ' ', '\t']).filter(|s| !s.is_empty()) {
                    let d = if keyword.eq_ignore_ascii_case("enable") {
                        Directive::Enable(name.to_string())
                    } else {
                        Directive::Disable(name.to_string())
                    };
                    out.push((lineno, d));
                }
            }
            "version" => {
                let v: HtmlVersion = rest.parse().map_err(|e: String| err(lineno, e))?;
                out.push((lineno, Directive::Version(v)));
            }
            "extension" | "x" => {
                let lc = rest.to_ascii_lowercase();
                match lc.as_str() {
                    "netscape" | "microsoft" | "both" | "none" => {
                        out.push((lineno, Directive::Extension(lc)));
                    }
                    other => {
                        return Err(err(
                            lineno,
                            format!(
                                "unknown extension `{other}' \
                                 (expected netscape, microsoft, both, or none)"
                            ),
                        ))
                    }
                }
            }
            "fragment" => {
                let on = parse_bool(rest).ok_or_else(|| {
                    err(lineno, format!("`fragment' expects on/off, got `{rest}'"))
                })?;
                out.push((lineno, Directive::Fragment(on)));
            }
            "here-anchor-text" => {
                let text = rest.trim_matches('"');
                if text.is_empty() {
                    return Err(err(lineno, "`here-anchor-text' needs a string"));
                }
                out.push((lineno, Directive::HereAnchorText(text.to_string())));
            }
            "max-title-length" => {
                let n: usize = rest
                    .parse()
                    .map_err(|_| err(lineno, format!("bad number `{rest}'")))?;
                out.push((lineno, Directive::MaxTitleLength(n)));
            }
            "pedantic" => out.push((lineno, Directive::Pedantic)),
            "element" => {
                if rest.is_empty() {
                    return Err(err(lineno, "`element' needs at least one name"));
                }
                for name in rest.split([',', ' ', '\t']).filter(|s| !s.is_empty()) {
                    out.push((lineno, Directive::CustomElement(name.to_string())));
                }
            }
            "attribute" => {
                let mut parts = rest.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some(element), Some(attribute), None) => {
                        out.push((
                            lineno,
                            Directive::CustomAttribute(element.to_string(), attribute.to_string()),
                        ));
                    }
                    _ => {
                        return Err(err(
                            lineno,
                            "`attribute' needs an element (or *) and an attribute name",
                        ))
                    }
                }
            }
            other => {
                return Err(err(lineno, format!("unknown directive `{other}'")));
            }
        }
    }
    Ok(out)
}

/// Apply one directive to a configuration.
///
/// Returns `Ok(Some(warning))` for problems that should not stop the run —
/// enabling or disabling an identifier that no check has (a stale or
/// mistyped `.weblintrc` line). The directive is skipped, everything else
/// applies. Hard errors remain `Err`.
pub fn apply_directive(
    directive: &Directive,
    config: &mut LintConfig,
) -> Result<Option<ConfigWarning>, ConfigError> {
    match directive {
        Directive::Enable(name) | Directive::Disable(name) => {
            let on = matches!(directive, Directive::Enable(_));
            // A category name toggles every message in the category.
            if let Some(category) = Category::parse(name) {
                config.set_category_enabled(category, on);
                return Ok(None);
            }
            match config.set_enabled(name, on) {
                Ok(()) => Ok(None),
                Err(e) => Ok(Some(ConfigWarning {
                    line: 0,
                    message: format!("{e} - directive ignored"),
                })),
            }
        }
        Directive::Version(v) => {
            config.version = *v;
            Ok(None)
        }
        Directive::Extension(which) => {
            match which.as_str() {
                "netscape" => config.extensions.netscape = true,
                "microsoft" => config.extensions.microsoft = true,
                "both" => config.extensions = Extensions::all(),
                "none" => config.extensions = Extensions::none(),
                other => return Err(err(0, format!("unknown extension `{other}'"))),
            }
            Ok(None)
        }
        Directive::Fragment(on) => {
            config.fragment = *on;
            Ok(None)
        }
        Directive::HereAnchorText(text) => {
            let lc = text.to_lowercase();
            if !config.here_anchor_texts.contains(&lc) {
                config.here_anchor_texts.push(lc);
            }
            Ok(None)
        }
        Directive::MaxTitleLength(n) => {
            config.max_title_length = *n;
            Ok(None)
        }
        Directive::Pedantic => {
            *config = pedantic_preserving(config);
            Ok(None)
        }
        Directive::CustomElement(name) => {
            config.add_custom_element(name);
            Ok(None)
        }
        Directive::CustomAttribute(element, attribute) => {
            config.add_custom_attribute(element, attribute);
            Ok(None)
        }
        Directive::Rule(rule) => {
            config.add_custom_rule(rule.clone());
            Ok(None)
        }
    }
}

/// Parse config text and apply every directive, collecting the non-fatal
/// warnings (each tagged with its source line).
pub fn apply_config_text(
    text: &str,
    config: &mut LintConfig,
) -> Result<Vec<ConfigWarning>, ConfigError> {
    let mut warnings = Vec::new();
    for (lineno, directive) in parse_numbered(text)? {
        if let Some(mut w) = apply_directive(&directive, config)? {
            w.line = lineno;
            warnings.push(w);
        }
    }
    Ok(warnings)
}

/// A pedantic config that keeps the non-message knobs from `base`.
fn pedantic_preserving(base: &LintConfig) -> LintConfig {
    let mut p = LintConfig::pedantic();
    p.version = base.version;
    p.extensions = base.extensions;
    p.fragment = base.fragment;
    p.here_anchor_texts = base.here_anchor_texts.clone();
    p.max_title_length = base.max_title_length;
    p.heuristics = base.heuristics;
    p.custom_elements = base.custom_elements.clone();
    p.custom_attributes = base.custom_attributes.clone();
    for rule in &base.custom_rules {
        p.add_custom_rule(rule.clone());
    }
    p
}

fn parse_bool(s: &str) -> Option<bool> {
    match s.to_ascii_lowercase().as_str() {
        "on" | "true" | "yes" | "1" => Some(true),
        "off" | "false" | "no" | "0" => Some(false),
        _ => None,
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Comment stripping for `[rules]` lines: a rule's quoted message may
/// contain `#`, so only a `#` after the closing quote (or on a line with
/// no quotes at all) starts a comment.
fn strip_rule_comment(line: &str) -> &str {
    if line.trim_start().starts_with('#') {
        return "";
    }
    match line.rfind('"') {
        Some(q) => match line[q + 1..].find('#') {
            Some(h) => &line[..q + 1 + h],
            None => line,
        },
        None => strip_comment(line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_empty_and_comments() {
        assert_eq!(parse_config("").unwrap(), vec![]);
        assert_eq!(parse_config("# just a comment\n\n  \n").unwrap(), vec![]);
    }

    #[test]
    fn parse_enable_disable_lists() {
        let ds = parse_config("enable here-anchor, physical-font\ndisable img-alt\n").unwrap();
        assert_eq!(
            ds,
            vec![
                Directive::Enable("here-anchor".into()),
                Directive::Enable("physical-font".into()),
                Directive::Disable("img-alt".into()),
            ]
        );
    }

    #[test]
    fn parse_trailing_comment() {
        let ds = parse_config("disable style # too noisy\n").unwrap();
        assert_eq!(ds, vec![Directive::Disable("style".into())]);
    }

    #[test]
    fn parse_version_and_extension() {
        let ds = parse_config("version html-4.0-strict\nextension netscape\n").unwrap();
        assert_eq!(
            ds,
            vec![
                Directive::Version(HtmlVersion::Html40Strict),
                Directive::Extension("netscape".into()),
            ]
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_config("enable img-alt\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = parse_config("extension opera\n").unwrap_err();
        assert!(e.message.contains("opera"));
        let e = parse_config("enable\n").unwrap_err();
        assert!(e.message.contains("at least one"));
        let e = parse_config("max-title-length many\n").unwrap_err();
        assert!(e.message.contains("bad number"));
        let e = parse_config("fragment sideways\n").unwrap_err();
        assert!(e.message.contains("on/off"));
    }

    #[test]
    fn apply_enable_category() {
        let mut c = LintConfig::default();
        apply_config_text("disable errors\n", &mut c).unwrap();
        assert!(!c.is_enabled("unclosed-element"));
        assert!(c.is_enabled("img-alt"));
        apply_config_text("enable style\n", &mut c).unwrap();
        assert!(c.is_enabled("physical-font"));
    }

    #[test]
    fn apply_unknown_id_warns_with_suggestion() {
        // A stale or mistyped identifier must not stop the run: the
        // directive is skipped with a warning naming the nearest id.
        let mut c = LintConfig::default();
        let warnings = apply_config_text("enable unclosed-elemnt\ndisable img-alt\n", &mut c)
            .expect("unknown ids are not fatal");
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].line, 1);
        assert!(warnings[0].message.contains("unclosed-elemnt"));
        assert!(
            warnings[0]
                .message
                .contains("did you mean `unclosed-element`"),
            "{}",
            warnings[0].message
        );
        // The rest of the file still applied.
        assert!(!c.is_enabled("img-alt"));
    }

    #[test]
    fn rules_section_parses_and_applies() {
        let mut c = LintConfig::default();
        let text = "disable img-alt\n\
                    [rules]\n\
                    # a comment line\n\
                    button-class warning element=button !attr=class \"needs a class\"\n\
                    frag-link style attr=href^=#contents \"message with # inside\" # trailing\n\
                    [config]\n\
                    enable img-alt\n";
        let warnings = apply_config_text(text, &mut c).unwrap();
        assert_eq!(warnings, vec![]);
        assert_eq!(c.custom_rules.len(), 2);
        assert_eq!(c.custom_rules[0].id, "button-class");
        assert_eq!(c.custom_rules[1].message, "message with # inside");
        assert!(c.is_enabled("button-class"));
        // The [config] section after [rules] still works.
        assert!(c.is_enabled("img-alt"));
    }

    #[test]
    fn custom_rule_can_be_disabled_by_id() {
        let mut c = LintConfig::default();
        apply_config_text(
            "[rules]\nmy-rule warning element=b \"m\"\n[config]\ndisable my-rule\n",
            &mut c,
        )
        .unwrap();
        assert!(!c.is_enabled("my-rule"));
    }

    #[test]
    fn rules_section_errors_are_fatal() {
        let e = parse_config("[rules]\nimg-alt warning element=img \"m\"\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("collides"), "{e}");
        let e = parse_config("[nonsense]\n").unwrap_err();
        assert!(e.message.contains("unknown section"), "{e}");
        let e = parse_config("[rules\n").unwrap_err();
        assert!(e.message.contains("malformed section"), "{e}");
    }

    #[test]
    fn redeclared_rule_last_wins() {
        let mut c = LintConfig::default();
        apply_config_text(
            "[rules]\nr-one warning element=b \"first\"\nr-one error element=i \"second\"\n",
            &mut c,
        )
        .unwrap();
        assert_eq!(c.custom_rules.len(), 1);
        assert_eq!(c.custom_rules[0].message, "second");
    }

    #[test]
    fn pedantic_preserves_custom_rules() {
        let mut c = LintConfig::default();
        apply_config_text(
            "[rules]\nmy-rule warning element=b \"m\"\n[config]\npedantic\n",
            &mut c,
        )
        .unwrap();
        assert_eq!(c.custom_rules.len(), 1);
        assert!(c.is_enabled("my-rule"));
    }

    #[test]
    fn apply_version_extension_fragment() {
        let mut c = LintConfig::default();
        apply_config_text(
            "version 3.2\nextension both\nfragment on\nmax-title-length 10\n",
            &mut c,
        )
        .unwrap();
        assert_eq!(c.version, HtmlVersion::Html32);
        assert!(c.extensions.netscape && c.extensions.microsoft);
        assert!(c.fragment);
        assert_eq!(c.max_title_length, 10);
    }

    #[test]
    fn apply_here_anchor_text_dedups() {
        let mut c = LintConfig::default();
        let before = c.here_anchor_texts.len();
        apply_config_text(
            "here-anchor-text \"click me\"\nhere-anchor-text \"click me\"\n",
            &mut c,
        )
        .unwrap();
        assert_eq!(c.here_anchor_texts.len(), before + 1);
        assert!(c.here_anchor_texts.contains(&"click me".to_string()));
    }

    #[test]
    fn apply_pedantic_preserves_knobs() {
        let mut c = LintConfig::default();
        c.version = HtmlVersion::Html32;
        c.max_title_length = 10;
        apply_config_text("pedantic\n", &mut c).unwrap();
        assert!(c.is_enabled("title-length"));
        assert_eq!(c.version, HtmlVersion::Html32);
        assert_eq!(c.max_title_length, 10);
    }

    #[test]
    fn custom_markup_directives() {
        let mut c = LintConfig::default();
        apply_config_text(
            "element WOBBLE, FROB\nattribute p wibble\nattribute * tooldata\n",
            &mut c,
        )
        .unwrap();
        assert!(c.is_custom_element("wobble"));
        assert!(c.is_custom_element("frob"));
        assert!(!c.is_custom_element("zap"));
        assert!(c.is_custom_attribute("p", "wibble"));
        assert!(!c.is_custom_attribute("b", "wibble"));
        assert!(c.is_custom_attribute("b", "tooldata"));
    }

    #[test]
    fn custom_markup_parse_errors() {
        assert!(parse_config("element\n").is_err());
        assert!(parse_config("attribute onlyone\n").is_err());
        assert!(parse_config("attribute a b c\n").is_err());
    }

    #[test]
    fn custom_markup_silences_engine() {
        // The §4.6 scenario: a generator's tool-specific markup.
        let mut c = LintConfig::default();
        c.fragment = true;
        apply_config_text("element GENERATOR-NOTE\nattribute * toolid\n", &mut c).unwrap();
        let weblint = weblint_core::Weblint::with_config(c);
        let page = "<GENERATOR-NOTE>made by tool</GENERATOR-NOTE>\
                    <P TOOLID=\"77\">content</P>";
        assert_eq!(weblint.check_string(page), vec![]);
        // Without the declarations the same page is noisy.
        let mut plain = LintConfig::default();
        plain.fragment = true;
        let weblint = weblint_core::Weblint::with_config(plain);
        assert_eq!(weblint.check_string(page).len(), 2);
    }

    #[test]
    fn extension_none_resets() {
        let mut c = LintConfig::default();
        apply_config_text("extension both\nextension none\n", &mut c).unwrap();
        assert!(!c.extensions.netscape && !c.extensions.microsoft);
    }
}
