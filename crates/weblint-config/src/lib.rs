//! Configuration files and switches for weblint.
//!
//! "There are three ways to provide configuration information for weblint:
//! a site configuration file … a user configuration file, `.weblintrc` on
//! Unix systems … command-line switches, which over-ride both configuration
//! files" (§4.4). This crate parses the `.weblintrc` dialect, applies
//! directives onto a [`weblint_core::LintConfig`], and implements the
//! layering.
//!
//! It also implements the paper's §6.1 future-work item "page-specific
//! configuration of weblint: configuration information embedded in
//! comments" — `<!-- weblint: disable here-anchor -->` inside a page adjusts
//! the configuration for that page.
//!
//! # File format
//!
//! ```text
//! # weblint site configuration
//! enable  here-anchor, physical-font
//! disable img-alt
//! disable style              # a whole category
//! version html-4.0-strict
//! extension netscape
//! here-anchor-text "click me"
//! max-title-length 80
//! ```
//!
//! # Examples
//!
//! ```
//! use weblint_config::apply_config_text;
//! use weblint_core::LintConfig;
//!
//! let mut config = LintConfig::default();
//! apply_config_text("enable physical-font\ndisable img-alt\n", &mut config).unwrap();
//! assert!(config.is_enabled("physical-font"));
//! assert!(!config.is_enabled("img-alt"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod directive;
mod layering;
mod pragma;

pub use directive::{
    apply_config_text, apply_directive, parse_config, parse_numbered, ConfigError, ConfigWarning,
    Directive,
};
pub use layering::{load_config_file, load_layered, Layering};
pub use pragma::{apply_pragmas, extract_pragmas};
