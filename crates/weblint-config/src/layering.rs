//! Configuration layering: site file, then user file, then overrides.

use std::fs;
use std::path::{Path, PathBuf};

use weblint_core::LintConfig;

use crate::directive::{apply_config_text, apply_directive, ConfigError, Directive};

/// Where the layers come from for one weblint run.
///
/// "The user's file can either extend or over-ride the site configuration.
/// Command-line switches … over-ride both configuration files" (§4.4).
/// Layers apply in that order, later layers winning.
#[derive(Debug, Clone, Default)]
pub struct Layering {
    /// Site-wide configuration file (a company or group style guide).
    pub site_file: Option<PathBuf>,
    /// Per-user configuration file (`~/.weblintrc`).
    pub user_file: Option<PathBuf>,
    /// Directives from command-line switches.
    pub overrides: Vec<Directive>,
}

impl Layering {
    /// Resolve the layers into a configuration, starting from defaults.
    pub fn resolve(&self) -> Result<LintConfig, ConfigError> {
        let mut config = LintConfig::default();
        if let Some(site) = &self.site_file {
            load_config_file(site, &mut config)?;
        }
        if let Some(user) = &self.user_file {
            load_config_file(user, &mut config)?;
        }
        for directive in &self.overrides {
            apply_directive(directive, &mut config)?;
        }
        Ok(config)
    }
}

/// Read one configuration file and apply it onto `config`.
///
/// A missing user file is not an error — weblint runs fine without a
/// `.weblintrc` — but an unreadable or malformed file is.
pub fn load_config_file(path: &Path, config: &mut LintConfig) -> Result<(), ConfigError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => {
            return Err(ConfigError {
                line: 0,
                message: format!("cannot read {}: {e}", path.display()),
            })
        }
    };
    apply_config_text(&text, config).map_err(|mut e| {
        e.message = format!("{}: {}", path.display(), e.message);
        e
    })
}

/// Convenience: resolve a full layered configuration in one call.
pub fn load_layered(
    site_file: Option<&Path>,
    user_file: Option<&Path>,
    overrides: &[Directive],
) -> Result<LintConfig, ConfigError> {
    Layering {
        site_file: site_file.map(Path::to_path_buf),
        user_file: user_file.map(Path::to_path_buf),
        overrides: overrides.to_vec(),
    }
    .resolve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("weblint-config-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn missing_files_are_fine() {
        let config = load_layered(
            Some(Path::new("/no/such/site.rc")),
            Some(Path::new("/no/such/user.rc")),
            &[],
        )
        .unwrap();
        assert_eq!(config.enabled_count(), 42);
    }

    #[test]
    fn user_overrides_site() {
        let site = temp_file("site.rc", "disable img-alt\ndisable here-anchor\n");
        let user = temp_file("user.rc", "enable img-alt\n");
        let config = load_layered(Some(&site), Some(&user), &[]).unwrap();
        assert!(config.is_enabled("img-alt"));
        assert!(!config.is_enabled("here-anchor"));
    }

    #[test]
    fn cli_overrides_both() {
        let site = temp_file("site2.rc", "disable img-alt\n");
        let user = temp_file("user2.rc", "disable here-anchor\n");
        let overrides = vec![
            Directive::Enable("img-alt".into()),
            Directive::Enable("here-anchor".into()),
        ];
        let config = load_layered(Some(&site), Some(&user), &overrides).unwrap();
        assert!(config.is_enabled("img-alt"));
        assert!(config.is_enabled("here-anchor"));
    }

    #[test]
    fn malformed_file_reports_path() {
        let site = temp_file("bad.rc", "explode now\n");
        let mut config = LintConfig::default();
        let e = load_config_file(&site, &mut config).unwrap_err();
        assert!(e.message.contains("bad.rc"), "{e}");
    }
}
