//! Configuration layering: site file, then user file, then overrides.

use std::fs;
use std::path::{Path, PathBuf};

use weblint_core::LintConfig;

use crate::directive::{apply_config_text, apply_directive, ConfigError, ConfigWarning, Directive};

/// Where the layers come from for one weblint run.
///
/// "The user's file can either extend or over-ride the site configuration.
/// Command-line switches … over-ride both configuration files" (§4.4).
/// Layers apply in that order, later layers winning.
#[derive(Debug, Clone, Default)]
pub struct Layering {
    /// Site-wide configuration file (a company or group style guide).
    pub site_file: Option<PathBuf>,
    /// Per-user configuration file (`~/.weblintrc`).
    pub user_file: Option<PathBuf>,
    /// Directives from command-line switches.
    pub overrides: Vec<Directive>,
}

impl Layering {
    /// Resolve the layers into a configuration, starting from defaults.
    /// Non-fatal problems (unknown check ids) come back as warnings, each
    /// naming the file it came from.
    pub fn resolve(&self) -> Result<(LintConfig, Vec<ConfigWarning>), ConfigError> {
        let mut config = LintConfig::default();
        let mut warnings = Vec::new();
        if let Some(site) = &self.site_file {
            warnings.extend(load_config_file(site, &mut config)?);
        }
        if let Some(user) = &self.user_file {
            warnings.extend(load_config_file(user, &mut config)?);
        }
        for directive in &self.overrides {
            if let Some(w) = apply_directive(directive, &mut config)? {
                warnings.push(w);
            }
        }
        Ok((config, warnings))
    }
}

/// Read one configuration file and apply it onto `config`, returning the
/// non-fatal warnings (prefixed with the file's path).
///
/// A missing user file is not an error — weblint runs fine without a
/// `.weblintrc` — but an unreadable or malformed file is.
pub fn load_config_file(
    path: &Path,
    config: &mut LintConfig,
) -> Result<Vec<ConfigWarning>, ConfigError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ConfigError {
                line: 0,
                message: format!("cannot read {}: {e}", path.display()),
            })
        }
    };
    let mut warnings = apply_config_text(&text, config).map_err(|mut e| {
        e.message = format!("{}: {}", path.display(), e.message);
        e
    })?;
    for w in &mut warnings {
        w.message = format!("{}: {}", path.display(), w.message);
    }
    Ok(warnings)
}

/// Convenience: resolve a full layered configuration in one call.
pub fn load_layered(
    site_file: Option<&Path>,
    user_file: Option<&Path>,
    overrides: &[Directive],
) -> Result<(LintConfig, Vec<ConfigWarning>), ConfigError> {
    Layering {
        site_file: site_file.map(Path::to_path_buf),
        user_file: user_file.map(Path::to_path_buf),
        overrides: overrides.to_vec(),
    }
    .resolve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("weblint-config-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn missing_files_are_fine() {
        let (config, warnings) = load_layered(
            Some(Path::new("/no/such/site.rc")),
            Some(Path::new("/no/such/user.rc")),
            &[],
        )
        .unwrap();
        assert_eq!(config.enabled_count(), 42);
        assert_eq!(warnings, vec![]);
    }

    #[test]
    fn user_overrides_site() {
        let site = temp_file("site.rc", "disable img-alt\ndisable here-anchor\n");
        let user = temp_file("user.rc", "enable img-alt\n");
        let (config, _) = load_layered(Some(&site), Some(&user), &[]).unwrap();
        assert!(config.is_enabled("img-alt"));
        assert!(!config.is_enabled("here-anchor"));
    }

    #[test]
    fn cli_overrides_both() {
        let site = temp_file("site2.rc", "disable img-alt\n");
        let user = temp_file("user2.rc", "disable here-anchor\n");
        let overrides = vec![
            Directive::Enable("img-alt".into()),
            Directive::Enable("here-anchor".into()),
        ];
        let (config, _) = load_layered(Some(&site), Some(&user), &overrides).unwrap();
        assert!(config.is_enabled("img-alt"));
        assert!(config.is_enabled("here-anchor"));
    }

    #[test]
    fn unknown_ids_warn_with_file_name() {
        let site = temp_file("stale.rc", "disable no-such-check\ndisable img-alt\n");
        let (config, warnings) = load_layered(Some(&site), None, &[]).unwrap();
        assert!(!config.is_enabled("img-alt"));
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].message.contains("stale.rc"), "{:?}", warnings);
        assert!(warnings[0].message.contains("no-such-check"));
    }

    #[test]
    fn rules_survive_layering() {
        let site = temp_file(
            "rules.rc",
            "[rules]\nsite-rule warning element=marquee \"no marquee\"\n",
        );
        let (config, warnings) = load_layered(Some(&site), None, &[]).unwrap();
        assert_eq!(warnings, vec![]);
        assert_eq!(config.custom_rules.len(), 1);
        assert!(config.is_enabled("site-rule"));
    }

    #[test]
    fn malformed_file_reports_path() {
        let site = temp_file("bad.rc", "explode now\n");
        let mut config = LintConfig::default();
        let e = load_config_file(&site, &mut config).unwrap_err();
        assert!(e.message.contains("bad.rc"), "{e}");
    }
}
