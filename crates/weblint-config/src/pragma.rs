//! Page-embedded configuration pragmas.
//!
//! The paper's §6.1 lists "page-specific configuration of weblint:
//! configuration information embedded in comments, which traditional lint
//! supports" as future work. This module implements it: HTML comments of
//! the form
//!
//! ```html
//! <!-- weblint: disable here-anchor, img-alt -->
//! <!-- weblint: enable physical-font -->
//! ```
//!
//! carry ordinary `.weblintrc` directives that apply to the page they
//! appear in. Pragmas apply page-wide regardless of position, mirroring
//! lint's file-scoped `/* LINTLIBRARY */`-style comments.

use weblint_core::LintConfig;
use weblint_tokenizer::{TokenKind, Tokenizer};

use crate::directive::{apply_directive, parse_config, ConfigError, ConfigWarning, Directive};

/// The marker that introduces a weblint pragma comment.
const PRAGMA_PREFIX: &str = "weblint:";

/// Extract the directives from every `<!-- weblint: … -->` comment in a
/// page.
///
/// Malformed pragma bodies are reported, with the line number of the
/// comment; non-pragma comments are ignored.
///
/// # Examples
///
/// ```
/// use weblint_config::extract_pragmas;
///
/// let page = "<HTML><!-- weblint: disable here-anchor --><BODY>…";
/// let pragmas = extract_pragmas(page).unwrap();
/// assert_eq!(pragmas.len(), 1);
/// ```
pub fn extract_pragmas(src: &str) -> Result<Vec<Directive>, ConfigError> {
    let mut out = Vec::new();
    for token in Tokenizer::new(src) {
        let TokenKind::Comment(comment) = &token.kind else {
            continue;
        };
        let body = comment.text.trim();
        let Some(rest) = body.strip_prefix(PRAGMA_PREFIX) else {
            continue;
        };
        let directives = parse_config(rest.trim()).map_err(|mut e| {
            e.line = token.span.start.line;
            e.message = format!("in weblint pragma comment: {}", e.message);
            e
        })?;
        out.extend(directives);
    }
    Ok(out)
}

/// Apply every pragma in `src` onto `config`, returning how many directives
/// were applied plus the non-fatal warnings (unknown check ids are skipped
/// with a warning, not an error — a page pragma naming a check this weblint
/// does not have should not kill the page's lint run).
pub fn apply_pragmas(
    src: &str,
    config: &mut LintConfig,
) -> Result<(usize, Vec<ConfigWarning>), ConfigError> {
    let directives = extract_pragmas(src)?;
    let mut warnings = Vec::new();
    for d in &directives {
        if let Some(mut w) = apply_directive(d, config)? {
            w.message = format!("in weblint pragma comment: {}", w.message);
            warnings.push(w);
        }
    }
    Ok((directives.len(), warnings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pragmas_in_plain_page() {
        let src = "<HTML><!-- ordinary comment --><BODY>x</BODY></HTML>";
        assert_eq!(extract_pragmas(src).unwrap(), vec![]);
    }

    #[test]
    fn extracts_multiple_directives() {
        let src = "<!-- weblint: disable here-anchor, img-alt -->\n\
                   <!-- weblint: enable physical-font -->";
        let ds = extract_pragmas(src).unwrap();
        assert_eq!(
            ds,
            vec![
                Directive::Disable("here-anchor".into()),
                Directive::Disable("img-alt".into()),
                Directive::Enable("physical-font".into()),
            ]
        );
    }

    #[test]
    fn applies_to_config() {
        let mut c = LintConfig::default();
        let (n, warnings) = apply_pragmas("<!-- weblint: disable img-alt -->", &mut c).unwrap();
        assert_eq!(n, 1);
        assert_eq!(warnings, vec![]);
        assert!(!c.is_enabled("img-alt"));
    }

    #[test]
    fn pragma_parse_error_carries_comment_line() {
        let src = "line one\n<!-- weblint: explode -->";
        let e = extract_pragmas(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("pragma"));
    }

    #[test]
    fn pragma_end_to_end_with_linter() {
        // The lint driver flow: read page, apply pragmas, lint.
        let page = "<!-- weblint: fragment on -->\n<B>bold</B>\n";
        let mut config = LintConfig::default();
        apply_pragmas(page, &mut config).unwrap();
        let weblint = weblint_core::Weblint::with_config(config);
        assert_eq!(weblint.check_string(page), vec![]);
    }

    #[test]
    fn unknown_id_in_pragma_warns() {
        let mut c = LintConfig::default();
        let (n, warnings) =
            apply_pragmas("<!-- weblint: enable nonsense-check -->", &mut c).unwrap();
        assert_eq!(n, 1);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].message.contains("pragma"), "{:?}", warnings);
        assert!(warnings[0].message.contains("nonsense-check"));
    }

    #[test]
    fn pragma_disables_custom_rule() {
        let mut c = LintConfig::default();
        crate::apply_config_text("[rules]\nmy-rule warning element=b \"m\"\n", &mut c).unwrap();
        let (_, warnings) = apply_pragmas("<!-- weblint: disable my-rule -->", &mut c).unwrap();
        assert_eq!(warnings, vec![]);
        assert!(!c.is_enabled("my-rule"));
    }
}
