//! Defect-injection operators: one per mistake class.
//!
//! Each class injects exactly one instance of one kind of author mistake
//! into an otherwise-valid document, and names the weblint message expected
//! to fire. The baseline-comparison experiment (DESIGN.md E6) runs all
//! three checkers over documents mutated by every class and compares who
//! detects what, with how many messages.

use rand::Rng;

/// A class of HTML authoring mistake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectClass {
    /// DOCTYPE omitted entirely.
    MissingDoctype,
    /// A mistyped element name (`<BLOCKQOUTE>`).
    UnknownElement,
    /// A mistyped attribute name.
    UnknownAttribute,
    /// A block container opened but never closed.
    UnclosedElement,
    /// A close tag for an element that was never opened.
    UnexpectedClose,
    /// Interleaved inline elements (`<B><I>..</B>..</I>`).
    ElementOverlap,
    /// Heading closed at a different level than it opened.
    HeadingMismatch,
    /// Attribute value with an unbalanced quote.
    OddQuotes,
    /// A tag interrupted before its `>`.
    UnterminatedTag,
    /// Unquoted attribute value that needs quoting.
    UnquotedValue,
    /// Attribute value violating its legal pattern (a bad color).
    IllegalAttrValue,
    /// Single-quoted attribute value.
    SingleQuoteDelimiter,
    /// The same attribute twice in one tag.
    DuplicateAttribute,
    /// Required attributes missing (`TEXTAREA` without `ROWS`/`COLS`).
    MissingRequiredAttr,
    /// `IMG` without `ALT`.
    MissingAlt,
    /// End tag carrying attributes.
    EndTagAttribute,
    /// Obsolete element (`<LISTING>`).
    ObsoleteElement,
    /// Vendor extension markup with extensions disabled (`<BLINK>`).
    ExtensionMarkup,
    /// Markup from a different HTML version (`<FRAMESET>` in Transitional).
    VersionMarkup,
    /// Literal `<` in text.
    LiteralMetachar,
    /// Reference to an undefined entity.
    UnknownEntity,
    /// Entity reference missing its `;`.
    UnterminatedEntity,
    /// Markup inside a comment.
    MarkupInComment,
    /// Comment never closed (swallows the rest of the file).
    UnclosedComment,
    /// Content-free anchor text ("click here").
    HereAnchor,
    /// An anchor nested inside an anchor.
    NestedAnchor,
    /// `<LI>` outside any list.
    RequiredContext,
    /// An `<A NAME=…>` with no content.
    EmptyContainer,
}

/// Every defect class, in a stable order.
pub fn all_defect_classes() -> &'static [DefectClass] {
    use DefectClass::*;
    &[
        MissingDoctype,
        UnknownElement,
        UnknownAttribute,
        UnclosedElement,
        UnexpectedClose,
        ElementOverlap,
        HeadingMismatch,
        OddQuotes,
        UnterminatedTag,
        UnquotedValue,
        IllegalAttrValue,
        SingleQuoteDelimiter,
        DuplicateAttribute,
        MissingRequiredAttr,
        MissingAlt,
        EndTagAttribute,
        ObsoleteElement,
        ExtensionMarkup,
        VersionMarkup,
        LiteralMetachar,
        UnknownEntity,
        UnterminatedEntity,
        MarkupInComment,
        UnclosedComment,
        HereAnchor,
        NestedAnchor,
        RequiredContext,
        EmptyContainer,
    ]
}

impl DefectClass {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        use DefectClass::*;
        match self {
            MissingDoctype => "missing-doctype",
            UnknownElement => "unknown-element",
            UnknownAttribute => "unknown-attribute",
            UnclosedElement => "unclosed-element",
            UnexpectedClose => "unexpected-close",
            ElementOverlap => "element-overlap",
            HeadingMismatch => "heading-mismatch",
            OddQuotes => "odd-quotes",
            UnterminatedTag => "unterminated-tag",
            UnquotedValue => "unquoted-value",
            IllegalAttrValue => "illegal-attr-value",
            SingleQuoteDelimiter => "single-quote-delimiter",
            DuplicateAttribute => "duplicate-attribute",
            MissingRequiredAttr => "missing-required-attr",
            MissingAlt => "missing-alt",
            EndTagAttribute => "end-tag-attribute",
            ObsoleteElement => "obsolete-element",
            ExtensionMarkup => "extension-markup",
            VersionMarkup => "version-markup",
            LiteralMetachar => "literal-metachar",
            UnknownEntity => "unknown-entity",
            UnterminatedEntity => "unterminated-entity",
            MarkupInComment => "markup-in-comment",
            UnclosedComment => "unclosed-comment",
            HereAnchor => "here-anchor",
            NestedAnchor => "nested-anchor",
            RequiredContext => "required-context",
            EmptyContainer => "empty-container",
        }
    }

    /// The weblint message identifier this defect is expected to trigger.
    pub fn expected_message(self) -> &'static str {
        use DefectClass::*;
        match self {
            MissingDoctype => "require-doctype",
            UnknownElement => "unknown-element",
            UnknownAttribute => "unknown-attribute",
            UnclosedElement => "unclosed-element",
            UnexpectedClose => "unexpected-close",
            ElementOverlap => "element-overlap",
            HeadingMismatch => "heading-mismatch",
            OddQuotes => "odd-quotes",
            UnterminatedTag => "unterminated-tag",
            UnquotedValue => "quote-attribute-value",
            IllegalAttrValue => "attribute-value",
            SingleQuoteDelimiter => "attribute-delimiter",
            DuplicateAttribute => "duplicate-attribute",
            MissingRequiredAttr => "required-attribute",
            MissingAlt => "img-alt",
            EndTagAttribute => "closing-attribute",
            ObsoleteElement => "obsolete-element",
            ExtensionMarkup => "extension-markup",
            VersionMarkup => "version-markup",
            LiteralMetachar => "literal-metacharacter",
            UnknownEntity => "unknown-entity",
            UnterminatedEntity => "unterminated-entity",
            MarkupInComment => "markup-in-comment",
            UnclosedComment => "unclosed-comment",
            HereAnchor => "here-anchor",
            NestedAnchor => "nested-element",
            RequiredContext => "required-context",
            EmptyContainer => "empty-container",
        }
    }

    /// Whether the defect breaks element *nesting*, the class of problem a
    /// stack-less line-oriented checker (htmlchek-style, DESIGN.md S10)
    /// cannot see.
    pub fn is_nesting_defect(self) -> bool {
        use DefectClass::*;
        matches!(
            self,
            UnclosedElement
                | UnexpectedClose
                | ElementOverlap
                | HeadingMismatch
                | NestedAnchor
                | RequiredContext
                | EmptyContainer
                | UnclosedComment
        )
    }

    /// The snippet this class injects (everything except `MissingDoctype`,
    /// which removes text instead).
    pub fn snippet(self) -> &'static str {
        use DefectClass::*;
        match self {
            MissingDoctype => "",
            UnknownElement => "<BLOCKQOUTE>a common typo</BLOCKQOUTE>\n",
            UnknownAttribute => "<P BLARG=\"oops\">mistyped attribute.</P>\n",
            UnclosedElement => "<DIV CLASS=\"x\">this div is never closed\n",
            UnexpectedClose => "</DL>\n",
            ElementOverlap => "<P><B><I>interleaved</B> markup</I></P>\n",
            HeadingMismatch => "<H2>mismatched heading</H3>\n",
            OddQuotes => "<P>Click <A HREF=\"a.html>this link</A> now.</P>\n",
            UnterminatedTag => "<P <B>interrupted tag</B>\n",
            UnquotedValue => "<P>See <A HREF=docs/notes.html>the notes</A>.</P>\n",
            IllegalAttrValue => "<TABLE WIDTH=\"very wide\"><TR><TD>x</TD></TR></TABLE>\n",
            SingleQuoteDelimiter => "<P>See <A HREF='x.html'>the page</A>.</P>\n",
            DuplicateAttribute => "<P>See <A HREF=\"x.html\" HREF=\"y.html\">the page</A>.</P>\n",
            MissingRequiredAttr => "<TEXTAREA NAME=\"t\">text</TEXTAREA>\n",
            MissingAlt => "<P><IMG SRC=\"logo.gif\" WIDTH=\"10\" HEIGHT=\"10\"></P>\n",
            EndTagAttribute => "<P><B>bold</B CLASS=\"x\"> text</P>\n",
            ObsoleteElement => "<LISTING>old markup</LISTING>\n",
            ExtensionMarkup => "<P><BLINK>hot!</BLINK></P>\n",
            VersionMarkup => "<FRAMESET ROWS=\"50%,50%\"></FRAMESET>\n",
            LiteralMetachar => "<P>clearly 1 < 2 in all cases.</P>\n",
            UnknownEntity => "<P>the &fooby; entity.</P>\n",
            UnterminatedEntity => "<P>caf&eacute is nice.</P>\n",
            MarkupInComment => "<!-- commented out: <B>old content</B> -->\n",
            UnclosedComment => "<!-- this comment is never closed\n",
            HereAnchor => "<P>Click <A HREF=\"more.html\">here</A> for more.</P>\n",
            NestedAnchor => "<P><A HREF=\"x.html\">outer <A HREF=\"y.html\">inner</A></A></P>\n",
            RequiredContext => "<LI>a loose list item\n",
            EmptyContainer => "<P><A NAME=\"anchor-point\"></A>section.</P>\n",
        }
    }

    /// Inject one instance of this defect into `doc`.
    ///
    /// `MissingDoctype` strips the DOCTYPE line; `UnclosedComment` appends
    /// just before `</BODY>` so it does not hide the rest of the corpus;
    /// everything else is inserted at a line boundary inside the body,
    /// chosen by `rng`.
    pub fn inject(self, doc: &str, rng: &mut impl Rng) -> String {
        match self {
            DefectClass::MissingDoctype => doc
                .lines()
                .filter(|l| !l.trim_start().starts_with("<!DOCTYPE"))
                .map(|l| format!("{l}\n"))
                .collect(),
            DefectClass::UnclosedComment => match doc.rfind("</BODY>") {
                Some(idx) => {
                    let mut out = String::with_capacity(doc.len() + 64);
                    out.push_str(&doc[..idx]);
                    out.push_str(self.snippet());
                    out.push_str(&doc[idx..]);
                    out
                }
                None => format!("{doc}{}", self.snippet()),
            },
            _ => {
                let idx = body_insertion_point(doc, rng);
                let mut out = String::with_capacity(doc.len() + 128);
                out.push_str(&doc[..idx]);
                out.push_str(self.snippet());
                out.push_str(&doc[idx..]);
                out
            }
        }
    }
}

/// A random *block boundary* inside `<BODY>…</BODY>`: a line boundary
/// where the preceding line closes a block. Injecting between blocks keeps
/// the defect the only problem in the document — landing mid-table or
/// mid-list would manufacture unrelated context violations.
fn body_insertion_point(doc: &str, rng: &mut impl Rng) -> usize {
    let start = doc
        .find("<BODY")
        .and_then(|i| doc[i..].find('\n').map(|j| i + j + 1))
        .unwrap_or(0);
    let end = doc.rfind("</BODY>").unwrap_or(doc.len());
    let mut candidates = Vec::new();
    let mut line_start = start;
    for (i, c) in doc[start..end].char_indices() {
        if c != '\n' {
            continue;
        }
        let boundary = start + i + 1;
        let line = doc[line_start..start + i].trim_end();
        if is_block_end(line) && boundary < end {
            candidates.push(boundary);
        }
        line_start = boundary;
    }
    if candidates.is_empty() {
        return end;
    }
    candidates[rng.random_range(0..candidates.len())]
}

/// Does this source line end at the top level of the body?
fn is_block_end(line: &str) -> bool {
    const BLOCK_CLOSERS: &[&str] = &[
        "</P>",
        "</TABLE>",
        "</UL>",
        "</OL>",
        "</PRE>",
        "</H1>",
        "</H2>",
        "</H3>",
        "</H4>",
        "</H5>",
        "</H6>",
        "</DL>",
        "</BLOCKQUOTE>",
        "</DIV>",
        "<BODY>",
    ];
    BLOCK_CLOSERS.iter().any(|c| line.ends_with(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_document;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_list_is_complete_and_unique() {
        let classes = all_defect_classes();
        assert_eq!(classes.len(), 28);
        let names: std::collections::HashSet<_> = classes.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), classes.len());
    }

    #[test]
    fn injection_is_deterministic() {
        let doc = generate_document(11, 2048);
        let a = DefectClass::OddQuotes.inject(&doc, &mut StdRng::seed_from_u64(5));
        let b = DefectClass::OddQuotes.inject(&doc, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn missing_doctype_strips_the_declaration() {
        let doc = generate_document(12, 1024);
        let mutated = DefectClass::MissingDoctype.inject(&doc, &mut StdRng::seed_from_u64(0));
        assert!(!mutated.contains("<!DOCTYPE"));
        assert!(mutated.contains("<HTML>"));
    }

    #[test]
    fn injections_land_inside_body() {
        let doc = generate_document(13, 2048);
        let mut rng = StdRng::seed_from_u64(3);
        for class in all_defect_classes() {
            if *class == DefectClass::MissingDoctype {
                continue;
            }
            let mutated = class.inject(&doc, &mut rng);
            let snippet = class.snippet();
            let pos = mutated.find(snippet).expect("snippet present");
            let body = mutated.find("<BODY").expect("body present");
            assert!(pos > body, "{} landed before <BODY>", class.name());
        }
    }

    #[test]
    fn every_class_fires_its_expected_message() {
        // The contract the E6 experiment relies on: inject class C into a
        // clean document, and weblint (defaults) reports C's expected id.
        let doc = generate_document(17, 4096);
        let weblint = weblint_core::Weblint::new();
        assert_eq!(weblint.check_string(&doc), vec![], "base doc must be clean");
        let mut rng = StdRng::seed_from_u64(99);
        for class in all_defect_classes() {
            let mutated = class.inject(&doc, &mut rng);
            let diags = weblint.check_string(&mutated);
            let expected = class.expected_message();
            assert!(
                diags.iter().any(|d| d.id == expected),
                "{}: expected `{expected}`, got {:?}",
                class.name(),
                diags.iter().map(|d| d.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn defects_produce_few_messages_each() {
        // Cascade suppression: one injected defect should produce a handful
        // of messages, not a flurry (§5.1).
        let doc = generate_document(21, 4096);
        let weblint = weblint_core::Weblint::new();
        let mut rng = StdRng::seed_from_u64(7);
        for class in all_defect_classes() {
            let mutated = class.inject(&doc, &mut rng);
            let n = weblint.check_string(&mutated).len();
            assert!(n <= 3, "{} produced {n} messages", class.name());
        }
    }
}
