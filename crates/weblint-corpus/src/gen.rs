//! Valid-by-construction document generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{sentence, word, words};

/// Knobs for document generation.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Grow the body until the document is at least this many bytes.
    pub target_bytes: usize,
    /// Emit a DOCTYPE line (on by default; the `MissingDoctype` defect
    /// class switches it off).
    pub doctype: bool,
    /// Proportion (0–100) of blocks that are "rich" (tables, lists,
    /// anchors, images) rather than plain paragraphs.
    pub rich_percent: u8,
    /// Generate free-standing `<A HREF="…">` paragraphs. Site generation
    /// turns this off: its pages get a real navigation block instead, and
    /// random anchors would read as dead links.
    pub anchors: bool,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            target_bytes: 4 * 1024,
            doctype: true,
            rich_percent: 40,
            anchors: true,
        }
    }
}

/// Generate a valid HTML 4.0 Transitional document of roughly
/// `target_bytes` bytes, deterministically from `seed`.
pub fn generate_document(seed: u64, target_bytes: usize) -> String {
    generate_document_with(
        seed,
        &GenOptions {
            target_bytes,
            ..GenOptions::default()
        },
    )
}

/// Generate a document with explicit options.
pub fn generate_document_with(seed: u64, options: &GenOptions) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut doc = String::with_capacity(options.target_bytes + 512);
    if options.doctype {
        doc.push_str("<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n");
    }
    doc.push_str("<HTML>\n<HEAD>\n");
    doc.push_str(&format!("<TITLE>{}</TITLE>\n", words(&mut rng, 4)));
    doc.push_str(&format!(
        "<META NAME=\"description\" CONTENT=\"{}\">\n",
        words(&mut rng, 6)
    ));
    doc.push_str(&format!(
        "<META NAME=\"keywords\" CONTENT=\"{}\">\n",
        words(&mut rng, 5)
    ));
    doc.push_str("</HEAD>\n<BODY>\n");
    doc.push_str(&format!("<H1>{}</H1>\n", words(&mut rng, 3)));
    let mut heading = 1u8;
    while doc.len() < options.target_bytes {
        let rich = rng.random_range(0..100u8) < options.rich_percent;
        if rich {
            match rng.random_range(0..5) {
                0 => push_list(&mut doc, &mut rng),
                1 => push_table(&mut doc, &mut rng),
                2 if options.anchors => push_anchor_para(&mut doc, &mut rng),
                2 => push_paragraph(&mut doc, &mut rng),
                3 => push_image(&mut doc, &mut rng),
                _ => push_pre(&mut doc, &mut rng),
            }
        } else if rng.random_range(0..8) == 0 {
            // Headings descend at most one level at a time so the
            // heading-order check stays quiet.
            heading = if heading < 4 && rng.random_bool(0.5) {
                heading + 1
            } else {
                1
            };
            doc.push_str(&format!(
                "<H{h}>{}</H{h}>\n",
                words(&mut rng, 3),
                h = heading
            ));
        } else {
            push_paragraph(&mut doc, &mut rng);
        }
    }
    doc.push_str("</BODY>\n</HTML>\n");
    doc
}

fn push_paragraph(doc: &mut String, rng: &mut StdRng) {
    doc.push_str("<P>");
    let sentences = rng.random_range(1..=4);
    for _ in 0..sentences {
        doc.push_str(&sentence(rng));
        doc.push(' ');
    }
    // Sprinkle valid entities so the entity checks get exercised.
    if rng.random_bool(0.3) {
        doc.push_str("Caf&eacute; &amp; co. ");
    }
    doc.push_str("</P>\n");
}

fn push_list(doc: &mut String, rng: &mut StdRng) {
    let ordered = rng.random_bool(0.5);
    let tag = if ordered { "OL" } else { "UL" };
    doc.push_str(&format!("<{tag}>\n"));
    for _ in 0..rng.random_range(2..=5) {
        doc.push_str(&format!("<LI>{}\n", sentence(rng)));
    }
    doc.push_str(&format!("</{tag}>\n"));
}

fn push_table(doc: &mut String, rng: &mut StdRng) {
    let rows = rng.random_range(1..=3);
    let cols = rng.random_range(2..=4);
    doc.push_str("<TABLE BORDER=\"1\" WIDTH=\"100%\">\n");
    for _ in 0..rows {
        doc.push_str("<TR>");
        for _ in 0..cols {
            doc.push_str(&format!("<TD>{}</TD>", words(rng, 2)));
        }
        doc.push_str("</TR>\n");
    }
    doc.push_str("</TABLE>\n");
}

fn push_anchor_para(doc: &mut String, rng: &mut StdRng) {
    doc.push_str(&format!(
        "<P>See <A HREF=\"{}.html\">the {} {}</A> for details.</P>\n",
        word(rng),
        word(rng),
        word(rng)
    ));
}

fn push_image(doc: &mut String, rng: &mut StdRng) {
    doc.push_str(&format!(
        "<P><IMG SRC=\"{}.gif\" ALT=\"{}\" WIDTH=\"{}\" HEIGHT=\"{}\"></P>\n",
        word(rng),
        words(rng, 2),
        rng.random_range(10..640),
        rng.random_range(10..480)
    ));
}

fn push_pre(doc: &mut String, rng: &mut StdRng) {
    doc.push_str(&format!(
        "<PRE>\n  {}\n  {}\n</PRE>\n",
        words(rng, 4),
        words(rng, 4)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate_document(9, 2048), generate_document(9, 2048));
        assert_ne!(generate_document(9, 2048), generate_document(10, 2048));
    }

    #[test]
    fn respects_target_size() {
        for target in [512, 4 * 1024, 64 * 1024] {
            let doc = generate_document(1, target);
            assert!(doc.len() >= target, "{} < {target}", doc.len());
            // Within a block of slack.
            assert!(doc.len() < target + 2048, "{} too big", doc.len());
        }
    }

    #[test]
    fn has_document_structure() {
        let doc = generate_document(3, 1024);
        for marker in [
            "<!DOCTYPE",
            "<HTML>",
            "<HEAD>",
            "<TITLE>",
            "<BODY>",
            "</HTML>",
        ] {
            assert!(doc.contains(marker), "missing {marker}");
        }
    }

    #[test]
    fn doctype_can_be_suppressed() {
        let options = GenOptions {
            doctype: false,
            ..GenOptions::default()
        };
        let doc = generate_document_with(5, &options);
        assert!(!doc.contains("<!DOCTYPE"));
        assert!(doc.starts_with("<HTML>"));
    }

    #[test]
    fn rich_percent_zero_means_paragraphs_only() {
        let options = GenOptions {
            target_bytes: 4096,
            rich_percent: 0,
            ..GenOptions::default()
        };
        let doc = generate_document_with(6, &options);
        assert!(!doc.contains("<TABLE"));
        assert!(!doc.contains("<UL>"));
    }
}
