//! Whole-site generation for the `-R` and robot experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{generate_document_with, words, GenOptions};

/// Knobs for site generation.
#[derive(Debug, Clone)]
pub struct SiteOptions {
    /// Number of pages.
    pub pages: usize,
    /// Bytes per page (approximate).
    pub page_bytes: usize,
    /// Out of 100: probability that a generated link points at a page that
    /// does not exist (a dead link).
    pub dead_link_percent: u8,
    /// Out of 100: probability that a page receives no inbound links (an
    /// orphan).
    pub orphan_percent: u8,
    /// Number of subdirectories pages are spread over. Directory 0 gets an
    /// `index.html`; the others deliberately do not, to exercise the
    /// `directory-index` check.
    pub directories: usize,
}

impl Default for SiteOptions {
    fn default() -> SiteOptions {
        SiteOptions {
            pages: 20,
            page_bytes: 2 * 1024,
            dead_link_percent: 5,
            orphan_percent: 10,
            directories: 3,
        }
    }
}

/// One generated page.
#[derive(Debug, Clone)]
pub struct GeneratedPage {
    /// Site-relative path, e.g. `docs/page7.html`.
    pub path: String,
    /// The page HTML.
    pub html: String,
    /// Site-relative paths this page links to (including dead ones).
    pub links: Vec<String>,
    /// Whether the generator marked this page as an intended orphan.
    pub orphan: bool,
}

/// A generated site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// The pages, `pages[0]` being `index.html`.
    pub pages: Vec<GeneratedPage>,
    /// Paths of links that intentionally point nowhere.
    pub dead_links: Vec<String>,
    /// Site-relative paths of non-HTML assets (images) the pages
    /// reference; host these alongside the pages to avoid spurious
    /// dead-link reports.
    pub assets: Vec<String>,
}

impl SiteSpec {
    /// Total bytes of HTML across the site.
    pub fn total_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.html.len()).sum()
    }

    /// Find a page by path.
    pub fn page(&self, path: &str) -> Option<&GeneratedPage> {
        self.pages.iter().find(|p| p.path == path)
    }
}

/// Generate a site of interlinked pages, deterministically from `seed`.
///
/// The link graph keeps every non-orphan page reachable from `index.html`
/// (each page `i > 0` gets an inbound link from an earlier page unless it
/// was chosen as an orphan), then sprinkles extra cross-links and the
/// requested proportion of dead links.
pub fn generate_site(seed: u64, options: &SiteOptions) -> SiteSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = options.pages.max(1);
    let dirs = options.directories.max(1);

    // Assign paths: page 0 is the site index.
    let mut paths = Vec::with_capacity(count);
    paths.push("index.html".to_string());
    for i in 1..count {
        let dir = i % dirs;
        if dir == 0 {
            paths.push(format!("page{i}.html"));
        } else {
            paths.push(format!("dir{dir}/page{i}.html"));
        }
    }

    let orphan: Vec<bool> = (0..count)
        .map(|i| i != 0 && rng.random_range(0..100u8) < options.orphan_percent)
        .collect();

    // Decide each page's outbound links.
    let mut links: Vec<Vec<String>> = vec![Vec::new(); count];
    let mut dead_links = Vec::new();
    for (i, target_path) in paths.iter().enumerate().skip(1) {
        if orphan[i] {
            continue;
        }
        // An inbound link from some earlier non-orphan page (the index if
        // nothing else) keeps the page reachable.
        let mut from = rng.random_range(0..i);
        if orphan[from] {
            from = 0;
        }
        links[from].push(target_path.clone());
    }
    for (i, page_links) in links.iter_mut().enumerate() {
        // Extra cross-links for a denser graph.
        for _ in 0..rng.random_range(0..3) {
            let to = rng.random_range(0..count);
            if to != i && !orphan[to] {
                page_links.push(paths[to].clone());
            }
        }
        if rng.random_range(0..100u8) < options.dead_link_percent {
            let dead = format!("missing{}.html", rng.random_range(0..1000));
            page_links.push(dead.clone());
            dead_links.push(dead);
        }
    }

    // Render the pages: a valid document plus a navigation block.
    let mut assets: Vec<String> = Vec::new();
    let pages = paths
        .iter()
        .enumerate()
        .map(|(i, path)| {
            let mut html = generate_document_with(
                seed.wrapping_add(i as u64),
                &GenOptions {
                    target_bytes: options.page_bytes,
                    anchors: false,
                    ..GenOptions::default()
                },
            );
            collect_image_assets(path, &html, &mut assets);
            let depth = path.matches('/').count();
            let prefix = "../".repeat(depth);
            let mut nav = String::from("<UL>\n");
            for link in &links[i] {
                nav.push_str(&format!(
                    "<LI><A HREF=\"{prefix}{link}\">{}</A>\n",
                    words(&mut rng, 2)
                ));
            }
            nav.push_str("</UL>\n");
            let at = html.rfind("</BODY>").unwrap_or(html.len());
            html.insert_str(at, &nav);
            GeneratedPage {
                path: path.clone(),
                html,
                links: links[i].clone(),
                orphan: orphan[i],
            }
        })
        .collect();

    assets.sort();
    assets.dedup();
    SiteSpec {
        pages,
        dead_links,
        assets,
    }
}

/// Find the `SRC="…"` image references in a generated page and record them
/// as site-relative asset paths (images are referenced relative to the
/// page's directory).
fn collect_image_assets(page_path: &str, html: &str, assets: &mut Vec<String>) {
    let dir = match page_path.rfind('/') {
        Some(i) => &page_path[..=i],
        None => "",
    };
    let mut rest = html;
    while let Some(idx) = rest.find("SRC=\"") {
        rest = &rest[idx + 5..];
        if let Some(end) = rest.find('"') {
            let name = &rest[..end];
            if name.ends_with(".gif") {
                assets.push(format!("{dir}{name}"));
            }
            rest = &rest[end..];
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SiteSpec {
        generate_site(
            42,
            &SiteOptions {
                pages: 12,
                page_bytes: 512,
                dead_link_percent: 20,
                orphan_percent: 20,
                directories: 3,
            },
        )
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.pages.len(), b.pages.len());
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.html, pb.html);
        }
    }

    #[test]
    fn index_is_first() {
        let site = small();
        assert_eq!(site.pages[0].path, "index.html");
        assert!(!site.pages[0].orphan);
    }

    #[test]
    fn non_orphans_have_inbound_links() {
        let site = small();
        for page in site.pages.iter().skip(1).filter(|p| !p.orphan) {
            let linked = site.pages.iter().any(|p| p.links.contains(&page.path));
            assert!(linked, "{} unreachable", page.path);
        }
    }

    #[test]
    fn orphans_have_no_inbound_links() {
        let site = small();
        for page in site.pages.iter().filter(|p| p.orphan) {
            let linked = site.pages.iter().any(|p| p.links.contains(&page.path));
            assert!(!linked, "{} has inbound links", page.path);
        }
    }

    #[test]
    fn dead_links_point_nowhere() {
        let site = small();
        for dead in &site.dead_links {
            assert!(site.page(dead).is_none(), "{dead} exists");
        }
        assert!(!site.dead_links.is_empty());
    }

    #[test]
    fn pages_spread_over_directories() {
        let site = small();
        assert!(site.pages.iter().any(|p| p.path.starts_with("dir1/")));
        assert!(site.pages.iter().any(|p| p.path.starts_with("dir2/")));
    }

    #[test]
    fn nav_links_rendered_into_html() {
        let site = small();
        let with_links = site.pages.iter().find(|p| !p.links.is_empty()).unwrap();
        let first = &with_links.links[0];
        assert!(
            with_links.html.contains(&format!("{first}\"")),
            "nav missing {first}"
        );
    }

    #[test]
    fn total_bytes_counts_everything() {
        let site = small();
        assert!(site.total_bytes() > 12 * 512);
    }

    #[test]
    fn assets_cover_every_image_reference() {
        let site = small();
        for page in &site.pages {
            let dir = match page.path.rfind('/') {
                Some(i) => &page.path[..=i],
                None => "",
            };
            let mut rest = page.html.as_str();
            while let Some(idx) = rest.find("SRC=\"") {
                rest = &rest[idx + 5..];
                let end = rest.find('"').unwrap();
                let asset = format!("{dir}{}", &rest[..end]);
                assert!(site.assets.contains(&asset), "{asset} missing");
                rest = &rest[end..];
            }
        }
    }

    #[test]
    fn assets_sorted_and_unique() {
        let site = small();
        for pair in site.assets.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
