//! Federated mega-site generation for the sharded crawl experiments.
//!
//! The E18 shard-scaling experiment needs a web that is too big for one
//! polite scheduler: many hosts, each with its own page population, and a
//! dense cross-host link graph so shards genuinely exchange work. This
//! module generates one deterministically from a seed — same seed, same
//! bytes — with tunable defect and dead-link rates so the crawl has
//! something to lint and something to report.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::words;

/// Knobs for mega-site generation.
#[derive(Debug, Clone)]
pub struct MegaSiteOptions {
    /// Number of hosts (`mega0`, `mega1`, …).
    pub hosts: usize,
    /// Pages per host (`index.html` plus `p1.html`…).
    pub pages_per_host: usize,
    /// Extra random links per page, on top of the two structural links
    /// (same-host ring, next-host ring) that keep every page reachable.
    pub links_per_page: usize,
    /// Out of 100: probability a page carries a lintable defect.
    pub defect_percent: u8,
    /// Out of 100: probability a page links to a missing target.
    pub dead_percent: u8,
}

impl Default for MegaSiteOptions {
    fn default() -> MegaSiteOptions {
        MegaSiteOptions {
            hosts: 4,
            pages_per_host: 25,
            links_per_page: 3,
            defect_percent: 30,
            dead_percent: 10,
        }
    }
}

/// A generated federation of hosts, resolvable page by page.
///
/// Every page is reachable from the per-host index seeds: page `i` links
/// to page `i+1` on the same host (a ring), and to page `i` on the next
/// host (a second ring across the federation), so a crawl seeded with
/// each host's `index.html` visits all `hosts * pages_per_host` pages.
#[derive(Debug, Clone)]
pub struct MegaSite {
    hosts: Vec<String>,
    pages: BTreeMap<(String, String), String>,
}

impl MegaSite {
    /// Generate the federation, deterministically from `seed`.
    pub fn new(seed: u64, options: &MegaSiteOptions) -> MegaSite {
        let host_count = options.hosts.max(1);
        let page_count = options.pages_per_host.max(1);
        let hosts: Vec<String> = (0..host_count).map(|h| format!("mega{h}")).collect();
        let mut pages = BTreeMap::new();
        for (hi, host) in hosts.iter().enumerate() {
            for pi in 0..page_count {
                let mut rng = StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((hi as u64) << 32)
                        .wrapping_add(pi as u64),
                );
                let path = page_path(pi);
                let mut body = format!("<HTML><HEAD><TITLE>{host} {path}</TITLE></HEAD><BODY>\n");
                if rng.random_range(0..100u8) < options.defect_percent {
                    // The paper's signature mistake class: mismatched
                    // heading close (§4.2).
                    body.push_str(&format!("<H1>{}</H2>\n", words(&mut rng, 3)));
                } else {
                    body.push_str(&format!("<H1>{}</H1>\n", words(&mut rng, 3)));
                }
                body.push_str(&format!("<P>{}</P>\n", words(&mut rng, 12)));
                // Structural ring links: same host, then next host.
                push_link(&mut body, &page_path((pi + 1) % page_count), &mut rng);
                if host_count > 1 {
                    let next = &hosts[(hi + 1) % host_count];
                    push_link(
                        &mut body,
                        &format!("http://{next}{}", page_path(pi)),
                        &mut rng,
                    );
                }
                for _ in 0..options.links_per_page {
                    if rng.random_range(0..100u8) < options.dead_percent {
                        let n: u32 = rng.random_range(0..1000);
                        push_link(&mut body, &format!("/missing{n}.html"), &mut rng);
                    } else {
                        let th = rng.random_range(0..host_count);
                        let tp = page_path(rng.random_range(0..page_count));
                        if th == hi {
                            push_link(&mut body, &tp, &mut rng);
                        } else {
                            push_link(&mut body, &format!("http://{}{tp}", hosts[th]), &mut rng);
                        }
                    }
                }
                body.push_str("</BODY></HTML>\n");
                pages.insert((host.clone(), path), body);
            }
        }
        MegaSite { hosts, pages }
    }

    /// The federation's host names, in order.
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// Crawl seeds: each host's index page URL.
    pub fn start_urls(&self) -> Vec<String> {
        self.hosts
            .iter()
            .map(|h| format!("http://{h}/index.html"))
            .collect()
    }

    /// Total generated pages across the federation.
    pub fn total_pages(&self) -> usize {
        self.pages.len()
    }

    /// Serve one request: `Some((content_type, body))` for a generated
    /// page, `None` (a 404) for everything else — including the
    /// deliberately dead `missingN.html` targets.
    pub fn resolve(&self, host: &str, path: &str) -> Option<(String, String)> {
        self.pages
            .get(&(host.to_string(), path.to_string()))
            .map(|body| ("text/html".to_string(), body.clone()))
    }
}

fn page_path(i: usize) -> String {
    if i == 0 {
        "/index.html".to_string()
    } else {
        format!("/p{i}.html")
    }
}

fn push_link(body: &mut String, href: &str, rng: &mut StdRng) {
    body.push_str(&format!(
        "<P><A HREF=\"{href}\">{}</A></P>\n",
        words(rng, 2)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MegaSite {
        MegaSite::new(
            42,
            &MegaSiteOptions {
                hosts: 3,
                pages_per_host: 5,
                links_per_page: 2,
                defect_percent: 50,
                dead_percent: 30,
            },
        )
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.pages, b.pages);
        assert_ne!(
            MegaSite::new(43, &MegaSiteOptions::default()).pages,
            MegaSite::new(42, &MegaSiteOptions::default()).pages
        );
    }

    #[test]
    fn every_page_resolves_and_missing_paths_do_not() {
        let site = small();
        assert_eq!(site.total_pages(), 15);
        for host in site.hosts() {
            for i in 0..5 {
                let (ct, body) = site.resolve(host, &page_path(i)).expect("page exists");
                assert_eq!(ct, "text/html");
                assert!(body.contains("<TITLE>"), "{body}");
            }
        }
        assert!(site.resolve("mega0", "/missing1.html").is_none());
        assert!(site.resolve("nothere", "/index.html").is_none());
    }

    #[test]
    fn ring_links_keep_every_page_reachable() {
        // Page i links to page i+1 on its own host, so following the
        // same-host ring from index.html covers the host; the seeds
        // cover every host.
        let site = small();
        for host in site.hosts() {
            for i in 0..5 {
                let (_, body) = site.resolve(host, &page_path(i)).unwrap();
                let next = page_path((i + 1) % 5);
                assert!(body.contains(&format!("HREF=\"{next}\"")), "{host} {i}");
            }
        }
    }

    #[test]
    fn cross_host_links_exist() {
        let site = small();
        let (_, body) = site.resolve("mega0", "/index.html").unwrap();
        assert!(body.contains("http://mega1/index.html"), "{body}");
    }

    #[test]
    fn start_urls_cover_every_host() {
        let site = small();
        assert_eq!(
            site.start_urls(),
            vec![
                "http://mega0/index.html",
                "http://mega1/index.html",
                "http://mega2/index.html"
            ]
        );
    }
}
