//! A small vocabulary for generated text content.

use rand::Rng;

/// The 1998-flavoured word list used for generated prose.
static WORDS: &[&str] = &[
    "the",
    "web",
    "site",
    "page",
    "browser",
    "server",
    "perl",
    "script",
    "check",
    "syntax",
    "style",
    "markup",
    "element",
    "attribute",
    "value",
    "anchor",
    "image",
    "table",
    "form",
    "list",
    "heading",
    "comment",
    "robot",
    "gateway",
    "victim",
    "release",
    "platform",
    "module",
    "class",
    "stack",
    "parser",
    "token",
    "warning",
    "error",
    "message",
    "catalogue",
    "quality",
    "assurance",
    "validator",
    "search",
    "engine",
    "index",
    "hyperlink",
    "document",
    "content",
    "human",
    "mistake",
    "tool",
    "lint",
    "bazaar",
    "cathedral",
    "community",
    "config",
    "user",
    "test",
    "suite",
];

/// A deterministic word from the vocabulary.
pub(crate) fn word(rng: &mut impl Rng) -> &'static str {
    WORDS[rng.random_range(0..WORDS.len())]
}

/// `n` space-separated words.
pub(crate) fn words(rng: &mut impl Rng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(word(rng));
    }
    out
}

/// A capitalised sentence of 4–12 words ending with a full stop.
pub(crate) fn sentence(rng: &mut impl Rng) -> String {
    let n = rng.random_range(4..=12);
    let mut s = words(rng, n);
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    s.push('.');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let a = sentence(&mut StdRng::seed_from_u64(1));
        let b = sentence(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn sentence_shape() {
        let s = sentence(&mut StdRng::seed_from_u64(2));
        assert!(s.ends_with('.'));
        assert!(s.chars().next().unwrap().is_ascii_uppercase());
    }

    #[test]
    fn words_counts() {
        let w = words(&mut StdRng::seed_from_u64(3), 5);
        assert_eq!(w.split(' ').count(), 5);
    }

    #[test]
    fn vocabulary_is_html_safe() {
        for w in WORDS {
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }
}
