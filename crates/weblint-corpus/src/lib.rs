//! Deterministic HTML corpus generation for tests and benchmarks.
//!
//! The paper evaluated weblint against four years of real pages from the
//! weblint-victims community; that corpus is not available, so this crate
//! generates a synthetic equivalent (DESIGN.md, substitutions): seedable
//! valid-by-construction documents, a catalogue of defect-injection
//! operators modelled on the mistake classes the paper lists (§4.2, §4.3),
//! and whole-site generation for the `-R`/robot experiments.
//!
//! Everything is deterministic given a seed, so test failures reproduce and
//! benchmarks measure the same bytes run over run.
//!
//! # Examples
//!
//! ```
//! use weblint_corpus::{generate_document, DefectClass};
//! use rand::SeedableRng;
//!
//! let doc = generate_document(42, 2_000);
//! assert!(doc.starts_with("<!DOCTYPE"));
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let broken = DefectClass::OddQuotes.inject(&doc, &mut rng);
//! assert_ne!(doc, broken);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod defect;
mod gen;
mod mega;
mod site;
mod words;

pub use defect::{all_defect_classes, DefectClass};
pub use gen::{generate_document, generate_document_with, GenOptions};
pub use mega::{MegaSite, MegaSiteOptions};
pub use site::{generate_site, GeneratedPage, SiteOptions, SiteSpec};
pub(crate) use words::{sentence, word, words};
